"""Unit and property tests for content-model regexes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schema.regex import (
    EPSILON,
    TEXT_SYMBOL,
    Alt,
    Opt,
    Plus,
    RegexError,
    Seq,
    Star,
    Sym,
    alt,
    nullable,
    occurring,
    order_relation,
    parse_content_model,
    seq,
    shortest_word,
)


class TestParsing:
    def test_single_symbol(self):
        assert parse_content_model("a") == Sym("a")

    def test_empty_keyword(self):
        assert parse_content_model("EMPTY") == EPSILON

    def test_pcdata(self):
        # DTD semantics: (#PCDATA) is text-only, possibly empty content.
        assert parse_content_model("(#PCDATA)") == Star(Sym(TEXT_SYMBOL))

    def test_sequence(self):
        assert parse_content_model("(a, b)") == Seq(Sym("a"), Sym("b"))

    def test_alternation(self):
        assert parse_content_model("(a | b)") == Alt(Sym("a"), Sym("b"))

    def test_star(self):
        assert parse_content_model("(a | b)*") == Star(Alt(Sym("a"), Sym("b")))

    def test_plus(self):
        assert parse_content_model("a+") == Plus(Sym("a"))

    def test_optional(self):
        assert parse_content_model("a?") == Opt(Sym("a"))

    def test_nested(self):
        model = parse_content_model("(a, (b | c)*, d?)")
        assert model == Seq(
            Seq(Sym("a"), Star(Alt(Sym("b"), Sym("c")))), Opt(Sym("d"))
        )

    def test_mixed_content(self):
        model = parse_content_model("(#PCDATA | bold | keyword)*")
        assert TEXT_SYMBOL in occurring(model)
        assert {"bold", "keyword"} <= occurring(model)

    def test_whitespace_insensitive(self):
        assert parse_content_model(" ( a , b ) ") == parse_content_model(
            "(a,b)"
        )

    def test_hyphenated_names(self):
        assert parse_content_model("open-auction") == Sym("open-auction")

    def test_rejects_any(self):
        with pytest.raises(RegexError):
            parse_content_model("ANY")

    def test_rejects_trailing_garbage(self):
        with pytest.raises(RegexError):
            parse_content_model("(a, b) extra")

    def test_rejects_unbalanced_paren(self):
        with pytest.raises(RegexError):
            parse_content_model("(a, b")

    def test_rejects_unknown_hash_token(self):
        with pytest.raises(RegexError):
            parse_content_model("#FOO")

    def test_rejects_empty_input(self):
        with pytest.raises(RegexError):
            parse_content_model("")


class TestNullable:
    def test_epsilon_nullable(self):
        assert nullable(EPSILON)

    def test_symbol_not_nullable(self):
        assert not nullable(Sym("a"))

    def test_star_nullable(self):
        assert nullable(Star(Sym("a")))

    def test_opt_nullable(self):
        assert nullable(Opt(Sym("a")))

    def test_plus_not_nullable(self):
        assert not nullable(Plus(Sym("a")))

    def test_plus_of_nullable_is_nullable(self):
        assert nullable(Plus(Opt(Sym("a"))))

    def test_seq_requires_both(self):
        assert not nullable(Seq(Star(Sym("a")), Sym("b")))
        assert nullable(Seq(Star(Sym("a")), Opt(Sym("b"))))

    def test_alt_requires_one(self):
        assert nullable(Alt(Sym("a"), Star(Sym("b"))))
        assert not nullable(Alt(Sym("a"), Sym("b")))


class TestOccurring:
    def test_symbol(self):
        assert occurring(Sym("a")) == frozenset({"a"})

    def test_epsilon(self):
        assert occurring(EPSILON) == frozenset()

    def test_complex(self):
        model = parse_content_model("(a, (b | c)*, d?)")
        assert occurring(model) == frozenset({"a", "b", "c", "d"})


class TestOrderRelation:
    def test_paper_example(self):
        """The paper's Section 3.1 example: <_{a,(b|c)*}."""
        model = parse_content_model("(a, (b | c)*)")
        assert order_relation(model) == frozenset(
            {("a", "b"), ("a", "c"), ("b", "c"), ("c", "b"),
             ("c", "c"), ("b", "b")}
        )

    def test_simple_sequence(self):
        assert order_relation(parse_content_model("(a, b)")) == frozenset(
            {("a", "b")}
        )

    def test_alternation_has_no_pairs(self):
        assert order_relation(parse_content_model("(a | b)")) == frozenset()

    def test_star_self_pairs(self):
        assert order_relation(parse_content_model("a*")) == frozenset(
            {("a", "a")}
        )

    def test_opt_no_self_pair(self):
        assert order_relation(parse_content_model("a?")) == frozenset()

    def test_plus_self_pairs(self):
        assert order_relation(parse_content_model("a+")) == frozenset(
            {("a", "a")}
        )

    def test_seq_of_stars(self):
        rel = order_relation(parse_content_model("(b+, c*)"))
        assert ("b", "c") in rel
        assert ("b", "b") in rel
        assert ("c", "c") in rel
        assert ("c", "b") not in rel


class TestShortestWord:
    def test_symbol(self):
        assert shortest_word(Sym("a")) == ("a",)

    def test_star_empty(self):
        assert shortest_word(Star(Sym("a"))) == ()

    def test_alt_picks_shorter(self):
        model = parse_content_model("((a, b) | c)")
        assert shortest_word(model) == ("c",)

    def test_plus_one_copy(self):
        assert shortest_word(parse_content_model("(a, b)+")) == ("a", "b")

    def test_xmark_person(self):
        model = parse_content_model(
            "(name, emailaddress, phone?, address?, homepage?, "
            "creditcard?, profile?, watches?)"
        )
        assert shortest_word(model) == ("name", "emailaddress")


class TestConstructors:
    def test_seq_empty_is_epsilon(self):
        assert seq() == EPSILON

    def test_seq_single(self):
        assert seq(Sym("a")) == Sym("a")

    def test_alt_requires_branch(self):
        with pytest.raises(RegexError):
            alt()


# -- property tests ---------------------------------------------------------

_SYMBOLS = st.sampled_from(["a", "b", "c", "d"])


def _regexes(depth: int = 3):
    base = _SYMBOLS.map(Sym)
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda p: Seq(*p)),
            st.tuples(inner, inner).map(lambda p: Alt(*p)),
            inner.map(Star),
            inner.map(Plus),
            inner.map(Opt),
        ),
        max_leaves=8,
    )


@given(_regexes())
def test_shortest_word_only_uses_occurring_symbols(model):
    assert set(shortest_word(model)) <= set(occurring(model))


@given(_regexes())
def test_nullable_iff_shortest_word_empty(model):
    assert nullable(model) == (len(shortest_word(model)) == 0)


@given(_regexes())
def test_order_relation_symbols_occur(model):
    occ = occurring(model)
    for a, b in order_relation(model):
        assert a in occ and b in occ
