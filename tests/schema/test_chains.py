"""Chains, k-chains and bounded enumeration (Definitions 2.1-2.2, Section 5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.schema import (
    chain,
    chains_from_root,
    concat,
    dotted,
    enumerate_chains,
    is_chain,
    is_k_chain,
    is_prefix,
    max_multiplicity,
)


class TestChainBasics:
    def test_parse_dotted(self):
        assert chain("doc.a.c") == ("doc", "a", "c")

    def test_dotted_roundtrip(self):
        assert dotted(chain("doc.a.c")) == "doc.a.c"

    def test_concat(self):
        assert concat(("doc",), ("a", "c")) == ("doc", "a", "c")

    def test_prefix_reflexive(self):
        assert is_prefix(chain("doc.a"), chain("doc.a"))

    def test_prefix_proper(self):
        assert is_prefix(chain("doc"), chain("doc.a.c"))
        assert not is_prefix(chain("doc.a.c"), chain("doc"))

    def test_prefix_mismatch(self):
        assert not is_prefix(chain("doc.b"), chain("doc.a.c"))


class TestMembership:
    def test_paper_chains(self, doc_dtd):
        """Section 2: Cd includes doc.a, a.c, doc.a.c, doc.b, b.c, doc.b.c."""
        for text in ("doc.a", "a.c", "doc.a.c", "doc.b", "b.c", "doc.b.c"):
            assert is_chain(doc_dtd, chain(text)), text

    def test_non_chains(self, doc_dtd):
        assert not is_chain(doc_dtd, chain("doc.c"))
        assert not is_chain(doc_dtd, chain("a.b"))
        assert not is_chain(doc_dtd, ())
        assert not is_chain(doc_dtd, chain("ghost"))

    def test_chain_may_start_anywhere(self, doc_dtd):
        assert is_chain(doc_dtd, chain("b.c"))


class TestKChains:
    def test_empty_is_k_chain(self):
        assert is_k_chain((), 1)

    def test_within_bound(self):
        assert is_k_chain(chain("r.a.b.f.a"), 2)
        assert not is_k_chain(chain("r.a.b.f.a"), 1)

    def test_max_multiplicity(self):
        assert max_multiplicity(chain("r.a.b.f.a")) == 2
        assert max_multiplicity(chain("r")) == 1
        assert max_multiplicity(()) == 0

    def test_paper_3chain(self, d1_dtd):
        """Section 5: r.a.b.f.a.c.f.a.e is the shortest chain for the
        three-descendant path -- a 3-chain of d1."""
        witness = chain("r.a.b.f.a.c.f.a.e")
        assert is_chain(d1_dtd, witness)
        assert is_k_chain(witness, 3)
        assert not is_k_chain(witness, 2)


class TestEnumeration:
    def test_needs_bound(self, doc_dtd):
        with pytest.raises(ValueError):
            list(enumerate_chains(doc_dtd))

    def test_rooted_chains_non_recursive(self, doc_dtd):
        chains = chains_from_root(doc_dtd, k=2)
        expected = {
            ("doc",), ("doc", "a"), ("doc", "b"),
            ("doc", "a", "c"), ("doc", "b", "c"),
        }
        assert chains == expected

    def test_all_enumerated_are_chains(self, d1_dtd):
        for c in enumerate_chains(d1_dtd, k=1):
            assert is_chain(d1_dtd, c)
            assert is_k_chain(c, 1)

    def test_k_increases_chain_count(self, d1_dtd):
        k1 = len(chains_from_root(d1_dtd, k=1))
        k2 = len(chains_from_root(d1_dtd, k=2))
        assert k2 > k1

    def test_max_length_bound(self, d1_dtd):
        for c in enumerate_chains(d1_dtd, max_length=3):
            assert len(c) <= 3

    def test_roots_restriction(self, doc_dtd):
        chains = set(
            enumerate_chains(doc_dtd, k=1, roots=frozenset({"a"}))
        )
        assert chains == {("a",), ("a", "c")}


@given(st.integers(min_value=1, max_value=3))
def test_k_chains_nest(k):
    from repro.schema import paper_d1_dtd

    dtd = paper_d1_dtd()
    smaller = chains_from_root(dtd, k=k)
    larger = chains_from_root(dtd, k=k + 1)
    assert smaller <= larger
