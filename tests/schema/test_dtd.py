"""DTD construction, reachability, sibling order, validation helpers."""

import pytest

from repro.schema import DTD, DTDError, TEXT_SYMBOL


@pytest.fixture()
def small() -> DTD:
    return DTD.from_dict(
        "doc", {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"}
    )


class TestConstruction:
    def test_from_dict(self, small):
        assert small.start == "doc"
        assert small.alphabet == frozenset({"doc", "a", "b", "c"})

    def test_symbols_include_text(self, small):
        assert TEXT_SYMBOL in small.symbols

    def test_start_must_have_rule(self):
        with pytest.raises(DTDError):
            DTD.from_dict("missing", {"doc": "EMPTY"})

    def test_undefined_reference_rejected(self):
        with pytest.raises(DTDError):
            DTD.from_dict("doc", {"doc": "ghost"})

    def test_from_dtd_text(self):
        dtd = DTD.from_dtd_text(
            "doc",
            """
            <!ELEMENT doc (a | b)*>
            <!ELEMENT a (c)>
            <!ELEMENT b (c)>
            <!ELEMENT c EMPTY>
            <!ATTLIST a id CDATA #REQUIRED>
            """,
        )
        assert dtd.alphabet == frozenset({"doc", "a", "b", "c"})
        assert dtd.children_of("doc") == frozenset({"a", "b"})

    def test_from_dtd_text_requires_declarations(self):
        with pytest.raises(DTDError):
            DTD.from_dtd_text("doc", "no declarations here")

    def test_pcdata_content(self):
        dtd = DTD.from_dict("doc", {"doc": "(#PCDATA)"})
        assert dtd.children_of("doc") == frozenset({TEXT_SYMBOL})

    def test_equality_and_hash(self, small):
        twin = DTD.from_dict(
            "doc", {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"}
        )
        assert small == twin
        assert hash(small) == hash(twin)

    def test_size(self, small):
        assert small.size() == 4


class TestReachability:
    def test_children(self, small):
        assert small.children_of("doc") == frozenset({"a", "b"})
        assert small.children_of("a") == frozenset({"c"})
        assert small.children_of("c") == frozenset()

    def test_text_has_no_children(self, small):
        assert small.children_of(TEXT_SYMBOL) == frozenset()

    def test_unknown_symbol_raises(self, small):
        with pytest.raises(DTDError):
            small.children_of("ghost")

    def test_descendants(self, small):
        assert small.descendants_of("doc") == frozenset({"a", "b", "c"})
        assert small.descendants_of("a") == frozenset({"c"})

    def test_not_recursive(self, small):
        assert not small.is_recursive()
        assert small.recursive_symbols() == frozenset()

    def test_recursive_detection(self, d1_dtd):
        assert d1_dtd.is_recursive()
        assert {"a", "b", "c", "e", "f"} <= set(d1_dtd.recursive_symbols())
        assert "r" not in d1_dtd.recursive_symbols()
        assert "g" not in d1_dtd.recursive_symbols()

    def test_xmark_recursive_cliques(self, xmark):
        """The paper: 5 mutually recursive types in cliques of size 2 and 3."""
        recursive = xmark.recursive_symbols()
        assert recursive == frozenset(
            {"parlist", "listitem", "bold", "keyword", "emph"}
        )

    def test_xmark_size(self, xmark):
        # |d| = 74 element types after attribute removal (the paper reports
        # 76 for the attribute-bearing DTD).
        assert xmark.size() == 74


class TestSiblingOrder:
    def test_order_of_star(self, small):
        rel = small.sibling_order("doc")
        assert ("a", "b") in rel and ("b", "a") in rel
        assert ("a", "a") in rel

    def test_order_cached(self, small):
        assert small.sibling_order("doc") is small.sibling_order("doc")

    def test_sequence_order(self, bib):
        rel = bib.sibling_order("book")
        assert ("title", "publisher") in rel
        assert ("publisher", "title") not in rel
        assert ("author", "editor") not in rel  # exclusive alternation


class TestValidationHelpers:
    def test_accepts_children(self, small):
        assert small.accepts_children("doc", ["a", "b", "a"])
        assert not small.accepts_children("doc", ["c"])
        assert small.accepts_children("c", [])

    def test_shortest_content(self, small, bib):
        assert small.shortest_content("doc") == ()
        assert bib.shortest_content("book") == (
            "title", "author", "publisher", "price"
        )

    def test_allows_empty(self, small):
        assert small.allows_empty("doc")
        assert not small.allows_empty("a")

    def test_automaton_cached(self, small):
        assert small.automaton("doc") is small.automaton("doc")
