"""Glushkov automaton membership tests, incl. a brute-force property check."""

from hypothesis import given
from hypothesis import strategies as st

from repro.schema.automata import GlushkovAutomaton
from repro.schema.regex import (
    Alt,
    Opt,
    Plus,
    Seq,
    Star,
    Sym,
    nullable,
    parse_content_model,
)


def _auto(text: str) -> GlushkovAutomaton:
    return GlushkovAutomaton(parse_content_model(text))


class TestMembership:
    def test_single_symbol(self):
        auto = _auto("a")
        assert auto.matches(["a"])
        assert not auto.matches([])
        assert not auto.matches(["b"])
        assert not auto.matches(["a", "a"])

    def test_sequence(self):
        auto = _auto("(a, b)")
        assert auto.matches(["a", "b"])
        assert not auto.matches(["b", "a"])
        assert not auto.matches(["a"])

    def test_alternation(self):
        auto = _auto("(a | b)")
        assert auto.matches(["a"])
        assert auto.matches(["b"])
        assert not auto.matches(["a", "b"])

    def test_star(self):
        auto = _auto("(a | b)*")
        assert auto.matches([])
        assert auto.matches(["a", "b", "a", "a"])
        assert not auto.matches(["a", "c"])

    def test_plus(self):
        auto = _auto("a+")
        assert not auto.matches([])
        assert auto.matches(["a"])
        assert auto.matches(["a", "a", "a"])

    def test_optional(self):
        auto = _auto("(a, b?)")
        assert auto.matches(["a"])
        assert auto.matches(["a", "b"])
        assert not auto.matches(["b"])

    def test_empty_model(self):
        auto = _auto("EMPTY")
        assert auto.matches([])
        assert not auto.matches(["a"])

    def test_bib_book_model(self):
        auto = _auto("(title, (author+ | editor+), publisher, price)")
        assert auto.matches(["title", "author", "publisher", "price"])
        assert auto.matches(
            ["title", "author", "author", "publisher", "price"]
        )
        assert auto.matches(["title", "editor", "publisher", "price"])
        assert not auto.matches(
            ["title", "author", "editor", "publisher", "price"]
        )
        assert not auto.matches(["title", "publisher", "price"])

    def test_xmark_person_model(self):
        auto = _auto(
            "(name, emailaddress, phone?, address?, homepage?, "
            "creditcard?, profile?, watches?)"
        )
        assert auto.matches(["name", "emailaddress"])
        assert auto.matches(["name", "emailaddress", "phone", "watches"])
        assert not auto.matches(["name", "emailaddress", "watches", "phone"])

    def test_accepts_empty_agrees_with_nullable(self):
        for text in ("EMPTY", "a", "a*", "a?", "(a, b)", "(a | b)*"):
            model = parse_content_model(text)
            assert _auto(text).accepts_empty() == nullable(model)


# -- property test against a brute-force regex oracle ------------------------

_SYMBOLS = ["a", "b"]


def _regexes():
    base = st.sampled_from(_SYMBOLS).map(Sym)
    return st.recursive(
        base,
        lambda inner: st.one_of(
            st.tuples(inner, inner).map(lambda p: Seq(*p)),
            st.tuples(inner, inner).map(lambda p: Alt(*p)),
            inner.map(Star),
            inner.map(Plus),
            inner.map(Opt),
        ),
        max_leaves=6,
    )


def _language_upto(model, max_len: int) -> set[tuple[str, ...]]:
    """Brute-force enumeration of L(model) up to a word length."""
    if isinstance(model, Sym):
        return {(model.name,)} if max_len >= 1 else set()
    if isinstance(model, Seq):
        left = _language_upto(model.left, max_len)
        right = _language_upto(model.right, max_len)
        return {
            l + r for l in left for r in right if len(l) + len(r) <= max_len
        }
    if isinstance(model, Alt):
        return _language_upto(model.left, max_len) | _language_upto(
            model.right, max_len
        )
    if isinstance(model, (Star, Plus)):
        single = _language_upto(model.inner, max_len)
        words = {()} if isinstance(model, Star) else set(single)
        grown = True
        while grown:
            grown = False
            for w in list(words):
                for s in single:
                    candidate = w + s
                    if len(candidate) <= max_len and candidate not in words:
                        words.add(candidate)
                        grown = True
        if isinstance(model, Plus):
            words |= single
        return words
    if isinstance(model, Opt):
        return {()} | _language_upto(model.inner, max_len)
    return {()}  # Epsilon


@given(_regexes(), st.lists(st.sampled_from(_SYMBOLS), max_size=5))
def test_automaton_agrees_with_bruteforce(model, word):
    auto = GlushkovAutomaton(model)
    language = _language_upto(model, 5)
    assert auto.matches(word) == (tuple(word) in language)
