"""DTD inference from documents: the validity contract plus precision."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import bib_dtd, paper_doc_dtd, xmark_dtd
from repro.schema.infer import (
    InferenceFailure,
    infer_content_model,
    infer_dtd,
)
from repro.xmldm import generate_corpus, is_valid, parse_xml


class TestContentModelInference:
    def test_empty(self):
        assert infer_content_model([()]) == "EMPTY"

    def test_single_required(self):
        assert infer_content_model([("a",)]) == "(a)"

    def test_optional(self):
        model = infer_content_model([("a",), ()])
        assert model == "((a)?)"

    def test_sequence(self):
        model = infer_content_model([("a", "b"), ("a", "b")])
        assert model == "(a, b)"

    def test_repetition(self):
        model = infer_content_model([("a", "a", "a"), ("a",)])
        assert model == "((a)+)"

    def test_star(self):
        model = infer_content_model([("a", "a"), ()])
        assert model == "((a)*)"

    def test_alternating_symbols_fall_back(self):
        # a and b interleave: (a|b)* is the only sound linear answer.
        model = infer_content_model([("a", "b", "a"), ("b", "a", "b")])
        assert model == "((a | b)*)" or "|" in model

    def test_mixed_content(self):
        model = infer_content_model([("#S", "b", "#S")])
        assert "#PCDATA" in model


class TestDTDInference:
    def test_roundtrip_single_doc(self):
        tree = parse_xml("<doc><a><c/></a><b><c/></b><a><c/></a></doc>")
        dtd = infer_dtd([tree])
        assert dtd.start == "doc"
        assert is_valid(tree, dtd)

    def test_contract_on_generated_corpora(self):
        """Every training document validates against the inferred DTD."""
        for source in (paper_doc_dtd(), bib_dtd()):
            corpus = generate_corpus(source, 6, target_bytes=1500, seed=3)
            inferred = infer_dtd(corpus)
            for tree in corpus:
                assert is_valid(tree, inferred)

    def test_contract_on_xmark(self):
        corpus = generate_corpus(xmark_dtd(), 3, target_bytes=6000, seed=1)
        inferred = infer_dtd(corpus)
        for tree in corpus:
            assert is_valid(tree, inferred)

    def test_precision_recovers_structure(self):
        """On bib-like data the inferred DTD should keep title before
        price (order information, unlike a pure type analysis)."""
        corpus = generate_corpus(bib_dtd(), 8, target_bytes=3000, seed=5)
        inferred = infer_dtd(corpus)
        order = inferred.sibling_order("book")
        assert ("title", "price") in order
        assert ("price", "title") not in order

    def test_supports_independence_analysis(self):
        """End to end: infer a schema, then prove an independence."""
        from repro.analysis.independence import analyze

        corpus = [
            parse_xml("<doc><a><c/></a><b><c/></b></doc>"),
            parse_xml("<doc><b><c/></b><a><c/></a><a><c/></a></doc>"),
        ]
        inferred = infer_dtd(corpus)
        assert analyze("//a//c", "delete //b//c", inferred).independent

    def test_empty_corpus_rejected(self):
        with pytest.raises(InferenceFailure):
            infer_dtd([])

    def test_inconsistent_roots_rejected(self):
        with pytest.raises(InferenceFailure):
            infer_dtd([parse_xml("<a/>"), parse_xml("<b/>")])


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), count=st.integers(1, 5))
def test_inference_contract_property(seed, count):
    """The contract holds for arbitrary generated corpora."""
    corpus = generate_corpus(paper_doc_dtd(), count, target_bytes=600,
                             seed=seed)
    inferred = infer_dtd(corpus)
    for tree in corpus:
        assert is_valid(tree, inferred)
