"""Extended DTDs (Section 7)."""

import pytest

from repro.schema import DTD, DTDError, EDTD, TEXT_SYMBOL, label_of


@pytest.fixture()
def edtd() -> EDTD:
    """Two 'a' types with different content models (XML Schema style)."""
    core = DTD.from_dict(
        "r",
        {"r": "(a1, a2)", "a1": "b", "a2": "c", "b": "EMPTY", "c": "EMPTY"},
    )
    return EDTD(core, {"r": "r", "a1": "a", "a2": "a", "b": "b", "c": "c"})


class TestEDTD:
    def test_labeling(self, edtd):
        assert edtd.label_of("a1") == "a"
        assert edtd.label_of("a2") == "a"
        assert edtd.label_of("b") == "b"

    def test_text_label_fixed(self, edtd):
        assert edtd.label_of(TEXT_SYMBOL) == TEXT_SYMBOL

    def test_types_with_label(self, edtd):
        assert edtd.types_with_label("a") == frozenset({"a1", "a2"})

    def test_missing_labeling_rejected(self):
        core = DTD.from_dict("r", {"r": "a", "a": "EMPTY"})
        with pytest.raises(DTDError):
            EDTD(core, {"r": "r"})

    def test_unknown_type_raises(self, edtd):
        with pytest.raises(DTDError):
            edtd.label_of("ghost")

    def test_schema_interface_delegates(self, edtd):
        assert edtd.start == "r"
        assert edtd.children_of("r") == frozenset({"a1", "a2"})
        assert edtd.descendants_of("r") == frozenset({"a1", "a2", "b", "c"})
        assert edtd.size() == 5

    def test_label_of_helper(self, edtd):
        assert label_of(edtd, "a1") == "a"
        dtd = DTD.from_dict("r", {"r": "EMPTY"})
        assert label_of(dtd, "r") == "r"
