"""The built-in schema catalog."""

from repro.schema import (
    bib_dtd,
    paper_d1_dtd,
    paper_doc_dtd,
    paper_sibling_dtd,
    xmark_dtd,
)


class TestCatalog:
    def test_caching(self):
        assert xmark_dtd() is xmark_dtd()
        assert bib_dtd() is bib_dtd()

    def test_doc_dtd_shape(self):
        dtd = paper_doc_dtd()
        assert dtd.start == "doc"
        assert dtd.children_of("a") == frozenset({"c"})
        assert dtd.children_of("b") == frozenset({"c"})

    def test_d1_shape(self):
        dtd = paper_d1_dtd()
        assert dtd.children_of("r") == frozenset({"a"})
        assert dtd.children_of("a") == frozenset({"b", "c", "e"})
        assert dtd.children_of("f") == frozenset({"a", "g"})

    def test_sibling_dtd_shape(self):
        dtd = paper_sibling_dtd()
        assert dtd.children_of("a") == frozenset({"b", "f"})
        assert dtd.children_of("b") == frozenset({"b", "c"})

    def test_bib_book_content(self):
        dtd = bib_dtd()
        assert dtd.children_of("book") == frozenset(
            {"title", "author", "editor", "publisher", "price"}
        )

    def test_xmark_core_paths(self):
        dtd = xmark_dtd()
        assert "item" in dtd.children_of("europe")
        assert "description" in dtd.children_of("item")
        assert dtd.children_of("description") == frozenset(
            {"text", "parlist"}
        )
        assert "keyword" in dtd.children_of("text")
        assert "annotation" in dtd.children_of("closed_auction")

    def test_xmark_start(self):
        assert xmark_dtd().start == "site"
