"""XML parser tests."""

import pytest

from repro.xmldm import XMLParseError, parse_xml, serialize


class TestParsing:
    def test_empty_element(self):
        tree = parse_xml("<doc/>")
        assert tree.store.tag(tree.root) == "doc"
        assert tree.store.children(tree.root) == []

    def test_nested(self):
        tree = parse_xml("<doc><a><c/></a></doc>")
        store = tree.store
        a = store.children(tree.root)[0]
        assert store.tag(a) == "a"
        assert store.tag(store.children(a)[0]) == "c"

    def test_text_content(self):
        tree = parse_xml("<t>hello world</t>")
        kid = tree.store.children(tree.root)[0]
        assert tree.store.text(kid) == "hello world"

    def test_mixed_content(self):
        tree = parse_xml("<t>pre<b/>post</t>")
        kids = tree.store.children(tree.root)
        assert tree.store.text(kids[0]) == "pre"
        assert tree.store.tag(kids[1]) == "b"
        assert tree.store.text(kids[2]) == "post"

    def test_whitespace_stripped_by_default(self):
        tree = parse_xml("<doc>\n  <a/>\n</doc>")
        kids = tree.store.children(tree.root)
        assert len(kids) == 1

    def test_whitespace_kept_on_request(self):
        tree = parse_xml("<doc>\n  <a/>\n</doc>", strip_whitespace=False)
        assert len(tree.store.children(tree.root)) == 3

    def test_attributes_discarded(self):
        tree = parse_xml('<doc id="1" class=\'x\'><a href="u"/></doc>')
        assert tree.store.tag(tree.root) == "doc"
        assert len(tree.store.children(tree.root)) == 1

    def test_entities_decoded(self):
        tree = parse_xml("<t>a &lt; b &amp; c</t>")
        kid = tree.store.children(tree.root)[0]
        assert tree.store.text(kid) == "a < b & c"

    def test_comments_skipped(self):
        tree = parse_xml("<doc><!-- note --><a/></doc>")
        assert len(tree.store.children(tree.root)) == 1

    def test_prolog_skipped(self):
        tree = parse_xml(
            '<?xml version="1.0"?><!DOCTYPE doc SYSTEM "d.dtd"><doc/>'
        )
        assert tree.store.tag(tree.root) == "doc"

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a><b></a></b>")

    def test_trailing_content_rejected(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a/><b/>")

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a id=1/>")

    def test_unterminated_comment_rejected(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a><!-- oops</a>")


class TestRoundTrip:
    def test_compact_roundtrip(self):
        text = "<doc><a><c/></a><b>hi</b></doc>"
        tree = parse_xml(text)
        assert serialize(tree.store, tree.root) == text

    def test_indented_output(self):
        tree = parse_xml("<doc><a/></doc>")
        pretty = serialize(tree.store, tree.root, indent=2)
        assert pretty == "<doc>\n  <a/>\n</doc>\n"

    def test_entity_roundtrip(self):
        tree = parse_xml("<t>a &amp; b</t>")
        out = serialize(tree.store, tree.root)
        reparsed = parse_xml(out)
        kid = reparsed.store.children(reparsed.root)[0]
        assert reparsed.store.text(kid) == "a & b"
