"""Random document generator: validity, determinism, sizing, coverage."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import bib_dtd, paper_d1_dtd, paper_doc_dtd, xmark_dtd
from repro.xmldm import (
    DocumentGenerator,
    document_bytes,
    generate_corpus,
    generate_document,
    is_valid,
    validate,
)


class TestValidity:
    def test_doc_dtd(self, doc_dtd):
        validate(generate_document(doc_dtd, 500, seed=1), doc_dtd)

    def test_bib(self, bib):
        validate(generate_document(bib, 2000, seed=2), bib)

    def test_recursive_d1(self, d1_dtd):
        validate(generate_document(d1_dtd, 2000, seed=3), d1_dtd)

    def test_xmark(self, xmark):
        validate(generate_document(xmark, 20_000, seed=4), xmark)


class TestDeterminism:
    def test_same_seed_same_document(self, xmark):
        from repro.xmldm import serialize

        one = generate_document(xmark, 5000, seed=7)
        two = generate_document(xmark, 5000, seed=7)
        assert serialize(one.store, one.root) == serialize(
            two.store, two.root
        )

    def test_different_seeds_differ(self, xmark):
        from repro.xmldm import serialize

        one = generate_document(xmark, 5000, seed=7)
        two = generate_document(xmark, 5000, seed=8)
        assert serialize(one.store, one.root) != serialize(
            two.store, two.root
        )

    def test_injected_rng_replaces_seed(self, bib):
        import random

        from repro.xmldm import serialize

        seeded = generate_document(bib, 2000, seed=5)
        injected = generate_document(bib, 2000, seed=999,
                                     rng=random.Random(5))
        assert serialize(seeded.store, seeded.root) == serialize(
            injected.store, injected.root
        )

    def test_injected_rng_is_consumed_not_reseeded(self, bib):
        # One shared stream drives two documents: the second draw must
        # continue the stream (differ from a fresh same-seed generator).
        import random

        from repro.xmldm import serialize

        rng = random.Random(5)
        first = DocumentGenerator(bib, rng=rng).generate(2000)
        second = DocumentGenerator(bib, rng=rng).generate(2000)
        assert serialize(first.store, first.root) != serialize(
            second.store, second.root
        )


class TestSizing:
    def test_size_tracks_target(self, xmark):
        small = document_bytes(generate_document(xmark, 10_000, seed=1))
        large = document_bytes(generate_document(xmark, 100_000, seed=1))
        assert large > 3 * small

    def test_target_roughly_met(self, xmark):
        size = document_bytes(generate_document(xmark, 50_000, seed=42))
        assert 20_000 < size < 150_000


class TestCoverage:
    def test_all_types_present(self, xmark):
        tree = generate_document(xmark, 10_000, seed=0,
                                 ensure_coverage=True)
        present = {
            tree.store.tag(loc)
            for loc in tree.store.descendants_or_self(tree.root)
            if tree.store.is_element(loc)
        }
        reachable = {
            s for s in xmark.descendants_of("site") if s in xmark.alphabet
        }
        missing = reachable - present
        # Coverage is best-effort; the overwhelming majority must land.
        assert len(missing) <= 2, f"missing types: {sorted(missing)}"

    def test_corpus_seeds_distinct(self, doc_dtd):
        corpus = generate_corpus(doc_dtd, 3, target_bytes=300, seed=5)
        assert len(corpus) == 3
        for tree in corpus:
            assert is_valid(tree, doc_dtd)


class TestGeneratorObject:
    def test_depth_limit_respected(self, d1_dtd):
        generator = DocumentGenerator(d1_dtd, seed=1, max_depth=6)
        tree = generator.generate(100_000, ensure_coverage=False)
        store = tree.store
        max_depth = max(
            store.depth(loc)
            for loc in store.descendants_or_self(tree.root)
        )
        # After the cutoff, shortest-word expansion still needs a few
        # levels to bottom out (d1's shortest recursion exit is short).
        assert max_depth <= 6 + 4


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=1000),
       st.sampled_from([200, 2000]))
def test_generated_documents_always_valid(seed, target):
    for dtd in (paper_doc_dtd(), paper_d1_dtd(), bib_dtd()):
        tree = generate_document(dtd, target, seed=seed)
        assert is_valid(tree, dtd)


@settings(max_examples=5, deadline=None)
@given(st.integers(min_value=0, max_value=100))
def test_xmark_generated_documents_valid(seed):
    tree = generate_document(xmark_dtd(), 4000, seed=seed)
    assert is_valid(tree, xmark_dtd())
