"""Store data-model tests (Section 2's formalization)."""

import pytest

from repro.schema.regex import TEXT_SYMBOL
from repro.xmldm import (
    Store,
    StoreError,
    Tree,
    sequences_equivalent,
    value_equivalent,
)


@pytest.fixture()
def figure1() -> Tree:
    """Hand-built Figure 1 store."""
    store = Store()
    c1 = store.new_element("c")
    c2 = store.new_element("c")
    c3 = store.new_element("c")
    c4 = store.new_element("c")
    a1 = store.new_element("a", [c1])
    a2 = store.new_element("a", [c2])
    b3 = store.new_element("b", [c3])
    a4 = store.new_element("a", [c4])
    root = store.new_element("doc", [a1, a2, b3, a4])
    return Tree(store, root)


class TestBasics:
    def test_typ(self, figure1):
        store = figure1.store
        assert store.typ(figure1.root) == "doc"
        text = store.new_text("hello")
        assert store.typ(text) == TEXT_SYMBOL

    def test_children_order(self, figure1):
        store = figure1.store
        tags = [store.tag(c) for c in store.children(figure1.root)]
        assert tags == ["a", "a", "b", "a"]

    def test_parent(self, figure1):
        store = figure1.store
        first_a = store.children(figure1.root)[0]
        assert store.parent(first_a) == figure1.root
        assert store.parent(figure1.root) is None

    def test_node_chain_matches_paper(self, figure1):
        """Definition 2.2: chains of Figure 1's locations."""
        store = figure1.store
        kids = store.children(figure1.root)
        assert store.node_chain(kids[0]) == ("doc", "a")
        assert store.node_chain(kids[2]) == ("doc", "b")
        c_loc = store.children(kids[0])[0]
        assert store.node_chain(c_loc) == ("doc", "a", "c")

    def test_depth(self, figure1):
        store = figure1.store
        c_loc = store.children(store.children(figure1.root)[0])[0]
        assert store.depth(figure1.root) == 0
        assert store.depth(c_loc) == 2

    def test_unknown_location(self, figure1):
        with pytest.raises(StoreError):
            figure1.store.node(9999)

    def test_text_accessors(self):
        store = Store()
        loc = store.new_text("v")
        assert store.text(loc) == "v"
        with pytest.raises(StoreError):
            store.tag(loc)
        elem = store.new_element("a")
        with pytest.raises(StoreError):
            store.text(elem)

    def test_size(self, figure1):
        assert figure1.size() == 9
        assert len(figure1.store) == 9


class TestTraversal:
    def test_descendants_document_order(self, figure1):
        store = figure1.store
        tags = [store.tag(d) for d in store.descendants(figure1.root)]
        assert tags == ["a", "c", "a", "c", "b", "c", "a", "c"]

    def test_descendants_or_self(self, figure1):
        store = figure1.store
        nodes = list(store.descendants_or_self(figure1.root))
        assert nodes[0] == figure1.root
        assert len(nodes) == 9

    def test_ancestors(self, figure1):
        store = figure1.store
        c_loc = store.children(store.children(figure1.root)[0])[0]
        assert [store.tag(a) for a in store.ancestors(c_loc)] == ["a", "doc"]

    def test_siblings(self, figure1):
        store = figure1.store
        kids = store.children(figure1.root)
        assert store.siblings_after(kids[1]) == kids[2:]
        assert store.siblings_before(kids[1]) == kids[:1]
        assert store.siblings_after(figure1.root) == []


class TestMutation:
    def test_replace_children_updates_parents(self, figure1):
        store = figure1.store
        kids = store.children(figure1.root)
        store.replace_children(figure1.root, kids[:2])
        assert store.parent(kids[3]) is None
        assert store.children(figure1.root) == kids[:2]

    def test_rename(self, figure1):
        store = figure1.store
        kid = store.children(figure1.root)[2]
        store.rename(kid, "a")
        assert store.tag(kid) == "a"

    def test_rename_text_rejected(self):
        store = Store()
        loc = store.new_text("x")
        with pytest.raises(StoreError):
            store.rename(loc, "a")

    def test_detach(self, figure1):
        store = figure1.store
        kid = store.children(figure1.root)[0]
        store.detach(kid)
        assert store.parent(kid) is None
        assert len(store.children(figure1.root)) == 3
        assert kid in store  # detached, not deleted from the store

    def test_detach_root_is_noop(self, figure1):
        figure1.store.detach(figure1.root)
        assert figure1.root in figure1.store


class TestCopying:
    def test_copy_subtree_is_value_equivalent(self, figure1):
        store = figure1.store
        copy = store.copy_subtree(store, figure1.root)
        assert copy != figure1.root
        assert value_equivalent(store, copy, store, figure1.root)

    def test_copy_is_detached(self, figure1):
        store = figure1.store
        kid = store.children(figure1.root)[0]
        copy = store.copy_subtree(store, kid)
        assert store.parent(copy) is None

    def test_clone_independent(self, figure1):
        clone = figure1.store.clone()
        kid = clone.children(figure1.root)[0]
        clone.rename(kid, "z")
        original_kid = figure1.store.children(figure1.root)[0]
        assert figure1.store.tag(original_kid) == "a"

    def test_restrict_to(self, figure1):
        store = figure1.store
        kid = store.children(figure1.root)[0]
        sub = store.restrict_to(kid)
        assert kid in sub
        assert figure1.root not in sub
        assert len(sub) == 2


class TestValueEquivalence:
    def test_reflexive(self, figure1):
        assert value_equivalent(
            figure1.store, figure1.root, figure1.store, figure1.root
        )

    def test_different_tag(self):
        s = Store()
        a = s.new_element("a")
        b = s.new_element("b")
        assert not value_equivalent(s, a, s, b)

    def test_different_text(self):
        s = Store()
        t1 = s.new_text("x")
        t2 = s.new_text("y")
        assert not value_equivalent(s, t1, s, t2)

    def test_child_order_matters(self):
        s = Store()
        ab = s.new_element("r", [s.new_element("a"), s.new_element("b")])
        ba = s.new_element("r", [s.new_element("b"), s.new_element("a")])
        assert not value_equivalent(s, ab, s, ba)

    def test_text_vs_element(self):
        s = Store()
        assert not value_equivalent(
            s, s.new_text("a"), s, s.new_element("a")
        )

    def test_sequences(self):
        s = Store()
        a1, a2 = s.new_element("a"), s.new_element("a")
        b = s.new_element("b")
        assert sequences_equivalent(s, [a1, b], s, [a2, b])
        assert not sequences_equivalent(s, [a1, b], s, [b, a1])
        assert not sequences_equivalent(s, [a1], s, [a1, b])
