"""Validation against DTDs and EDTDs."""

import pytest

from repro.schema import DTD, EDTD
from repro.xmldm import (
    ValidationError,
    is_valid,
    is_valid_edtd,
    parse_xml,
    typing,
    validate,
)


class TestDTDValidation:
    def test_figure1_valid(self, figure1_tree, doc_dtd):
        validate(figure1_tree, doc_dtd)

    def test_wrong_root(self, doc_dtd):
        tree = parse_xml("<a><c/></a>")
        with pytest.raises(ValidationError):
            validate(tree, doc_dtd)

    def test_unknown_element(self, doc_dtd):
        tree = parse_xml("<doc><z/></doc>")
        with pytest.raises(ValidationError):
            validate(tree, doc_dtd)

    def test_content_model_violation(self, doc_dtd):
        tree = parse_xml("<doc><a/></doc>")  # a requires a c child
        assert not is_valid(tree, doc_dtd)

    def test_text_where_element_expected(self, doc_dtd):
        tree = parse_xml("<doc>text</doc>")
        assert not is_valid(tree, doc_dtd)

    def test_pcdata_allowed(self):
        dtd = DTD.from_dict("t", {"t": "(#PCDATA)"})
        assert is_valid(parse_xml("<t>hello</t>"), dtd)
        assert is_valid(parse_xml("<t/>"), dtd)

    def test_bib_fixture_valid(self, bib_tree, bib):
        validate(bib_tree, bib)

    def test_error_carries_location(self, doc_dtd):
        tree = parse_xml("<doc><a/></doc>")
        with pytest.raises(ValidationError) as exc:
            validate(tree, doc_dtd)
        assert exc.value.loc in tree.store


class TestEDTDValidation:
    @pytest.fixture()
    def schema(self) -> EDTD:
        """a1 has a b child, a2 has a c child; both labeled 'a'."""
        core = DTD.from_dict(
            "r",
            {"r": "(a1, a2)", "a1": "b", "a2": "c", "b": "EMPTY",
             "c": "EMPTY"},
        )
        return EDTD(core, {"r": "r", "a1": "a", "a2": "a", "b": "b",
                           "c": "c"})

    def test_valid_assignment(self, schema):
        tree = parse_xml("<r><a><b/></a><a><c/></a></r>")
        assignment = typing(tree, schema)
        assert assignment is not None
        kids = tree.store.children(tree.root)
        assert assignment[kids[0]] == "a1"
        assert assignment[kids[1]] == "a2"

    def test_order_matters(self, schema):
        tree = parse_xml("<r><a><c/></a><a><b/></a></r>")
        assert not is_valid_edtd(tree, schema)

    def test_wrong_label(self, schema):
        tree = parse_xml("<r><x/><a><c/></a></r>")
        assert not is_valid_edtd(tree, schema)

    def test_root_label(self, schema):
        tree = parse_xml("<nope/>")
        assert typing(tree, schema) is None
