"""XML projection t|L (Section 3.4)."""

from repro.xmldm import (
    parse_xml,
    project,
    typed_locations,
    upward_closure,
    value_equivalent,
)


class TestUpwardClosure:
    def test_adds_ancestors(self, figure1_tree):
        store = figure1_tree.store
        a = store.children(figure1_tree.root)[0]
        c = store.children(a)[0]
        closed = upward_closure(store, {c})
        assert closed == {c, a, figure1_tree.root}

    def test_idempotent(self, figure1_tree):
        store = figure1_tree.store
        once = upward_closure(store, {figure1_tree.root})
        assert upward_closure(store, once) == once


class TestProject:
    def test_keep_all_is_identity(self, figure1_tree):
        keep = set(
            figure1_tree.store.descendants_or_self(figure1_tree.root)
        )
        projected = project(figure1_tree, keep)
        assert value_equivalent(
            projected.store, projected.root,
            figure1_tree.store, figure1_tree.root,
        )

    def test_prunes_subtrees(self, figure1_tree):
        store = figure1_tree.store
        kids = store.children(figure1_tree.root)
        b_kid = kids[2]
        projected = project(figure1_tree, {b_kid})
        expected = parse_xml("<doc><b/></doc>")
        assert value_equivalent(
            projected.store, projected.root,
            expected.store, expected.root,
        )

    def test_preserves_order(self, figure1_tree):
        store = figure1_tree.store
        kids = store.children(figure1_tree.root)
        projected = project(figure1_tree, {kids[0], kids[3]})
        tags = [
            projected.store.tag(k)
            for k in projected.store.children(projected.root)
        ]
        assert tags == ["a", "a"]

    def test_projection_is_fresh(self, figure1_tree):
        projected = project(figure1_tree, set())
        projected.store.rename(projected.root, "z")
        assert figure1_tree.store.tag(figure1_tree.root) == "doc"


class TestTypedLocations:
    def test_exact_chains(self, figure1_tree):
        locs = typed_locations(figure1_tree, {("doc", "b")})
        assert len(locs) == 1
        (b,) = locs
        assert figure1_tree.store.tag(b) == "b"

    def test_with_descendants(self, figure1_tree):
        locs = typed_locations(
            figure1_tree, {("doc", "b")}, include_descendants=True
        )
        tags = sorted(figure1_tree.store.typ(loc) for loc in locs)
        assert tags == ["b", "c"]
