"""View cache: refresh-skipping correctness and bookkeeping."""

import pytest

from repro.schema import bib_dtd
from repro.viewmaint import ViewCache
from repro.xmldm import parse_xml, sequences_equivalent
from repro.xquery import ROOT_VAR, evaluate_query, parse_query


@pytest.fixture()
def tree():
    return parse_xml(
        "<bib>"
        "<book><title>T1</title><author><last>L</last><first>F</first>"
        "</author><publisher>P</publisher><price>10</price></book>"
        "</bib>"
    )


@pytest.fixture()
def cache(tree):
    cache = ViewCache(bib_dtd(), tree)
    cache.register("titles", "//title")
    cache.register("prices", "//price")
    cache.register("authors", "//author/last")
    return cache


class TestRefreshSkipping:
    def test_initial_materialization(self, cache):
        assert len(cache.result("titles")) == 1
        assert cache.view_names() == ["titles", "prices", "authors"]

    def test_independent_update_skips_all(self, cache):
        refreshed = cache.apply("delete //author/first")
        assert refreshed == []
        assert cache.stats.refreshes_skipped == 3

    def test_dependent_update_refreshes_one(self, cache):
        refreshed = cache.apply(
            "for $x in //price return replace $x with <price>0</price>"
        )
        assert refreshed == ["prices"]
        assert cache.stats.refreshes_done == 1
        assert cache.stats.refreshes_skipped == 2

    def test_results_always_correct(self, cache, tree):
        """The invariant that matters: cached results equal fresh
        evaluation after every update, refreshed or skipped."""
        updates = [
            "delete //author/first",
            "for $x in //book return insert <author><last>n</last>"
            "<first>m</first></author> into $x",
            "for $x in //price return replace $x with <price>1</price>",
        ]
        for update in updates:
            cache.apply(update)
            for name in cache.view_names():
                fresh = evaluate_query(
                    parse_query({"titles": "//title", "prices": "//price",
                                 "authors": "//author/last"}[name]),
                    tree.store, {ROOT_VAR: [tree.root]},
                )
                assert sequences_equivalent(
                    tree.store, cache.result(name), tree.store, fresh
                ), (name, update)

    def test_verdicts_memoized(self, cache):
        from repro.xupdate.parser import parse_update

        update = parse_update("delete //author/first")
        cache.apply(update)
        before = cache.stats.analysis_seconds
        cache.apply(update)  # same expression object: memo hit
        assert cache.stats.analysis_seconds == before

    def test_skip_ratio(self, cache):
        cache.apply("delete //author/first")
        assert cache.stats.skip_ratio == 1.0
        cache.apply(
            "for $x in //title return replace $x with <title>x</title>"
        )
        assert 0 < cache.stats.skip_ratio < 1.0

    def test_skipped_by_view_counts(self, cache):
        cache.apply("delete //author/first")
        assert cache.stats.skipped_by_view == {
            "titles": 1, "prices": 1, "authors": 1
        }
