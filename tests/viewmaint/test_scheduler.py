"""Isolation scheduler: wave construction and conflict semantics."""

import pytest

from repro.schema import bib_dtd
from repro.viewmaint import IsolationScheduler


@pytest.fixture()
def scheduler():
    return IsolationScheduler(bib_dtd())


class TestConflicts:
    def test_queries_never_conflict(self, scheduler):
        scheduler.add_query("q1", "//title")
        scheduler.add_query("q2", "//title")
        first, second = scheduler._operations
        assert not scheduler.conflicts(first, second)

    def test_updates_always_conflict(self, scheduler):
        scheduler.add_update("u1", "delete //price")
        scheduler.add_update("u2", "delete //title")
        first, second = scheduler._operations
        assert scheduler.conflicts(first, second)

    def test_independent_query_update(self, scheduler):
        scheduler.add_query("q", "//title")
        scheduler.add_update("u", "delete //price")
        first, second = scheduler._operations
        assert not scheduler.conflicts(first, second)

    def test_dependent_query_update(self, scheduler):
        scheduler.add_query("q", "//title")
        scheduler.add_update("u", "delete //book")
        first, second = scheduler._operations
        assert scheduler.conflicts(first, second)


class TestWaves:
    def test_all_queries_one_wave(self, scheduler):
        scheduler.add_query("q1", "//title")
        scheduler.add_query("q2", "//price")
        scheduler.add_query("q3", "//author")
        assert scheduler.schedule() == [["q1", "q2", "q3"]]

    def test_dependent_query_waits(self, scheduler):
        scheduler.add_update("u", "delete //price")
        scheduler.add_query("q-price", "//price")
        scheduler.add_query("q-title", "//title")
        waves = scheduler.schedule()
        assert waves == [["u", "q-title"], ["q-price"]]

    def test_two_updates_two_waves(self, scheduler):
        scheduler.add_update("u1", "delete //price")
        scheduler.add_update("u2", "delete //author/first")
        waves = scheduler.schedule()
        assert waves == [["u1"], ["u2"]]

    def test_order_preserved_for_conflicts(self, scheduler):
        scheduler.add_query("q1", "//price")
        scheduler.add_update("u", "delete //price")
        scheduler.add_query("q2", "//price")
        waves = scheduler.schedule()
        # q1 reads before u; q2 must wait until after u.
        assert waves.index(next(w for w in waves if "q1" in w)) \
            < waves.index(next(w for w in waves if "q2" in w))

    def test_empty_schedule(self, scheduler):
        assert scheduler.schedule() == []
