"""Access control: soundness (never admit a violating update)."""

import pytest

from repro.analysis.dynamic import differs_on
from repro.schema import bib_dtd
from repro.viewmaint import AccessController
from repro.xmldm import parse_xml
from repro.xquery.parser import parse_query
from repro.xupdate.parser import parse_update


@pytest.fixture()
def guard():
    controller = AccessController(bib_dtd())
    controller.protect("pricing", "//price")
    controller.protect("titles", "//title")
    return controller


class TestDecisions:
    def test_harmless_update_allowed(self, guard):
        assert guard.check("delete //author/first").allowed

    def test_direct_violation_rejected(self, guard):
        decision = guard.check(
            "for $x in //price return replace $x with <price>0</price>"
        )
        assert not decision.allowed
        assert decision.violated_policies == ("pricing",)

    def test_ancestor_violation_rejected(self, guard):
        decision = guard.check("delete //book")
        assert not decision.allowed
        assert set(decision.violated_policies) == {"pricing", "titles"}

    def test_multiple_policies_reported(self, guard):
        decision = guard.check("delete /bib")
        assert set(decision.violated_policies) == {"pricing", "titles"}

    def test_decision_is_truthy(self, guard):
        assert bool(guard.check("delete //author/first"))
        assert not bool(guard.check("delete //price"))

    def test_policies_listed(self, guard):
        assert guard.policies() == ["pricing", "titles"]


class TestSoundness:
    def test_allowed_updates_never_touch_protected_data(self, guard):
        """Dynamic confirmation on a concrete document."""
        tree = parse_xml(
            "<bib><book><title>t</title><author><last>l</last>"
            "<first>f</first></author><publisher>p</publisher>"
            "<price>9</price></book></bib>"
        )
        candidates = [
            "delete //author/first",
            "for $x in //book return insert <author><last>n</last>"
            "<first>m</first></author> into $x",
            "delete //publisher",
            "for $x in //price return replace $x with <price>0</price>",
            "delete //book/title",
        ]
        for update_text in candidates:
            if not guard.check(update_text).allowed:
                continue
            update = parse_update(update_text)
            for policy in ("//price", "//title"):
                assert not differs_on(parse_query(policy), update, tree), (
                    f"admitted update {update_text!r} changed {policy}"
                )
