"""Duration stats must come from the monotonic clock.

``time.time()`` is subject to NTP steps and leap adjustments, so a
duration computed from it can come out negative or wildly wrong; every
elapsed-time measurement in the library (engine reports, view
maintenance stats, bench harness, serving/loadgen latencies) must use
``time.perf_counter()``.  This guard greps the source tree so a future
module cannot quietly reintroduce wall-clock deltas.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

FORBIDDEN = re.compile(
    r"\btime\.time\(\)|\btime\.clock\(\)|\bdatetime\.now\(\)"
)


def test_no_wall_clock_durations_in_src():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        for number, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            if FORBIDDEN.search(line):
                offenders.append(f"{path.relative_to(SRC)}:{number}: "
                                 f"{line.strip()}")
    assert not offenders, (
        "use time.perf_counter() for durations:\n" + "\n".join(offenders)
    )


def test_perf_counter_is_actually_used():
    # The guard above would pass vacuously on an empty tree; anchor it.
    timed_modules = [
        SRC / "repro" / "analysis" / "engine.py",
        SRC / "repro" / "viewmaint" / "cache.py",
        SRC / "repro" / "serve" / "loadgen.py",
        SRC / "repro" / "bench" / "batch.py",
        SRC / "repro" / "obs" / "plan.py",
        SRC / "repro" / "obs" / "tracing.py",
        SRC / "repro" / "serve" / "batching.py",
        SRC / "repro" / "storage" / "base.py",
    ]
    for path in timed_modules:
        assert "perf_counter" in path.read_text(encoding="utf-8"), path
