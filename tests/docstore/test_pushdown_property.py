"""Differential property suite for SQL pushdown (ISSUE 7).

Hypothesis drives fuzzer-generated schemas, documents, and
pushdown-eligible queries through four evaluators:

1. the dict-store evaluator (the Section-2 reference semantics),
2. the indexed in-memory evaluator (axis accelerators),
3. ``MemoryDocumentStore.run_steps`` (accelerators over persisted rows),
4. ``SqliteDocumentStore.run_steps`` (the SQL pushdown itself, answers
   serialized straight from node-row range scans),

and asserts byte-identical serialized answers *in identical document
order* -- including the nested-loop duplicate multiplicity the
desugared For-chains produce.  Positional predicates and dedup get
their own differential legs.

When a differential fails, the (Hypothesis-shrunk) counterexample is
written to ``tests/corpus/pushdown-<digest>.json``; committing such a
file makes ``test_corpus_replays_agree`` guard it forever.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docstore.pushdown import (
    compile_query,
    run_steps_on_tree,
    serialize_answers,
)
from repro.docstore.streamload import load_xml
from repro.storage.memory import MemoryDocumentStore
from repro.storage.sqlite import SqliteDocumentStore
from repro.xmldm.parse import parse_xml
from repro.xmldm.serialize import serialize
from repro.xquery.ast import ROOT_VAR
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_query

from ..strategies import trees

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

KIND = "pushdown-divergence"


@st.composite
def eligible_queries(draw, dtd) -> str:
    """A surface query inside the pushdown fragment: 1-3 downward
    steps over the schema's alphabet (``/`` or ``//``, names or
    wildcards), optionally ending in a ``text()``/``node()`` step."""
    tags = sorted(dtd.alphabet)
    parts = []
    for _ in range(draw(st.integers(1, 3))):
        separator = draw(st.sampled_from(["/", "//"]))
        test = draw(st.sampled_from(tags + ["*"]))
        parts.append(separator + test)
    if draw(st.booleans()):
        parts.append(draw(st.sampled_from(
            ["/text()", "//text()", "//node()"]
        )))
    return "".join(parts)


def _evaluated(tree, query) -> list[str]:
    """Serialized evaluator answers on an in-memory tree."""
    return [
        serialize(tree.store, loc)
        for loc in evaluate_query(query, tree.store,
                                  {ROOT_VAR: [tree.root]})
    ]


def _dump_counterexample(xml: str, query_text: str,
                         note: str) -> Path:
    """Persist a shrunk counterexample for corpus replay."""
    digest = hashlib.sha256(
        f"{query_text}\x1e{xml}".encode()
    ).hexdigest()[:12]
    path = CORPUS_DIR / f"pushdown-{digest}.json"
    path.write_text(json.dumps({
        "kind": KIND,
        "query": query_text,
        "xml": xml,
        "provenance": {"origin": "hypothesis", "note": note},
    }, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def _assert_differential(xml: str, query_text: str) -> None:
    """The four-way byte-identity check one corpus entry pins."""
    query = parse_query(query_text)
    steps = compile_query(query)
    assert steps is not None, (
        f"query left the pushdown fragment: {query_text!r}"
    )
    expected = _evaluated(parse_xml(xml), query)
    indexed = load_xml(xml).tree
    assert _evaluated(indexed, query) == expected

    memory = MemoryDocumentStore()
    memory.save("d", indexed, "g")
    memory_locs = memory.run_steps("d", steps)
    assert serialize_answers(memory, "d", memory_locs) == expected

    sqlite = SqliteDocumentStore(":memory:")
    try:
        sqlite.save("d", indexed, "g")
        sqlite_locs = sqlite.run_steps("d", steps)
        # Same locations (hence same document order), then same bytes.
        assert sqlite_locs == memory_locs
        assert serialize_answers(sqlite, "d", sqlite_locs) == expected

        # Dedup leg: distinct locations in document order, everywhere.
        deduped = sqlite.run_steps("d", steps, dedup=True)
        assert deduped == sorted(set(sqlite_locs))
        assert memory.run_steps("d", steps, dedup=True) == deduped

        # Positional leg: keep each context's n-th match of the final
        # step; the backends must agree with the in-memory reference.
        for position in (1, 2):
            positional = steps[:-1] + [
                replace(steps[-1], position=position)
            ]
            reference = run_steps_on_tree(indexed, positional)
            assert memory.run_steps("d", positional) == reference
            assert sqlite.run_steps("d", positional) == reference
    finally:
        sqlite.close()


@settings(max_examples=40, deadline=None)
@given(data=st.data(), case=trees())
def test_pushdown_differential(data, case):
    dtd, dict_tree = case
    xml = serialize(dict_tree.store, dict_tree.root)
    query_text = data.draw(eligible_queries(dtd))
    try:
        _assert_differential(xml, query_text)
    except AssertionError:
        # Hypothesis shrinks through repeated calls; the last write is
        # the shrunk counterexample, ready to commit for replay.
        _dump_counterexample(
            xml, query_text,
            "pushdown answers diverged from the evaluator",
        )
        raise


CORPUS_FILES = sorted(
    path for path in CORPUS_DIR.glob("pushdown-*.json")
    if json.loads(path.read_text(encoding="utf-8")).get("kind") == KIND
)


def test_corpus_exists():
    assert CORPUS_FILES, "pushdown regression corpus must not be empty"


def test_corpus_replays_agree():
    """Every committed counterexample must stay fixed: the differential
    that once failed now passes."""
    for path in CORPUS_FILES:
        entry = json.loads(path.read_text(encoding="utf-8"))
        _assert_differential(entry["xml"], entry["query"])
