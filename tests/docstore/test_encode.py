"""Interval encoding: invariants, store-interface parity, span
re-encoding under mutation."""

import pytest

from repro.docstore.adapter import to_indexed, to_tree
from repro.docstore.encode import (
    UNENCODED,
    IndexedStoreBuilder,
)
from repro.docstore.streamload import load_xml
from repro.schema import xmark_dtd
from repro.xmldm import generate_document, parse_xml, serialize
from repro.xmldm.store import StoreError
from repro.xquery.ast import ROOT_VAR
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_query
from repro.xupdate.evaluator import apply_update
from repro.xupdate.parser import parse_update


def _xml(dtd, byts, seed):
    tree = generate_document(dtd, byts, seed=seed)
    return serialize(tree.store, tree.root)


@pytest.fixture(scope="module")
def pair():
    text = _xml(xmark_dtd(), 40_000, seed=11)
    return parse_xml(text), load_xml(text).tree


class TestEncodingInvariants:
    def test_pre_order_identity_after_build(self, pair):
        _, it = pair
        store = it.store
        for loc in store.locations():
            assert store.pre(loc) == loc

    def test_interval_containment(self, pair):
        _, it = pair
        store = it.store
        for loc in store.locations():
            descendants = list(store.descendants(loc))
            lo, hi = store.pre(loc), store.pre(loc) + store.subtree_size(loc)
            assert all(lo < store.pre(d) < hi for d in descendants)
            assert len(descendants) == store.subtree_size(loc) - 1

    def test_post_order_identity(self, pair):
        """post = pre + size - 1 - level reproduces a real post-order."""
        _, it = pair
        store = it.store
        posts = sorted(store.post(loc) for loc in store.locations())
        assert posts == list(range(len(store)))
        # Children's post ranks precede their parent's.
        for loc in store.locations():
            for child in store.children(loc):
                assert store.post(child) < store.post(loc)

    def test_levels_match_depth(self, pair):
        _, it = pair
        store = it.store
        for loc in store.locations():
            assert store.depth(loc) == len(store.node_chain(loc)) - 1


class TestStoreParity:
    """The indexed store behaves exactly like the dict store."""

    def test_serialize_equality(self, pair):
        dt, it = pair
        assert serialize(it.store, it.root) == serialize(dt.store, dt.root)

    def test_accessors_agree(self, pair):
        dt, it = pair
        dict_locs = list(dt.store.descendants_or_self(dt.root))
        idx_locs = list(it.store.descendants_or_self(it.root))
        assert len(dict_locs) == len(idx_locs)
        for dl, il in zip(dict_locs, idx_locs):
            assert dt.store.typ(dl) == it.store.typ(il)
            assert dt.store.node_chain(dl) == it.store.node_chain(il)
            assert dt.store.is_element(dl) == it.store.is_element(il)
            assert len(dt.store.children(dl)) == len(it.store.children(il))

    def test_type_errors_match_dict_store(self, pair):
        _, it = pair
        store = it.store
        text_loc = next(loc for loc in store.locations()
                        if store.is_text(loc))
        with pytest.raises(StoreError):
            store.tag(text_loc)
        with pytest.raises(StoreError):
            store.text(it.root)
        with pytest.raises(StoreError):
            store.rename(text_loc, "x")
        with pytest.raises(StoreError):
            store.node(len(store) + 5)

    def test_round_trip_via_adapter(self, pair):
        dt, it = pair
        back = to_tree(it)
        assert serialize(back.store, back.root) == \
            serialize(dt.store, dt.root)
        again = to_indexed(back)
        assert serialize(again.store, again.root) == \
            serialize(dt.store, dt.root)


UPDATES = [
    "delete //emailaddress",
    "rename /site/regions as zones",
    "for $p in /site/people/person return "
    "if ($p/phone) then delete $p/phone else ()",
    "for $x in //watch return replace $x with <watch>gone</watch>",
    "for $p in /site/people/person return "
    "insert <flag>f</flag> into $p",
]


class TestMutationParity:
    """Same updates on dict and indexed stores produce the same tree,
    and accelerated reads stay correct after span re-encoding."""

    @pytest.mark.parametrize("update_text", UPDATES)
    def test_update_differential(self, update_text):
        text = _xml(xmark_dtd(), 25_000, seed=13)
        dt, it = parse_xml(text), load_xml(text).tree
        update = parse_update(update_text)
        apply_update(update, dt.store, {ROOT_VAR: [dt.root]})
        apply_update(update, it.store, {ROOT_VAR: [it.root]})
        assert serialize(it.store, it.root) == serialize(dt.store, dt.root)
        # The lazy re-encode restores every interval invariant.
        for loc in it.store.descendants_or_self(it.root):
            size = it.store.subtree_size(loc)
            assert size == 1 + sum(
                it.store.subtree_size(c) for c in it.store.children(loc)
            )

    def test_reencode_is_span_local(self):
        text = _xml(xmark_dtd(), 25_000, seed=13)
        it = load_xml(text).tree
        total = len(it.store)
        apply_update(parse_update("delete /site/people/person/phone"),
                     it.store, {ROOT_VAR: [it.root]})
        it.store.reencode()
        assert 0 < it.store.nodes_reencoded < total / 2, (
            "span re-encode re-walked most of the document"
        )

    def test_same_size_replace_shifts_no_tail(self):
        builder = IndexedStoreBuilder()
        builder.start_element("doc")
        for tag in ("a", "b", "c"):
            builder.start_element(tag)
            builder.text(tag)
            builder.end_element()
        builder.end_element()
        tree = builder.finish()
        store = tree.store
        b_loc = store.children(tree.root)[1]
        pre_before = [store.pre(loc) for loc in store.locations()]
        replacement = store.new_text("B")
        old_text = store.children(b_loc)[0]
        store.replace_children(b_loc, [replacement])
        store.reencode()
        assert store.pre(store.children(tree.root)[2]) == \
            pre_before[store.children(tree.root)[2]]
        assert store.pre(old_text) == UNENCODED

    def test_detached_nodes_fall_back_unencoded(self):
        builder = IndexedStoreBuilder()
        builder.start_element("doc")
        builder.start_element("a")
        builder.end_element()
        builder.end_element()
        tree = builder.finish()
        store = tree.store
        a = store.children(tree.root)[0]
        store.detach(a)
        store.reencode()
        assert store.parent(a) is None
        assert store.pre(a) == UNENCODED
        assert list(store.descendants(tree.root)) == []

    def test_move_into_earlier_span_keeps_document_order(self):
        """Moving an encoded subtree into a parent that precedes it in
        document order must not corrupt the index (the tail shift after
        the destination span's splice used to clobber the moved node's
        fresh ranks through its stale duplicate order entries)."""
        text = ("<root><b><t>first</t></b>"
                "<a><x><t>second</t></x></a></root>")
        dt, it = parse_xml(text), load_xml(text).tree
        for store, root in ((dt.store, dt.root), (it.store, it.root)):
            b, a = store.children(root)
            x = store.children(a)[0]
            store.detach(x)
            store.replace_children(b, store.children(b) + [x])
        assert serialize(it.store, it.root) == serialize(dt.store, dt.root)
        for source in ("//t", "//text()", "//x"):
            query = parse_query(source)
            on_dict = evaluate_query(query, dt.store,
                                     {ROOT_VAR: [dt.root]})
            on_indexed = evaluate_query(query, it.store,
                                        {ROOT_VAR: [it.root]})
            assert [dt.store.typ(c) for c in on_dict] == \
                [it.store.typ(c) for c in on_indexed], source
            texts_dict = [dt.store.text(c) for c in on_dict
                          if dt.store.is_text(c)]
            texts_idx = [it.store.text(c) for c in on_indexed
                         if it.store.is_text(c)]
            assert texts_dict == texts_idx, source
        # The interval invariant holds everywhere after the move.
        for loc in it.store.descendants_or_self(it.root):
            rank = it.store.pre(loc)
            assert it.store._order[rank] == loc

    def test_node_move_across_spans(self):
        """detach + re-insert elsewhere (the hard re-encode case)."""
        builder = IndexedStoreBuilder()
        builder.start_element("doc")
        builder.start_element("left")
        builder.start_element("x")
        builder.text("payload")
        builder.end_element()
        builder.end_element()
        builder.start_element("right")
        builder.end_element()
        builder.end_element()
        tree = builder.finish()
        store = tree.store
        left, right = store.children(tree.root)
        x = store.children(left)[0]
        store.detach(x)
        store.replace_children(right, [x])
        store.reencode()
        assert store.parent(x) == right
        assert store.node_chain(x) == ("doc", "right", "x")
        order = [store.typ(loc)
                 for loc in store.descendants_or_self(tree.root)]
        assert order == ["doc", "left", "right", "x", "#S"]


class TestBuilder:
    def test_rejects_unbalanced(self):
        builder = IndexedStoreBuilder()
        builder.start_element("doc")
        with pytest.raises(ValueError):
            builder.finish()

    def test_rejects_multiple_roots(self):
        builder = IndexedStoreBuilder()
        builder.start_element("a")
        builder.end_element()
        with pytest.raises(ValueError):
            builder.start_element("b")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IndexedStoreBuilder().finish()
