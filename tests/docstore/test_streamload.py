"""Streaming loader: parse parity with ``parse_xml``, projection
pushdown equality, skip accounting, and error handling."""

import pytest

from repro.analysis.project import chain_keep_for_query
from repro.docstore.streamload import load_path, load_xml
from repro.schema import bib_dtd, paper_doc_dtd, xmark_dtd
from repro.xmldm import (
    XMLParseError,
    generate_document,
    keep_set_for_chains,
    parse_xml,
    project,
    serialize,
)
from repro.xmldm.projection import ChainKeep


def _xml(dtd, byts, seed):
    tree = generate_document(dtd, byts, seed=seed)
    return serialize(tree.store, tree.root)


class TestFullLoad:
    @pytest.mark.parametrize("dtd_factory,seed", [
        (xmark_dtd, 3), (bib_dtd, 5), (paper_doc_dtd, 7),
    ])
    def test_matches_parse_xml(self, dtd_factory, seed):
        text = _xml(dtd_factory(), 15_000, seed)
        loaded = load_xml(text)
        reference = parse_xml(text)
        assert serialize(loaded.tree.store, loaded.tree.root) == \
            serialize(reference.store, reference.root)
        assert loaded.nodes_kept == reference.size()
        assert loaded.kept_ratio == 1.0
        assert loaded.subtrees_skipped == 0

    def test_handles_prolog_comments_attributes_entities(self):
        text = ('<?xml version="1.0"?><!DOCTYPE doc [ ]>\n'
                '<!-- header -->\n'
                '<doc a="1"><x b=\'2\'>one &amp; two</x><!-- mid -->'
                '<y/></doc>')
        loaded = load_xml(text)
        reference = parse_xml(text)
        assert serialize(loaded.tree.store, loaded.tree.root) == \
            serialize(reference.store, reference.root)

    def test_whitespace_stripping_matches(self):
        text = "<doc>\n  <a> kept </a>\n  <b/>\n</doc>"
        loaded = load_xml(text)
        reference = parse_xml(text)
        assert serialize(loaded.tree.store, loaded.tree.root) == \
            serialize(reference.store, reference.root)

    def test_malformed_raises_parse_error(self):
        with pytest.raises(XMLParseError):
            load_xml("<doc><open></doc>")
        with pytest.raises(XMLParseError):
            load_xml("not xml at all")

    def test_load_path_streams_from_disk(self, tmp_path):
        text = _xml(xmark_dtd(), 20_000, 9)
        file = tmp_path / "doc.xml"
        file.write_text(text)
        loaded = load_path(str(file), chunk_size=512)
        assert serialize(loaded.tree.store, loaded.tree.root) == \
            serialize(parse_xml(text).store, parse_xml(text).root)

    def test_text_runs_larger_than_chunk_stay_one_node(self, tmp_path):
        """Expat flushes its text buffer at every Parse(chunk) call;
        the loader must re-coalesce, or chunked file loads diverge
        from whole-string parses (and //text() answers multiply)."""
        big = "x" * 5_000
        text = f"<doc><a>{big}</a><b>small</b></doc>"
        file = tmp_path / "doc.xml"
        file.write_text(text)
        chunked = load_path(str(file), chunk_size=256)
        whole = load_xml(text)
        assert chunked.nodes_kept == whole.nodes_kept == 5
        a_node = chunked.tree.store.children(chunked.tree.root)[0]
        texts = chunked.tree.store.children(a_node)
        assert len(texts) == 1
        assert chunked.tree.store.text(texts[0]) == big
        assert serialize(chunked.tree.store, chunked.tree.root) == \
            serialize(whole.tree.store, whole.tree.root)


PROJECTION_QUERIES = [
    "/site/people/person/name",
    "//emailaddress",
    "/site/regions//item",
    "//person/watches",
    "for $a in /site/open_auctions/open_auction return "
    "if ($a/bidder/increase) then $a/current else ()",
    "//text()",
]


class TestProjectionPushdown:
    """streaming projected load == project(parse(doc), keep set)."""

    @pytest.mark.parametrize("query", PROJECTION_QUERIES)
    def test_equals_materialized_projection(self, query):
        dtd = xmark_dtd()
        text = _xml(dtd, 40_000, 21)
        keep = chain_keep_for_query(query, dtd)
        assert keep is not None
        streamed = load_xml(text, keep=keep)
        reference_tree = parse_xml(text)
        materialized = project(
            reference_tree, keep_set_for_chains(reference_tree, keep)
        )
        assert serialize(streamed.tree.store, streamed.tree.root) == \
            serialize(materialized.store, materialized.root)

    def test_skips_whole_subtrees(self):
        dtd = xmark_dtd()
        text = _xml(dtd, 40_000, 21)
        keep = chain_keep_for_query("/site/people/person/name", dtd)
        streamed = load_xml(text, keep=keep)
        assert streamed.subtrees_skipped > 0
        assert streamed.nodes_kept < streamed.nodes_seen / 4
        assert 0 < streamed.kept_ratio < 0.25

    def test_root_always_kept(self):
        keep = ChainKeep.from_chains({("nomatch",)})
        loaded = load_xml("<doc><a/><b/></doc>", keep=keep)
        assert loaded.nodes_kept == 1
        assert loaded.tree.store.tag(loaded.tree.root) == "doc"

    def test_union_spec_keeps_both(self):
        dtd = xmark_dtd()
        text = _xml(dtd, 30_000, 23)
        keep_a = chain_keep_for_query("//emailaddress", dtd)
        keep_b = chain_keep_for_query("/site/regions//item", dtd)
        both = keep_a.union(keep_b)
        kept_both = load_xml(text, keep=both).nodes_kept
        assert kept_both >= load_xml(text, keep=keep_a).nodes_kept
        assert kept_both >= load_xml(text, keep=keep_b).nodes_kept
