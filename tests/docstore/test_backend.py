"""Document backend: node-table round trips, restart behavior,
compaction of mutated trees, and counters."""

import sqlite3

import pytest

from repro.docstore.adapter import apply_update_indexed
from repro.docstore.backend import DocumentBackend
from repro.docstore.streamload import load_xml
from repro.schema import bib_dtd, xmark_dtd
from repro.xmldm import generate_document, serialize
from repro.xquery.ast import ROOT_VAR
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_query


def _indexed(dtd, byts, seed):
    tree = generate_document(dtd, byts, seed=seed)
    return load_xml(serialize(tree.store, tree.root)).tree


@pytest.fixture()
def db_path(tmp_path):
    return str(tmp_path / "docs.sqlite")


class TestRoundTrip:
    def test_save_load_identical(self, db_path):
        tree = _indexed(xmark_dtd(), 20_000, 3)
        with DocumentBackend(db_path) as backend:
            rows = backend.save("doc", tree, "digest-a",
                                nodes_seen=999, subtrees_skipped=7,
                                meta={"projected": True})
            assert rows == len(tree.store)
            loaded, stored = backend.load("doc")
        assert serialize(loaded.store, loaded.root) == \
            serialize(tree.store, tree.root)
        assert stored.schema_digest == "digest-a"
        assert stored.nodes_seen == 999
        assert stored.subtrees_skipped == 7
        assert stored.meta == {"projected": True}

    def test_survives_restart(self, db_path):
        tree = _indexed(bib_dtd(), 6_000, 5)
        with DocumentBackend(db_path) as backend:
            backend.save("doc", tree, "digest-b")
        with DocumentBackend(db_path) as backend:
            loaded, _ = backend.load("doc")
            assert serialize(loaded.store, loaded.root) == \
                serialize(tree.store, tree.root)
            # The restored index answers accelerated queries directly.
            query = parse_query("//title")
            answers = evaluate_query(query, loaded.store,
                                     {ROOT_VAR: [loaded.root]})
            assert answers

    def test_mutated_tree_compacts_on_save(self, db_path):
        tree = _indexed(xmark_dtd(), 20_000, 3)
        apply_update_indexed("delete //emailaddress", tree)
        live = tree.size()
        assert live < len(tree.store)  # garbage exists pre-compaction
        with DocumentBackend(db_path) as backend:
            rows = backend.save("doc", tree, "digest-c")
            assert rows == live
            loaded, _ = backend.load("doc")
        assert serialize(loaded.store, loaded.root) == \
            serialize(tree.store, tree.root)

    def test_overwrite_replaces_rows(self, db_path):
        small = _indexed(bib_dtd(), 2_000, 5)
        big = _indexed(bib_dtd(), 8_000, 6)
        with DocumentBackend(db_path) as backend:
            backend.save("doc", big, "d")
            backend.save("doc", small, "d")
            loaded, _ = backend.load("doc")
            assert serialize(loaded.store, loaded.root) == \
                serialize(small.store, small.root)
            with sqlite3.connect(db_path) as conn:
                count = conn.execute(
                    "SELECT COUNT(*) FROM nodes WHERE doc='doc'"
                ).fetchone()[0]
            assert count == len(loaded.store)


class TestCatalog:
    def test_miss_and_counters(self, db_path):
        with DocumentBackend(db_path) as backend:
            assert backend.load("missing") is None
            tree = _indexed(bib_dtd(), 2_000, 5)
            backend.save("a", tree, "d")
            backend.load("a")
            stats = backend.stats()
        assert stats["documents"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["saves"] == 1
        assert stats["nodes"] == len(tree.store)

    def test_list_and_delete(self, db_path):
        tree = _indexed(bib_dtd(), 2_000, 5)
        with DocumentBackend(db_path) as backend:
            backend.save("a", tree, "d1")
            backend.save("b", tree, "d2")
            docs = backend.list_documents()
            assert [d.doc for d in docs] == ["a", "b"]
            assert backend.delete("a") is True
            assert backend.delete("a") is False
            assert backend.describe("a") is None
            assert backend.describe("b") is not None
