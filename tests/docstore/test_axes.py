"""Axis accelerators: exact parity with the generic evaluator for
every axis, node test, and context node -- before and after updates."""

import pytest

from repro.docstore.streamload import load_xml
from repro.schema import xmark_dtd
from repro.xmldm import generate_document, parse_xml, serialize
from repro.xmldm.store import sequences_equivalent
from repro.xquery.ast import (
    ROOT_VAR,
    Axis,
    NameTest,
    NodeKindTest,
    TextTest,
    WildcardTest,
)
from repro.xquery.evaluator import (
    _axis_nodes,
    _test_matches,
    evaluate_query,
)
from repro.xquery.parser import parse_query
from repro.xupdate.evaluator import apply_update
from repro.xupdate.parser import parse_update

TESTS = [NameTest("name"), NameTest("item"), NameTest("nope"),
         TextTest(), NodeKindTest(), WildcardTest()]


def _trees(seed=17, byts=20_000):
    tree = generate_document(xmark_dtd(), byts, seed=seed)
    text = serialize(tree.store, tree.root)
    return parse_xml(text), load_xml(text).tree


def _rendered(store, locs):
    return [(store.typ(loc),
             store.text(loc) if store.is_text(loc) else None)
            for loc in locs]


@pytest.mark.parametrize("axis", list(Axis))
def test_axis_parity_everywhere(axis):
    dt, it = _trees()
    dict_locs = list(dt.store.descendants_or_self(dt.root))
    idx_locs = list(it.store.descendants_or_self(it.root))
    for test in TESTS:
        for dl, il in zip(dict_locs, idx_locs):
            generic = [c for c in _axis_nodes(axis, dt.store, dl)
                       if _test_matches(test, dt.store, c)]
            accelerated = it.store.axis_step(axis, test, il)
            assert accelerated is not None
            assert _rendered(dt.store, generic) == \
                _rendered(it.store, accelerated), (axis, test)


def test_descendant_child_matches_desugared_order():
    """The ``//tag`` fast path reproduces the desugared loop's order
    (grouped by parent, not plain document order)."""
    dt, it = _trees()
    for source in ("//item", "//name", "//text()", "//parlist"):
        query = parse_query(source)
        on_dict = evaluate_query(query, dt.store, {ROOT_VAR: [dt.root]})
        on_indexed = evaluate_query(query, it.store,
                                    {ROOT_VAR: [it.root]})
        assert sequences_equivalent(dt.store, on_dict,
                                    it.store, on_indexed), source


def test_fresh_nodes_fall_back_to_generic():
    """Constructed (unencoded) nodes cannot be served from the index;
    the evaluator must still answer correctly through the fallback."""
    _, it = _trees(byts=4_000)
    store = it.store
    fresh = store.new_element("wrapper", [store.new_text("t")])
    assert store.axis_step(Axis.DESCENDANT, NodeKindTest(), fresh) is None
    assert store.axis_step(Axis.CHILD, TextTest(), fresh) == \
        store.children(fresh)


def test_acceleration_survives_updates():
    dt, it = _trees()
    for update_text in ("delete //emailaddress",
                        "for $p in /site/people/person return "
                        "insert <flag>f</flag> into $p"):
        update = parse_update(update_text)
        apply_update(update, dt.store, {ROOT_VAR: [dt.root]})
        apply_update(update, it.store, {ROOT_VAR: [it.root]})
        for source in ("//person/name", "//flag", "//text()",
                       "/site//item"):
            query = parse_query(source)
            on_dict = evaluate_query(query, dt.store,
                                     {ROOT_VAR: [dt.root]})
            on_indexed = evaluate_query(query, it.store,
                                        {ROOT_VAR: [it.root]})
            assert sequences_equivalent(dt.store, on_dict,
                                        it.store, on_indexed), (
                update_text, source)


def test_rename_invalidates_tag_index():
    _, it = _trees(byts=4_000)
    store = it.store
    query = parse_query("//zones")
    before = evaluate_query(query, store, {ROOT_VAR: [it.root]})
    assert before == []
    apply_update(parse_update("rename /site/regions as zones"),
                 store, {ROOT_VAR: [it.root]})
    after = evaluate_query(query, store, {ROOT_VAR: [it.root]})
    assert len(after) == 1
    assert store.tag(after[0]) == "zones"
