"""The empirical Theorem 3.2 gate at scale (Hypothesis property).

For generated (schema, document, query) triples, three things agree:

1. the streaming projected load equals ``project(parse(doc), keep)``
   built from the same :class:`ChainKeep` (one shared keep-set
   implementation, two execution strategies);
2. evaluating the query on the projection gives value-equivalent
   answers to evaluating on the full document (Theorem 3.2);
3. the unprojected streaming load is isomorphic to ``parse_xml``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.project import chain_keep_for_query
from repro.docstore.streamload import load_xml
from repro.xmldm import (
    keep_set_for_chains,
    parse_xml,
    project,
    serialize,
)
from repro.xmldm.store import sequences_equivalent
from repro.xquery.ast import ROOT_VAR
from repro.xquery.evaluator import evaluate_query
from repro.xquery.parser import parse_query

from ..strategies import queries_for, trees

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(case=trees(target_bytes=1500), seed=st.integers(0, 2 ** 16))
@_SETTINGS
def test_streaming_projection_theorem32(case, seed):
    dtd, tree = case
    query_text = queries_for(dtd, seed)
    text = serialize(tree.store, tree.root)
    reference = parse_xml(text)

    keep = chain_keep_for_query(query_text, dtd)
    if keep is None:
        # Chain explosion: the sound fallback is loading everything.
        streamed = load_xml(text)
        materialized = reference
    else:
        streamed = load_xml(text, keep=keep)
        materialized = project(
            reference, keep_set_for_chains(reference, keep)
        )

    # (1) streaming pushdown == materialized projection, exactly.
    assert serialize(streamed.tree.store, streamed.tree.root) == \
        serialize(materialized.store, materialized.root)

    # (2) Theorem 3.2: answers preserved on the projection.
    query = parse_query(query_text)
    full_answers = evaluate_query(
        query, reference.store, {ROOT_VAR: [reference.root]}
    )
    projected_answers = evaluate_query(
        query, streamed.tree.store, {ROOT_VAR: [streamed.tree.root]}
    )
    assert sequences_equivalent(
        reference.store, full_answers,
        streamed.tree.store, projected_answers,
    ), query_text


@given(case=trees(target_bytes=1500))
@_SETTINGS
def test_unprojected_streaming_load_is_parse_xml(case):
    _, tree = case
    text = serialize(tree.store, tree.root)
    streamed = load_xml(text)
    reference = parse_xml(text)
    assert serialize(streamed.tree.store, streamed.tree.root) == \
        serialize(reference.store, reference.root)
    assert streamed.nodes_kept == reference.size()


@given(case=trees(target_bytes=1200), seed=st.integers(0, 2 ** 16))
@_SETTINGS
def test_indexed_evaluation_matches_dict_store(case, seed):
    """Axis acceleration is invisible: same answers on both stores."""
    dtd, tree = case
    query = parse_query(queries_for(dtd, seed))
    text = serialize(tree.store, tree.root)
    dict_tree = parse_xml(text)
    indexed = load_xml(text).tree
    on_dict = evaluate_query(query, dict_tree.store,
                             {ROOT_VAR: [dict_tree.root]})
    on_indexed = evaluate_query(query, indexed.store,
                                {ROOT_VAR: [indexed.root]})
    assert sequences_equivalent(dict_tree.store, on_dict,
                                indexed.store, on_indexed)
