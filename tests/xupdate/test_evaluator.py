"""Update dynamic semantics: UPL creation and application."""

import pytest

from repro.xmldm import parse_xml, serialize
from repro.xquery import ROOT_VAR
from repro.xupdate import (
    Del,
    Ins,
    Ren,
    Repl,
    UpdateError,
    apply_update_to_root,
    evaluate_update,
    parse_update,
)


def apply(text: str, tree):
    return apply_update_to_root(parse_update(text), tree.store, tree.root)


def xml(tree) -> str:
    return serialize(tree.store, tree.root)


@pytest.fixture()
def doc():
    return parse_xml("<doc><a><c/></a><b><c/></b><a><c/></a></doc>")


class TestDelete:
    def test_delete_single(self, doc):
        apply("delete /doc/b", doc)
        assert xml(doc) == "<doc><a><c/></a><a><c/></a></doc>"

    def test_delete_many(self, doc):
        apply("delete //c", doc)
        assert xml(doc) == "<doc><a/><b/><a/></doc>"

    def test_delete_nothing(self, doc):
        commands = apply("delete /doc/z", doc)
        assert commands == []

    def test_paper_u1(self, doc):
        apply("delete //b//c", doc)
        assert xml(doc) == "<doc><a><c/></a><b/><a><c/></a></doc>"


class TestInsert:
    def test_insert_into_appends(self, doc):
        apply("insert <d/> into /doc/b", doc)
        assert "<b><c/><d/></b>" in xml(doc)

    def test_insert_as_first(self, doc):
        apply("insert <d/> as first into /doc/b", doc)
        assert "<b><d/><c/></b>" in xml(doc)

    def test_insert_before(self, doc):
        apply("insert <d/> before /doc/b", doc)
        assert xml(doc) == "<doc><a><c/></a><d/><b><c/></b><a><c/></a></doc>"

    def test_insert_after(self, doc):
        apply("insert <d/> after /doc/b", doc)
        assert xml(doc) == "<doc><a><c/></a><b><c/></b><d/><a><c/></a></doc>"

    def test_insert_copies_source(self, doc):
        """W3C copy semantics: inserting an existing node copies it."""
        apply("insert /doc/b into /doc/a[following-sibling::b]", doc)
        assert xml(doc) == (
            "<doc><a><c/><b><c/></b></a><b><c/></b><a><c/></a></doc>"
        )

    def test_insert_multi_target_rejected(self, doc):
        with pytest.raises(UpdateError):
            apply("insert <d/> into /doc/a", doc)

    def test_insert_sequence_source(self, doc):
        apply("insert (<d/>, <e/>) into /doc/b", doc)
        assert "<b><c/><d/><e/></b>" in xml(doc)

    def test_for_loop_insert(self, doc):
        apply("for $x in /doc/a return insert <d/> into $x", doc)
        assert xml(doc) == (
            "<doc><a><c/><d/></a><b><c/></b><a><c/><d/></a></doc>"
        )


class TestRenameReplace:
    def test_rename(self, doc):
        apply("rename /doc/b as a", doc)
        assert xml(doc) == "<doc><a><c/></a><a><c/></a><a><c/></a></doc>"

    def test_rename_multi_target_rejected(self, doc):
        with pytest.raises(UpdateError):
            apply("rename /doc/a as z", doc)

    def test_replace(self, doc):
        apply("replace /doc/b with <z>new</z>", doc)
        assert xml(doc) == (
            "<doc><a><c/></a><z>new</z><a><c/></a></doc>"
        )

    def test_replace_with_sequence(self, doc):
        apply("replace /doc/b with (<y/>, <z/>)", doc)
        assert "<y/><z/>" in xml(doc)

    def test_replace_root_rejected(self, doc):
        with pytest.raises(UpdateError):
            apply("replace /doc with <z/>", doc)

    def test_paper_u2(self, bib_tree):
        apply(
            "for $x in //book return insert <author><last>E</last>"
            "<first>U</first></author> into $x",
            bib_tree,
        )
        out = xml(bib_tree)
        assert out.count("<author>") == 3  # one original + two inserted


class TestUPL:
    def test_commands_created_without_mutation(self, doc):
        before = xml(doc)
        commands = evaluate_update(
            parse_update("delete /doc/b"), doc.store,
            {ROOT_VAR: [doc.root]},
        )
        assert [type(c) for c in commands] == [Del]
        assert xml(doc) == before  # phase (i) does not modify the tree

    def test_command_kinds(self, doc):
        text = (
            "delete /doc/b, rename /doc/b as z, "
            "insert <d/> into /doc/b, replace /doc/b with <e/>"
        )
        commands = evaluate_update(
            parse_update(text), doc.store, {ROOT_VAR: [doc.root]}
        )
        assert [type(c) for c in commands] == [Del, Ren, Ins, Repl]

    def test_conditional_update(self, doc):
        apply("if (/doc/b) then delete /doc/b else ()", doc)
        assert "<b>" not in xml(doc)

    def test_let_update(self, doc):
        apply("let $x := /doc/b return delete $x/c", doc)
        assert "<b/>" in xml(doc)

    def test_empty_update(self, doc):
        before = xml(doc)
        apply("()", doc)
        assert xml(doc) == before
