"""UPL sanity checks and application order (W3C phases ii and iii)."""

import pytest

from repro.xmldm import parse_xml, serialize
from repro.xupdate import (
    Del,
    Ins,
    InsertPos,
    Ren,
    Repl,
    UpdateError,
    apply_pul,
    check_pul,
)


@pytest.fixture()
def doc():
    return parse_xml("<doc><a/><b/></doc>")


def loc_of(tree, tag):
    return next(
        l for l in tree.store.descendants(tree.root)
        if tree.store.is_element(l) and tree.store.tag(l) == tag
    )


class TestChecks:
    def test_double_rename_rejected(self, doc):
        a = loc_of(doc, "a")
        with pytest.raises(UpdateError):
            check_pul(doc.store, [Ren(a, "x"), Ren(a, "y")])

    def test_double_replace_rejected(self, doc):
        a = loc_of(doc, "a")
        new = doc.store.new_element("n")
        with pytest.raises(UpdateError):
            check_pul(doc.store, [Repl(a, (new,)), Repl(a, (new,))])

    def test_rename_then_replace_allowed(self, doc):
        a = loc_of(doc, "a")
        new = doc.store.new_element("n")
        check_pul(doc.store, [Ren(a, "x"), Repl(a, (new,))])

    def test_unknown_target_rejected(self, doc):
        with pytest.raises(UpdateError):
            check_pul(doc.store, [Del(99999)])

    def test_replace_root_rejected(self, doc):
        new = doc.store.new_element("n")
        with pytest.raises(UpdateError):
            check_pul(doc.store, [Repl(doc.root, (new,))])

    def test_insert_sibling_of_root_rejected(self, doc):
        new = doc.store.new_element("n")
        with pytest.raises(UpdateError):
            check_pul(doc.store,
                      [Ins((new,), InsertPos.BEFORE, doc.root)])

    def test_rename_text_rejected(self, doc):
        text = doc.store.new_text("t")
        with pytest.raises(UpdateError):
            check_pul(doc.store, [Ren(text, "x")])


class TestApplicationOrder:
    def test_insert_applied_before_delete(self, doc):
        """Inserting next to a node that is also deleted still lands."""
        a = loc_of(doc, "a")
        new = doc.store.new_element("n")
        apply_pul(doc.store, [Del(a), Ins((new,), InsertPos.AFTER, a)])
        assert serialize(doc.store, doc.root) == "<doc><n/><b/></doc>"

    def test_rename_applied_first(self, doc):
        a = loc_of(doc, "a")
        new = doc.store.new_element("n")
        apply_pul(doc.store, [Ins((new,), InsertPos.INTO, a), Ren(a, "z")])
        assert serialize(doc.store, doc.root) == "<doc><z><n/></z><b/></doc>"

    def test_replace_and_delete_same_target(self, doc):
        a = loc_of(doc, "a")
        new = doc.store.new_element("n")
        apply_pul(doc.store, [Repl(a, (new,)), Del(a)])
        # Replace ran first (a swapped out), delete then detached a, which
        # is already out of the tree.
        assert serialize(doc.store, doc.root) == "<doc><n/><b/></doc>"

    def test_empty_pul_is_noop(self, doc):
        before = serialize(doc.store, doc.root)
        apply_pul(doc.store, [])
        assert serialize(doc.store, doc.root) == before
