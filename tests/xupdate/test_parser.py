"""Update-fragment parsing."""

import pytest

from repro.xquery.ast import Element, Empty, Step
from repro.xquery.parser import QueryParseError
from repro.xupdate.ast import (
    Delete,
    Insert,
    InsertPos,
    Rename,
    Replace,
    UConcat,
    UFor,
    UIf,
    ULet,
    update_free_variables,
    update_size,
)
from repro.xupdate.parser import parse_update


class TestOperators:
    def test_delete(self):
        u = parse_update("delete $x/child::a")
        assert isinstance(u, Delete)

    def test_delete_nodes_keyword(self):
        assert parse_update("delete nodes $x/a") == parse_update(
            "delete $x/a"
        )

    def test_delete_node_test_not_swallowed(self):
        u = parse_update("delete $x/child::node()")
        assert isinstance(u.target, Step)

    def test_rename(self):
        u = parse_update("rename $x as b")
        assert isinstance(u, Rename)
        assert u.tag == "b"

    def test_insert_into(self):
        u = parse_update("insert <a/> into $x")
        assert isinstance(u, Insert)
        assert u.pos is InsertPos.INTO
        assert u.source == Element("a", Empty())

    def test_insert_positions(self):
        assert parse_update("insert <a/> before $x").pos is InsertPos.BEFORE
        assert parse_update("insert <a/> after $x").pos is InsertPos.AFTER
        assert parse_update(
            "insert <a/> as first into $x"
        ).pos is InsertPos.INTO_FIRST
        assert parse_update(
            "insert <a/> as last into $x"
        ).pos is InsertPos.INTO_LAST

    def test_replace(self):
        u = parse_update("replace $x/a with <b/>")
        assert isinstance(u, Replace)

    def test_w3c_keyword_forms(self):
        u = parse_update("insert node <a/> into $x")
        assert isinstance(u, Insert)
        u2 = parse_update("replace node $x/a with <b/>")
        assert isinstance(u2, Replace)


class TestComposition:
    def test_sequence(self):
        u = parse_update("delete $x/a, delete $x/b")
        assert isinstance(u, UConcat)

    def test_for(self):
        u = parse_update("for $x in //book return insert <author/> into $x")
        assert isinstance(u, UFor)
        assert isinstance(u.body, Insert)

    def test_let(self):
        u = parse_update("let $x := //book return delete $x/price")
        assert isinstance(u, ULet)

    def test_if(self):
        u = parse_update(
            "if ($x/a) then delete $x/a else rename $x/b as c"
        )
        assert isinstance(u, UIf)

    def test_parenthesized_empty(self):
        u = parse_update("if ($x/a) then delete $x/a else ()")
        assert isinstance(u, UIf)

    def test_free_variables(self):
        u = parse_update("for $x in //book return insert <author/> into $x")
        assert update_free_variables(u) == {"$doc"}

    def test_update_size(self):
        small = update_size(parse_update("delete $x/a"))
        large = update_size(
            parse_update("for $y in $x/a return delete $y/b")
        )
        assert large > small


class TestErrors:
    def test_missing_position(self):
        with pytest.raises(QueryParseError):
            parse_update("insert <a/> $x")

    def test_missing_with(self):
        with pytest.raises(QueryParseError):
            parse_update("replace $x/a <b/>")

    def test_bad_as_clause(self):
        with pytest.raises(QueryParseError):
            parse_update("insert <a/> as middle into $x")

    def test_query_is_not_update(self):
        with pytest.raises(QueryParseError):
            parse_update("$x/child::a")
