"""Shared fixtures: paper schemas, documents, and analysis engines."""

from __future__ import annotations

import pytest

from repro.bench.xmark_data import rich_xmark_document
from repro.schema import (
    DTD,
    bib_dtd,
    paper_d1_dtd,
    paper_doc_dtd,
    paper_sibling_dtd,
    xmark_dtd,
)
from repro.xmldm import parse_xml


@pytest.fixture(scope="session")
def doc_dtd() -> DTD:
    """Figure 1 DTD: ``{doc <- (a|b)*, a <- c, b <- c}``."""
    return paper_doc_dtd()


@pytest.fixture(scope="session")
def d1_dtd() -> DTD:
    """Section 5 recursive DTD d1."""
    return paper_d1_dtd()


@pytest.fixture(scope="session")
def sibling_dtd() -> DTD:
    """Section 5 sibling-axis schema."""
    return paper_sibling_dtd()


@pytest.fixture(scope="session")
def bib() -> DTD:
    return bib_dtd()


@pytest.fixture(scope="session")
def xmark() -> DTD:
    return xmark_dtd()


@pytest.fixture()
def figure1_tree():
    """The document of Figure 1."""
    return parse_xml(
        "<doc><a><c/></a><a><c/></a><b><c/></b><a><c/></a></doc>"
    )


@pytest.fixture()
def bib_tree():
    return parse_xml(
        "<bib>"
        "<book><title>T1</title><author><last>L1</last><first>F1</first>"
        "</author><publisher>P1</publisher><price>10</price></book>"
        "<book><title>T2</title><editor><last>L2</last><first>F2</first>"
        "<affiliation>A2</affiliation></editor><publisher>P2</publisher>"
        "<price>20</price></book>"
        "</bib>"
    )


@pytest.fixture()
def rich_xmark():
    return rich_xmark_document()
