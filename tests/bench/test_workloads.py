"""Benchmark workloads: 36 views, 31 updates, rich document, R-benchmark."""

import pytest

from repro.bench.rbench import descendant_path, recursive_schema
from repro.bench.updates import (
    ALL_UPDATES,
    parsed_updates,
    update_names,
)
from repro.bench.views import (
    ALL_VIEWS,
    XMARK_VIEWS,
    XPATHMARK_A_VIEWS,
    XPATHMARK_B_VIEWS,
    parsed_views,
    view_names,
)
from repro.bench.xmark_data import rich_xmark_document
from repro.xmldm import validate
from repro.xquery import ROOT_VAR, evaluate_query
from repro.xquery.ast import Axis, Query, Step
from repro.xupdate.ast import Delete, Insert, Rename, Replace, UFor


class TestViews:
    def test_thirty_six_views(self):
        assert len(ALL_VIEWS) == 36
        assert len(XMARK_VIEWS) == 20
        assert len(XPATHMARK_A_VIEWS) == 8
        assert len(XPATHMARK_B_VIEWS) == 8

    def test_all_views_parse(self):
        views = parsed_views()
        assert all(isinstance(q, Query) for q in views.values())

    def test_a_views_downward_only(self):
        downward = {Axis.SELF, Axis.CHILD, Axis.DESCENDANT,
                    Axis.DESCENDANT_OR_SELF}

        def axes(q):
            if isinstance(q, Step):
                yield q.axis
            for field in ("left", "right", "cond", "then", "orelse",
                          "source", "body", "content", "target"):
                child = getattr(q, field, None)
                if isinstance(child, Query):
                    yield from axes(child)

        for name in XPATHMARK_A_VIEWS:
            assert set(axes(parsed_views()[name])) <= downward, name

    def test_b_views_use_other_axes(self):
        downward = {Axis.SELF, Axis.CHILD, Axis.DESCENDANT,
                    Axis.DESCENDANT_OR_SELF}

        def axes(q):
            if isinstance(q, Step):
                yield q.axis
            for field in ("left", "right", "cond", "then", "orelse",
                          "source", "body", "content", "target"):
                child = getattr(q, field, None)
                if isinstance(child, Query):
                    yield from axes(child)

        count = sum(
            1 for name in XPATHMARK_B_VIEWS
            if set(axes(parsed_views()[name])) - downward
        )
        assert count == len(XPATHMARK_B_VIEWS)

    def test_view_names_order(self):
        names = view_names()
        assert names[0] == "q1"
        assert names[-1] == "B8"


class TestUpdates:
    def test_thirty_one_updates(self):
        assert len(ALL_UPDATES) == 31

    def test_groups(self):
        names = update_names()
        assert sum(1 for n in names if n.startswith("UA")) == 8
        assert sum(1 for n in names if n.startswith("UB")) == 8
        assert sum(1 for n in names if n.startswith("UI")) == 5
        assert sum(1 for n in names if n.startswith("UN")) == 5
        assert sum(1 for n in names if n.startswith("UP")) == 5

    def test_all_updates_parse(self):
        updates = parsed_updates()
        assert len(updates) == 31

    def test_operator_kinds(self):
        updates = parsed_updates()

        def core_op(u):
            while isinstance(u, UFor):
                u = u.body
            return u

        for name, update in updates.items():
            op = core_op(update)
            if name.startswith(("UA", "UB")):
                assert isinstance(op, Delete), name
            elif name.startswith("UI"):
                assert isinstance(op, Insert), name
            elif name.startswith("UN"):
                assert isinstance(op, Rename), name
            else:
                assert isinstance(op, Replace), name


class TestRichDocument:
    def test_valid(self, xmark):
        validate(rich_xmark_document(), xmark)

    def test_every_view_nonempty(self):
        tree = rich_xmark_document()
        for name, view in parsed_views().items():
            result = evaluate_query(view, tree.store,
                                    {ROOT_VAR: [tree.root]})
            assert result, f"view {name} empty on the rich document"

    def test_fresh_copies(self):
        one = rich_xmark_document()
        two = rich_xmark_document()
        one.store.rename(one.root, "zzz")
        assert two.store.tag(two.root) == "site"


class TestRBench:
    def test_recursive_schema_shape(self):
        dn = recursive_schema(3)
        assert dn.size() == 3
        assert dn.children_of("a2") == frozenset({"a1", "a2", "a3"})
        assert dn.is_recursive()

    def test_d1_self_recursive(self):
        d1 = recursive_schema(1)
        assert d1.children_of("a1") == frozenset({"a1"})

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            recursive_schema(0)
        with pytest.raises(ValueError):
            descendant_path(0)

    def test_descendant_path_structure(self):
        from repro.analysis.kbound import recursive_steps

        assert recursive_steps(descendant_path(5)) == 5
