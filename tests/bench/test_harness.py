"""Smoke tests for the Figure 3 experiment harness (reduced parameters)."""

import io

import pytest

from repro.bench.harness import (
    PairGrid,
    compute_grid,
    run_fig3b,
    run_fig3c,
    run_fig3d,
)


@pytest.fixture(scope="module")
def grid() -> PairGrid:
    return compute_grid()


class TestGrid:
    def test_covers_all_pairs(self, grid):
        assert len(grid.chains_independent) == 31 * 36
        assert len(grid.types_independent) == 31 * 36

    def test_chains_dominate_types(self, grid):
        """Figure 3.b's headline: [6] is always outperformed by chains."""
        for pair, type_independent in grid.types_independent.items():
            if type_independent:
                assert grid.chains_independent[pair], pair

    def test_timings_recorded(self, grid):
        assert len(grid.chains_seconds) == 31
        assert all(t > 0 for t in grid.chains_seconds.values())

    def test_chains_detect_most_up_updates(self, grid):
        """Replace updates target narrow paths: chains should clear
        almost all views."""
        for update in ("UP2", "UP4", "UP5"):
            detected = sum(
                1 for (u, v), ind in grid.chains_independent.items()
                if u == update and ind
            )
            assert detected >= 30, update


class TestExperiments:
    def test_fig3b_output(self, grid):
        # Tiny synthetic ground truth: everything independent.
        truth = {pair: True for pair in grid.chains_independent}
        out = io.StringIO()
        results = run_fig3b(grid, truth, out=out)
        assert len(results) == 31
        for chains_pct, types_pct in results.values():
            assert 0 <= types_pct <= chains_pct <= 100

    def test_fig3c_savings_shape(self, grid):
        out = io.StringIO()
        results = run_fig3c(grid, scales=(("tiny", 8_000),), out=out)
        averages = results["tiny"]
        # The paper's fig 3.c shape: full > types-guided > chains-guided.
        assert averages["full"] > averages["types"] > averages["chains"]

    def test_fig3d_reduced_sweep(self):
        out = io.StringIO()
        points = run_fig3d(
            out=out,
            schema_sizes=(1, 3),
            path_lengths=(1, 3),
            k_offsets=(0,),
            include_xmark=False,
        )
        assert len(points) == 4
        assert all(p.seconds >= 0 for p in points)
        # Inference time grows with schema size at fixed m (shape check).
        by_config = {(p.n, p.m): p.seconds for p in points}
        assert by_config[(3, 3)] >= by_config[(1, 1)]
