"""Unit tests for the serve-bench helpers (no services spawned)."""

from __future__ import annotations

import json

from repro.bench.serve_bench import (
    SHARD_WORKLOAD,
    append_trajectory_point,
    available_cores,
)
from repro.serve.loadgen import LoadgenConfig, workload_pools
from repro.serve.sharding import builtin_digest, shard_for
from repro.analysis.engine import schema_digest


def test_available_cores_positive():
    assert available_cores() >= 1


class TestTrajectoryFile:
    def test_append_to_missing_file_creates_points(self, tmp_path):
        path = str(tmp_path / "bench.json")
        append_trajectory_point(path, {"speedup": 3.0})
        with open(path) as handle:
            data = json.load(handle)
        assert data == {"points": [{"speedup": 3.0}]}

    def test_append_wraps_legacy_single_object(self, tmp_path):
        """The original PR 3 BENCH_serve.json (one bare object) becomes
        the first point of the trajectory."""
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"speedup_vs_oneshot": 11.6}))
        append_trajectory_point(str(path), {"shard_speedup": 1.7})
        data = json.loads(path.read_text())
        assert data["points"] == [
            {"speedup_vs_oneshot": 11.6},
            {"shard_speedup": 1.7},
        ]

    def test_append_extends_existing_trajectory(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"points": [{"a": 1}]}))
        append_trajectory_point(str(path), {"b": 2})
        append_trajectory_point(str(path), {"c": 3})
        data = json.loads(path.read_text())
        assert data["points"] == [{"a": 1}, {"b": 2}, {"c": 3}]

    def test_committed_trajectory_parses(self):
        """The repository's own BENCH_serve.json stays loadable and in
        trajectory shape."""
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "BENCH_serve.json"
        data = json.loads(path.read_text())
        assert isinstance(data["points"], list) and data["points"]
        latest = data["points"][-1]
        assert "sharding" in latest
        assert latest["sharding"]["verdicts_identical"] is True


class TestShardWorkload:
    def test_two_schemas_hash_to_different_shards(self):
        """The committed shard workload must actually exercise both
        shards of a 2-shard pool, or the gate measures nothing."""
        refs = SHARD_WORKLOAD["schema"]
        assert len(refs) == 2
        config = LoadgenConfig(schema=refs, source="bench",
                               n_queries=2, n_updates=2)
        pools = workload_pools(config)
        digests = []
        for ref in refs:
            if ref == "xmark":
                digests.append(builtin_digest(ref))
            else:
                from repro.serve.loadgen import generated_schema

                digests.append(
                    schema_digest(
                        generated_schema(int(ref[4:])).to_dtd()
                    )
                )
        owners = {shard_for(digest, 2) for digest in digests}
        assert owners == {0, 1}
        assert all(queries and updates
                   for queries, updates in pools.values())
