"""Tier-1 unit run of the docstore bench at toy scale.

The full ~100k-node run with its 25%/3x acceptance thresholds lives in
``benchmarks/test_docstore_gate.py``; here a miniature run pins the
bench harness itself -- answer digesting across all three stacks, the
result schema the gate and the trajectory rely on, and the
selective/descendant query-pool tagging.
"""

from __future__ import annotations

from repro.bench.docstore_bench import BENCH_QUERIES, run_docstore_bench


def test_miniature_run_shape_and_identity():
    results = run_docstore_bench(target_bytes=60_000, seed=5,
                                 repeats=1, out=None)
    assert results["answers_identical"] is True
    assert results["nodes"] > 500
    assert len(results["queries"]) == len(BENCH_QUERIES)
    for entry in results["queries"]:
        assert entry["answers_identical"] is True
        assert 0 < entry["kept_ratio"] <= 1
        assert entry["dict_ms"] > 0 and entry["indexed_ms"] > 0
    assert results["min_descendant_speedup"] > 0
    assert 0 < results["max_selective_kept_ratio"] <= 1
    assert results["peak_nodes_kept"] > 0


def test_query_pool_tags():
    kinds = {name: tags for name, _, tags in BENCH_QUERIES}
    assert any("descendant" in tags for tags in kinds.values())
    assert any("selective" in tags for tags in kinds.values())
    # q6 returns whole item subtrees: accelerated, but its keep ratio
    # tracks the answer mass, so it must not gate selectivity.
    assert "selective" not in kinds["q6"]
