"""The central property: static independence is SOUND (Theorems 4.2/5.1).

Randomized check over the shared strategies of :mod:`tests.strategies`
(curated paper scenarios plus testkit-generated schemas/expressions):
whenever the static analysis reports *independent*, the update must
never observably change the query result on any corpus document.  A
single violation would disprove soundness.

The same harness also checks that the type baseline [6] is sound, and
that the chain analysis is never less precise than the baseline on
delete-only updates.  (The heavy-duty version of these properties is
the ``repro fuzz`` differential campaign; this file is the fast tier-1
slice of it.)
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.analysis.baseline import baseline_analyze
from repro.analysis.dynamic import differs_on
from repro.analysis.independence import analyze
from repro.testkit.differential import is_pure_delete, schema_preserving_on
from repro.xmldm.generator import generate_corpus
from repro.xquery.parser import parse_query
from repro.xupdate.parser import parse_update

from ..strategies import CURATED_SCHEMAS, curated_cases, scenario_cases


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=scenario_cases())
def test_static_independence_is_sound(case):
    schema = case.schema
    query = parse_query(case.query)
    update = parse_update(case.update)

    chain_report = analyze(query, update, schema)
    type_report = baseline_analyze(query, update, schema)

    if not chain_report.independent and not type_report.independent:
        return  # nothing claimed, nothing to falsify

    corpus = generate_corpus(schema, count=4, target_bytes=900,
                             seed=case.doc_seed)
    pure_delete = is_pure_delete(update)
    for tree in corpus:
        if not pure_delete and not schema_preserving_on(update, tree,
                                                        schema):
            continue  # out of the soundness theorem's scope (Section 4)
        changed = differs_on(query, update, tree)
        if chain_report.independent:
            assert not changed, f"UNSOUND chain verdict: {case!r}"
        if type_report.independent:
            assert not changed, f"UNSOUND type verdict: {case!r}"


@settings(max_examples=40, deadline=None)
@given(case=scenario_cases(deletes_only=True))
def test_chains_never_less_precise_than_types_on_deletes(case):
    """Whenever [6] proves a *delete* independent, so do chains.

    For schema-violating inserts the two analyses' blind spots differ
    (Section 4), so dominance on arbitrary random pairs is not a theorem;
    the paper's empirical dominance claim over the (schema-preserving)
    XMark benchmark is asserted in tests/bench/test_harness.py."""
    if baseline_analyze(case.query, case.update, case.schema).independent:
        assert analyze(case.query, case.update, case.schema).independent, (
            f"dominance violation: {case!r}"
        )


@settings(max_examples=30, deadline=None)
@given(case=curated_cases())
def test_larger_k_preserves_verdict(case):
    """Raising k beyond kq+ku never changes the verdict (the finite
    analysis is equivalent to the infinite one from k = kq + ku on)."""
    schema = CURATED_SCHEMAS[2]  # the recursive one
    base = analyze(case.query, case.update, schema)
    bigger = analyze(case.query, case.update, schema,
                     k=base.k + 1 + case.doc_seed % 3)
    assert base.independent == bigger.independent
