"""The central property: static independence is SOUND (Theorems 4.2/5.1).

Randomized check: generate (schema, query, update) triples plus a corpus
of valid documents; whenever the static analysis reports *independent*,
the update must never observably change the query result on any corpus
document.  A single violation would disprove soundness.

The same harness also checks that the type baseline [6] is sound, and
that the chain analysis is never less precise than the baseline on the
sampled pairs.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.baseline import baseline_analyze
from repro.analysis.dynamic import differs_on
from repro.analysis.independence import analyze
from repro.schema import DTD
from repro.xmldm.generator import generate_corpus
from repro.xmldm.validate import is_valid
from repro.xquery.ast import ROOT_VAR
from repro.xquery.parser import parse_query
from repro.xupdate.ast import (
    Delete,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
)
from repro.xupdate.evaluator import apply_update
from repro.xupdate.parser import parse_update
from repro.xupdate.pul import UpdateError


def _pure_delete(update: Update) -> bool:
    """Updates built only from deletes never create new chains; the
    paper's soundness explicitly covers them even when they break
    validity (Section 4)."""
    if isinstance(update, (UEmpty, Delete)):
        return True
    if isinstance(update, UConcat):
        return _pure_delete(update.left) and _pure_delete(update.right)
    if isinstance(update, (UFor, ULet)):
        return _pure_delete(update.body)
    if isinstance(update, UIf):
        return _pure_delete(update.then) and _pure_delete(update.orelse)
    return False


def _schema_preserving_on(update: Update, tree, schema) -> bool:
    """Does applying ``update`` to ``tree`` keep it schema-valid?

    The paper's analysis assumes schema-preserving updates (Section 2);
    insert/rename/replace executions that break validity create chains
    outside Cd and are out of the soundness theorem's scope."""
    updated = tree.clone()
    try:
        apply_update(update, updated.store, {ROOT_VAR: [updated.root]})
    except UpdateError:
        return True  # no-op execution
    return is_valid(updated, schema)

#: Small pool of schemas exercising recursion, alternation and siblings.
SCHEMAS = [
    DTD.from_dict(
        "doc", {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"}
    ),
    DTD.from_dict(
        "doc",
        {"doc": "(a, b?)", "a": "(c*, d?)", "b": "(c | d)*",
         "c": "(#PCDATA)", "d": "EMPTY"},
    ),
    DTD.from_dict(  # recursive
        "r", {"r": "a", "a": "(b, c, e)*", "b": "f", "c": "f", "e": "f",
              "f": "(a, g)?", "g": "EMPTY"},
    ),
]

_PATHS = [
    "//a", "//b", "//c", "//d", "//e", "//f", "//g",
    "/doc/a", "/doc/b", "/r/a", "//a//c", "//b//c", "//a/c",
    "/descendant::c", "//c/parent::node()", "//f/ancestor::a",
    "//a/following-sibling::node()", "//c/preceding-sibling::node()",
]

_QUERIES = _PATHS + [
    "for $x in //a return if ($x/c) then $x else ()",
    "for $x in //node() return if ($x/b) then $x/a else ()",
    "let $x := //b return ($x/c, //d)",
    "for $x in //a return <wrap>{$x/c}</wrap>",
    "//a[c]", "//b[not(c)]",
]

_UPDATES = [
    "delete //a", "delete //b", "delete //c", "delete //d",
    "delete //a//c", "delete //b//c", "delete /doc/a", "delete //f",
    "for $x in //a return insert <c/> into $x",
    "for $x in //b return insert <d/> into $x",
    "for $x in //c return rename $x as d",
    "for $x in //d return rename $x as c",
    "for $x in //a return replace $x/c with <c/>",
    "for $x in //g return delete $x",
    "if (//d) then delete //c else ()",
    "let $x := //b return delete $x/c",
]


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    schema_index=st.integers(0, len(SCHEMAS) - 1),
    query_text=st.sampled_from(_QUERIES),
    update_text=st.sampled_from(_UPDATES),
    seed=st.integers(0, 2**16),
)
def test_static_independence_is_sound(schema_index, query_text,
                                      update_text, seed):
    schema = SCHEMAS[schema_index]
    query = parse_query(query_text)
    update = parse_update(update_text)

    chain_report = analyze(query, update, schema)
    type_report = baseline_analyze(query, update, schema)

    if not chain_report.independent and not type_report.independent:
        return  # nothing claimed, nothing to falsify

    corpus = generate_corpus(schema, count=4, target_bytes=900, seed=seed)
    pure_delete = _pure_delete(update)
    for tree in corpus:
        if not pure_delete and not _schema_preserving_on(update, tree,
                                                         schema):
            continue  # out of the soundness theorem's scope (Section 4)
        changed = differs_on(query, update, tree)
        if chain_report.independent:
            assert not changed, (
                f"UNSOUND chain verdict: {query_text!r} vs {update_text!r} "
                f"on schema {schema_index} (seed {seed})"
            )
        if type_report.independent:
            assert not changed, (
                f"UNSOUND type verdict: {query_text!r} vs {update_text!r} "
                f"on schema {schema_index} (seed {seed})"
            )


@settings(max_examples=40, deadline=None)
@given(
    schema_index=st.integers(0, len(SCHEMAS) - 1),
    query_text=st.sampled_from(_QUERIES),
    update_text=st.sampled_from(
        [u for u in _UPDATES if "insert" not in u
         and "rename" not in u and "replace" not in u]
    ),
)
def test_chains_never_less_precise_than_types_on_deletes(
        schema_index, query_text, update_text):
    """Whenever [6] proves a *delete* independent, so do chains.

    For schema-violating inserts the two analyses' blind spots differ
    (Section 4), so dominance on arbitrary random pairs is not a theorem;
    the paper's empirical dominance claim over the (schema-preserving)
    XMark benchmark is asserted in tests/bench/test_harness.py."""
    schema = SCHEMAS[schema_index]
    if baseline_analyze(query_text, update_text, schema).independent:
        assert analyze(query_text, update_text, schema).independent


@settings(max_examples=30, deadline=None)
@given(
    query_text=st.sampled_from(_QUERIES),
    update_text=st.sampled_from(_UPDATES),
    k_extra=st.integers(0, 3),
)
def test_larger_k_preserves_verdict(query_text, update_text, k_extra):
    """Raising k beyond kq+ku never changes the verdict (the finite
    analysis is equivalent to the infinite one from k = kq + ku on)."""
    schema = SCHEMAS[2]  # the recursive one
    base = analyze(query_text, update_text, schema)
    bigger = analyze(query_text, update_text, schema, k=base.k + k_extra)
    assert base.independent == bigger.independent
