"""Dynamic (semantic) independence oracle."""

from repro.analysis.dynamic import (
    differs_on,
    dynamic_independent,
    dynamic_independent_generated,
)
from repro.xmldm import parse_xml, serialize
from repro.xquery.parser import parse_query
from repro.xupdate.parser import parse_update


class TestDiffersOn:
    def test_detects_change(self, figure1_tree):
        assert differs_on(
            parse_query("//c"), parse_update("delete //a//c"),
            figure1_tree,
        )

    def test_detects_no_change(self, figure1_tree):
        assert not differs_on(
            parse_query("//a//c"), parse_update("delete //b//c"),
            figure1_tree,
        )

    def test_original_untouched(self, figure1_tree):
        before = serialize(figure1_tree.store, figure1_tree.root)
        differs_on(parse_query("//c"), parse_update("delete //c"),
                   figure1_tree)
        assert serialize(figure1_tree.store, figure1_tree.root) == before

    def test_failing_update_is_noop(self, figure1_tree):
        """Multi-node rename target raises -> treated as no change."""
        assert not differs_on(
            parse_query("//c"), parse_update("rename //a as z"),
            figure1_tree,
        )

    def test_order_sensitive_change(self):
        tree = parse_xml("<doc><a><c/></a><b><c/></b></doc>")
        # Inserting before b shifts b's preceding siblings.
        assert differs_on(
            parse_query("/doc/b/preceding-sibling::node()"),
            parse_update("insert <a><c/></a> before /doc/b"),
            tree,
        )


class TestVerdicts:
    def test_witness_index_reported(self, doc_dtd):
        trees = [
            parse_xml("<doc/>"),
            parse_xml("<doc><a><c/></a></doc>"),
        ]
        verdict = dynamic_independent("//a//c", "delete //a//c", trees)
        assert not verdict.independent
        assert verdict.witness_index == 1
        assert verdict.documents_tested == 2

    def test_independent_scans_all(self, doc_dtd):
        trees = [parse_xml("<doc/>")] * 3
        verdict = dynamic_independent("//a//c", "delete //b//c", trees)
        assert verdict.independent
        assert verdict.documents_tested == 3
        assert bool(verdict)

    def test_generated_corpus(self, doc_dtd):
        verdict = dynamic_independent_generated(
            "//a//c", "delete //a//c", doc_dtd, documents=6,
            target_bytes=500,
        )
        assert not verdict.independent
