"""Multiplicity bounds F, R and k (Section 5, Table 3) -- paper examples."""

from repro.analysis.kbound import (
    multiplicity,
    pair_multiplicity,
    recursive_steps,
    tag_frequency,
)
from repro.xquery.parser import parse_query
from repro.xupdate.parser import parse_update


class TestPaperExamples:
    def test_child_path_frequency(self):
        """Section 5: for /r/a/b/f/a maximal tag frequency is 2."""
        q = parse_query("/r/a/b/f/a")
        assert tag_frequency("a", q) == 2
        assert tag_frequency("b", q) == 1
        assert recursive_steps(q) == 0
        assert multiplicity(q) == 2

    def test_parent_step_keeps_k2(self):
        """Section 5: /r/a/b/f/a/parent::f also has k=2."""
        q = parse_query("/r/a/b/f/a/parent::f")
        assert multiplicity(q) == 2

    def test_wildcard_counts_every_tag(self):
        """Section 5: /r/a/b/f/* has kp=2 (the wildcard stands for any
        label)."""
        q = parse_query("/r/a/b/f/*")
        assert multiplicity(q) == 2

    def test_three_descendants(self):
        """Section 5: /descendant::b/descendant::c/descendant::e -> kp=3."""
        q = parse_query("/descendant::b/descendant::c/descendant::e")
        assert recursive_steps(q) == 3
        assert tag_frequency("b", q) == 0
        assert multiplicity(q) == 3

    def test_mixed_recursive_and_child(self):
        """Section 5: /descendant::b/a/b -> kp=2 (freq 1 + 1 recursive)."""
        q = parse_query("/descendant::b/a/b")
        assert multiplicity(q) == 2

    def test_descendant_then_ancestor(self):
        """Section 5: /descendant::b/ancestor::c -> two recursive steps."""
        q = parse_query("/descendant::b/ancestor::c")
        assert recursive_steps(q) == 2
        assert multiplicity(q) == 2

    def test_for_sums_frequencies(self):
        """Section 5's q': nested fors over /a/a and /a/b give F(a)=3."""
        q = parse_query(
            "for $x in /a/a return for $y in /a/b return ($x, $y)"
        )
        # /a/a contributes 2, /a/b contributes 1; for-nesting sums, and
        # the bare-variable desugaring ($x -> self::node()) adds 1 more.
        assert tag_frequency("a", q) >= 3

    def test_nested_insert_example(self):
        """Section 5: insert <b><b><c/></b></b> into /a/b children gives
        k_u=3 (two constructed b's plus the b step)."""
        u = parse_update(
            "for $x in /a/b return insert <b><b><c/></b></b> into $x"
        )
        assert tag_frequency("b", u) == 3
        assert multiplicity(u) >= 3

    def test_rename_counts_new_tag(self):
        u = parse_update("for $x in /a/b return rename $x as a")
        # target path /a/b has F(a)=1, rename-as-a adds 1.
        assert tag_frequency("a", u) == 2


class TestStructuralRules:
    def test_concat_takes_max(self):
        q = parse_query("(/a/a, /a)")
        assert tag_frequency("a", q) == 2

    def test_if_takes_max(self):
        q = parse_query("if (/a/a) then /a else /a/a/a")
        assert tag_frequency("a", q) == 3

    def test_recursive_axis_has_zero_frequency(self):
        q = parse_query("/descendant::a")
        assert tag_frequency("a", q) == 0
        assert recursive_steps(q) == 1

    def test_element_construction_counts(self):
        q = parse_query("<a><a/></a>")
        assert tag_frequency("a", q) == 2

    def test_empty_and_string(self):
        assert multiplicity(parse_query("()")) == 0
        assert multiplicity(parse_query('"s"')) == 0

    def test_pair_multiplicity_at_least_one(self):
        assert pair_multiplicity(parse_query("()"),
                                 parse_update("()")) == 1

    def test_pair_multiplicity_sums(self):
        q = parse_query("/descendant::b")
        u = parse_update("delete /descendant::c")
        assert pair_multiplicity(q, u) == 2

    def test_delete_uses_target(self):
        u = parse_update("delete /a/a")
        assert tag_frequency("a", u) == 2

    def test_replace_sums_target_and_source(self):
        u = parse_update("replace /a/a with <a/>")
        assert tag_frequency("a", u) == 3
