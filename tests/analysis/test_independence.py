"""Systematic independence verdicts across operators, axes and schemas."""

from repro.analysis.independence import (
    AnalysisEngine,
    analyze,
    depth_cap_for,
    is_independent,
)


class TestDeleteVerdicts:
    def test_disjoint_subtrees(self, bib):
        assert is_independent("//title", "delete //price", bib)

    def test_same_path_dependent(self, bib):
        assert not is_independent("//title", "delete //title", bib)

    def test_delete_ancestor_dependent(self, bib):
        assert not is_independent("//title", "delete //book", bib)

    def test_delete_root_dependent_for_everything(self, bib):
        assert not is_independent("//title", "delete /bib", bib)

    def test_delete_descendant_of_return_dependent(self, bib):
        assert not is_independent("//author", "delete //author/last", bib)

    def test_sibling_paths_independent(self, bib):
        assert is_independent("//author/last", "delete //author/first",
                              bib)


class TestInsertVerdicts:
    def test_insert_into_returned_node_dependent(self, bib):
        u = "for $x in //book return insert <author/> into $x"
        assert not is_independent("//book", u, bib)

    def test_insert_same_tag_dependent(self, bib):
        u = "for $x in //book return insert <author/> into $x"
        assert not is_independent("//author", u, bib)

    def test_insert_nested_content_detected(self, bib):
        u = ("for $x in //book return insert "
             "<author><last>E</last></author> into $x")
        assert not is_independent("//author/last", u, bib)

    def test_insert_before_sibling_independent(self, bib):
        u = "for $x in //title return insert <author/> after $x"
        assert is_independent("//title", u, bib)

    def test_insert_existing_data(self):
        """Inserting existing nodes (schema-legal position)."""
        from repro.schema import DTD

        dtd = DTD.from_dict(
            "doc", {"doc": "(a | b)*", "a": "c?", "b": "(c | a)*",
                    "c": "EMPTY"},
        )
        u = "for $x in /doc/b return insert /doc/a into $x"
        # a (and its c content) lands below b: //b//c is affected.
        assert not is_independent("//b//c", u, dtd)
        # But queries over a subtrees are untouched (copy semantics).
        assert is_independent("/doc/a/c", u, dtd)

    def test_schema_violating_insert_is_out_of_scope(self, doc_dtd):
        """Section 4's documented limitation: the analysis assumes updates
        preserve the schema.  Inserting ``a`` below ``b`` violates
        ``d(b) = c``, creates the fresh chain doc.b.a.c outside Cd, and is
        therefore (soundly w.r.t. the paper's assumption, but not w.r.t.
        arbitrary updates) reported independent of //b//c."""
        u = "for $x in /doc/b return insert /doc/a into $x"
        assert is_independent("//b//c", u, doc_dtd)


class TestRenameVerdicts:
    def test_rename_away_dependent(self, doc_dtd):
        u = "for $x in /doc/b return rename $x as a"
        assert not is_independent("//b", u, doc_dtd)

    def test_rename_into_query_tag_dependent(self, doc_dtd):
        u = "for $x in /doc/b return rename $x as a"
        assert not is_independent("//a", u, doc_dtd)

    def test_rename_descendants_affected(self, doc_dtd):
        u = "for $x in /doc/b return rename $x as a"
        assert not is_independent("//a//c", u, doc_dtd)
        assert not is_independent("//b//c", u, doc_dtd)

    def test_rename_elsewhere_independent(self, bib):
        u = "for $x in //author/first return rename $x as last"
        assert is_independent("//title", u, bib)


class TestReplaceVerdicts:
    def test_replace_target_dependent(self, bib):
        u = "for $x in //price return replace $x with <price>0</price>"
        assert not is_independent("//price", u, bib)

    def test_replace_other_field_independent(self, bib):
        u = "for $x in //price return replace $x with <price>0</price>"
        assert is_independent("//title", u, bib)

    def test_replace_introducing_query_tag(self, bib):
        u = "for $x in //price return replace $x with <title/>"
        assert not is_independent("//title", u, bib)


class TestUpwardAxes:
    def test_parent_query_vs_child_delete(self, bib):
        q = "//last/parent::author"
        assert not is_independent(q, "delete //author", bib)
        # Deleting last itself changes the *used* node set... last is the
        # navigation source: deleting it changes which authors are found.
        assert not is_independent(q, "delete //last", bib)

    def test_parent_query_vs_sibling_delete(self, bib):
        q = "//last/parent::author"
        # first is below the returned author: part of the result subtree.
        assert not is_independent(q, "delete //author/first", bib)

    def test_ancestor_query_independent_of_other_branch(self, doc_dtd):
        q = "//c/ancestor::a"
        assert not is_independent(q, "delete //a//c", doc_dtd)
        # b's subtree never contributes an ancestor::a chain...
        # but deleting b.c does not touch a chains:
        assert is_independent("/doc/a/c/ancestor::a", "delete /doc/b/c",
                              doc_dtd)


class TestSiblingAxes:
    def test_following_sibling_order_precision(self):
        """Over a <- (b, c): c follows b, so a query on b's following
        siblings depends on c updates but a query on c's following
        siblings (none) does not depend on b updates."""
        from repro.schema import DTD

        dtd = DTD.from_dict(
            "a", {"a": "(b, c)", "b": "EMPTY", "c": "EMPTY"}
        )
        q_after_b = "/a/b/following-sibling::node()"
        q_after_c = "/a/c/following-sibling::node()"
        assert not is_independent(q_after_b, "delete /a/c", dtd)
        assert is_independent(q_after_c, "delete /a/b", dtd)


class TestEngineReuse:
    def test_engine_caches_across_pairs(self, bib):
        engine = AnalysisEngine(bib, 4)
        r1 = analyze("//title", "delete //price", bib, k=4, engine=engine)
        r2 = analyze("//title", "delete //author", bib, k=4, engine=engine)
        assert r1.independent and r2.independent

    def test_report_str(self, bib):
        report = analyze("//title", "delete //price", bib)
        assert "independent" in str(report)
        assert "k=" in str(report)


class TestDepthCap:
    def test_non_recursive_cap_is_height(self, bib):
        # bib height: bib.book.author.last.#S = 5 symbols.
        assert depth_cap_for(bib, 1) == 5
        # k does not matter for non-recursive schemas.
        assert depth_cap_for(bib, 10) == 5

    def test_fully_recursive_cap_scales_with_k(self):
        from repro.bench.rbench import recursive_schema

        dn = recursive_schema(4)
        assert depth_cap_for(dn, 2) == 2 * 4 + 1

    def test_xmark_cap_far_below_naive(self, xmark):
        naive = 6 * len(xmark.alphabet)
        assert depth_cap_for(xmark, 6) < naive / 4
