"""Update chain inference (Table 2) against expected full chains."""

from repro.analysis.independence import build_universe, chains_of
from repro.analysis.infer_query import QueryInference
from repro.analysis.infer_update import UpdateInference
from repro.xquery.ast import ROOT_VAR
from repro.xupdate.parser import parse_update


def infer(text: str, schema, k: int = 3):
    queries = QueryInference(build_universe(schema, k))
    engine = UpdateInference(queries)
    return chains_of(engine.infer_root(parse_update(text), ROOT_VAR))


class TestDelete:
    def test_full_chain_is_target_chain(self, doc_dtd):
        """(DELETE): delete //b//c gives update chain doc.b:c."""
        assert infer("delete //b//c", doc_dtd) == {("doc", "b", "c")}

    def test_delete_root(self, doc_dtd):
        assert infer("delete /doc", doc_dtd) == {("doc",)}

    def test_delete_empty_target(self, doc_dtd):
        assert infer("delete /doc/zzz", doc_dtd) == set()


class TestRename:
    def test_old_and_new_chains(self, doc_dtd):
        chains = infer("for $x in /doc/b return rename $x as a", doc_dtd)
        assert ("doc", "b") in chains      # c:alpha (old)
        assert ("doc", "a") in chains      # c:b (new tag)

    def test_rename_leaf(self, doc_dtd):
        chains = infer(
            "for $x in /doc/a/c return rename $x as d", doc_dtd
        )
        assert ("doc", "a", "c") in chains
        assert ("doc", "a", "d") in chains


class TestInsert:
    def test_paper_u2(self, bib):
        """Section 3: insert <author/> into book -> bib.book:author."""
        chains = infer(
            "for $x in //book return insert <author/> into $x", bib
        )
        assert chains == {("bib", "book", "author")}

    def test_nested_source_chains(self, bib):
        """Section 3: nested construction gives bib.book:author.first.#S."""
        chains = infer(
            "for $x in //book return insert "
            "<author>{(<first>Umberto</first>, <second>Eco</second>)}"
            "</author> into $x",
            bib,
        )
        # Section 3: "we end up with the following two update chains" --
        # exactly bib.book:author.first.S and bib.book:author.second.S.
        assert chains == {
            ("bib", "book", "author", "first", "#S"),
            ("bib", "book", "author", "second", "#S"),
        }

    def test_insert_before_anchors_at_parent(self, bib):
        """(INSERT-2): siblings insert below the target's parent."""
        chains = infer(
            "for $x in //title return insert <author/> before $x", bib
        )
        assert chains == {("bib", "book", "author")}

    def test_insert_input_data_closes_schema(self, doc_dtd):
        """Inserting existing nodes: suffix closes over the schema."""
        chains = infer(
            "for $x in /doc/b return insert /doc/a into $x", doc_dtd
        )
        # a inserted below b: chains doc.b.a and the schema closure a.c.
        assert ("doc", "b", "a") in chains
        assert ("doc", "b", "a", "c") in chains

    def test_nested_insert_recursive_schema(self):
        """Section 5: insert <b><b><c/></b></b> into /a/b children gives
        the chain a.b:b.b.c for the finite analysis."""
        from repro.schema import DTD

        dtd = DTD.from_dict("a", {"a": "b", "b": "(b?, c?)", "c": "EMPTY"})
        chains = infer(
            "for $x in /a/b return insert <b><b><c/></b></b> into $x",
            dtd,
        )
        assert ("a", "b", "b", "b", "c") in chains


class TestReplace:
    def test_replace_chains(self, bib):
        chains = infer(
            "for $x in /bib/book/price return replace $x with <price/>",
            bib,
        )
        # c:alpha for the replaced node, and the new content below the
        # parent (our (REPLACE) typo fix).
        assert ("bib", "book", "price") in chains

    def test_replace_new_content_at_parent_level(self, bib):
        chains = infer(
            "for $x in /bib/book/price return replace $x with <title/>",
            bib,
        )
        assert ("bib", "book", "title") in chains
        # Not below the replaced node itself:
        assert ("bib", "book", "price", "title") not in chains


class TestComposition:
    def test_sequence_unions(self, doc_dtd):
        chains = infer("delete //a//c, delete //b//c", doc_dtd)
        assert chains == {("doc", "a", "c"), ("doc", "b", "c")}

    def test_if_unions_branches(self, doc_dtd):
        chains = infer(
            "if (/doc/b) then delete /doc/b else delete /doc/a", doc_dtd
        )
        assert chains == {("doc", "a"), ("doc", "b")}

    def test_let_binding(self, doc_dtd):
        chains = infer(
            "let $x := /doc/b return delete $x/c", doc_dtd
        )
        assert chains == {("doc", "b", "c")}

    def test_empty_update(self, doc_dtd):
        assert infer("()", doc_dtd) == set()
