"""Empirical check of Theorem 3.2: chain-driven projection preserves
query answers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.project import project_for_query
from repro.schema import bib_dtd, paper_doc_dtd, xmark_dtd
from repro.xmldm import generate_document, sequences_equivalent
from repro.xquery import ROOT_VAR, evaluate_query, parse_query

#: Queries spanning all chain classes: downward, upward, horizontal,
#: conditional, constructing.
_QUERIES = [
    "//a//c",
    "//b//c",
    "/doc/a",
    "/descendant::c",
    "//c/parent::node()",
    "//c/ancestor::node()",
    "for $x in /doc return if ($x/b) then $x/a else ()",
    "for $x in //a return <wrap>{$x/c}</wrap>",
]

_BIB_QUERIES = [
    "//title",
    "//author/last",
    "/bib/book[author]/title",
    "//last/parent::author",
    "//title/following-sibling::node()",
    "for $b in /bib/book return if ($b/editor) then $b/title else ()",
]


def _answers_equal(query_text, tree, projected):
    query = parse_query(query_text)
    original = evaluate_query(query, tree.store, {ROOT_VAR: [tree.root]})
    shrunk = evaluate_query(query, projected.store,
                            {ROOT_VAR: [projected.root]})
    return sequences_equivalent(tree.store, original,
                                projected.store, shrunk)


class TestTheorem32:
    @pytest.mark.parametrize("query_text", _QUERIES)
    def test_projection_preserves_answer_doc_dtd(self, query_text):
        dtd = paper_doc_dtd()
        tree = generate_document(dtd, 1200, seed=11)
        projected = project_for_query(query_text, tree, dtd)
        assert _answers_equal(query_text, tree, projected)

    @pytest.mark.parametrize("query_text", _BIB_QUERIES)
    def test_projection_preserves_answer_bib(self, query_text):
        dtd = bib_dtd()
        tree = generate_document(dtd, 3000, seed=13)
        projected = project_for_query(query_text, tree, dtd)
        assert _answers_equal(query_text, tree, projected)

    def test_projection_actually_shrinks(self):
        dtd = bib_dtd()
        tree = generate_document(dtd, 4000, seed=17)
        projected = project_for_query("//title", tree, dtd)
        assert projected.size() < tree.size()

    def test_projection_on_xmark(self):
        dtd = xmark_dtd()
        tree = generate_document(dtd, 15_000, seed=19)
        for query_text in ("/site/people/person/name",
                           "/site/regions//item/name"):
            projected = project_for_query(query_text, tree, dtd)
            assert _answers_equal(query_text, tree, projected)
            assert projected.size() <= tree.size()

    def test_huge_chain_sets_fall_back_to_identity(self):
        from repro.bench.rbench import recursive_schema

        dtd = recursive_schema(4)
        tree = generate_document(dtd, 800, seed=23)
        projected = project_for_query("/descendant::node()", tree, dtd,
                                      k=6)
        # Enumeration explodes -> sound no-op.
        assert projected.size() == tree.size()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 300),
       query_text=st.sampled_from(_QUERIES))
def test_projection_soundness_property(seed, query_text):
    dtd = paper_doc_dtd()
    tree = generate_document(dtd, 900, seed=seed)
    projected = project_for_query(query_text, tree, dtd)
    assert _answers_equal(query_text, tree, projected)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300),
       query_text=st.sampled_from(_BIB_QUERIES))
def test_projection_soundness_property_bib(seed, query_text):
    dtd = bib_dtd()
    tree = generate_document(dtd, 1500, seed=seed)
    projected = project_for_query(query_text, tree, dtd)
    assert _answers_equal(query_text, tree, projected)
