"""Step inference AC/TC over components, against explicit chain sets."""

import pytest

from repro.analysis.cdag import Universe, singleton_component
from repro.analysis.steps import (
    productive_ends,
    step_on_component,
)
from repro.xquery.ast import (
    Axis,
    NameTest,
    NodeKindTest,
    TextTest,
    WildcardTest,
)


@pytest.fixture()
def doc_universe(doc_dtd):
    return Universe(doc_dtd, depth_cap=4)


@pytest.fixture()
def doc_root(doc_universe):
    return singleton_component(doc_universe.root())


def chains(component):
    return component.enumerate_chains()


class TestAC_TC:
    def test_child_with_name_test(self, doc_universe, doc_root):
        result = step_on_component(
            doc_root, Axis.CHILD, NameTest("a"), doc_universe
        )
        assert chains(result) == {("doc", "a")}

    def test_child_no_match(self, doc_universe, doc_root):
        result = step_on_component(
            doc_root, Axis.CHILD, NameTest("c"), doc_universe
        )
        assert result.is_empty()

    def test_descendant_name(self, doc_universe, doc_root):
        result = step_on_component(
            doc_root, Axis.DESCENDANT, NameTest("c"), doc_universe
        )
        assert chains(result) == {("doc", "a", "c"), ("doc", "b", "c")}

    def test_self_node(self, doc_universe, doc_root):
        result = step_on_component(
            doc_root, Axis.SELF, NodeKindTest(), doc_universe
        )
        assert chains(result) == {("doc",)}

    def test_self_name_mismatch(self, doc_universe, doc_root):
        result = step_on_component(
            doc_root, Axis.SELF, NameTest("a"), doc_universe
        )
        assert result.is_empty()

    def test_wildcard_excludes_text(self, doc_dtd):
        text_dtd_universe = Universe(doc_dtd, depth_cap=4)
        root = singleton_component(text_dtd_universe.root())
        all_nodes = step_on_component(
            root, Axis.DESCENDANT_OR_SELF, NodeKindTest(),
            text_dtd_universe,
        )
        elements_only = step_on_component(
            root, Axis.DESCENDANT_OR_SELF, WildcardTest(),
            text_dtd_universe,
        )
        assert chains(elements_only) <= chains(all_nodes)

    def test_text_test(self, bib):
        universe = Universe(bib, depth_cap=5)
        root = singleton_component(universe.root())
        titles = step_on_component(
            step_on_component(root, Axis.DESCENDANT, NameTest("title"),
                              universe),
            Axis.CHILD, TextTest(), universe,
        )
        assert chains(titles) == {("bib", "book", "title", "#S")}

    def test_paper_sibling_example(self, sibling_dtd):
        """Section 3.2: over {a <- (b+, c*)} ... /a/b/following-sibling::c
        has used chain a.b and return chain a.c."""
        dtd_universe = Universe(
            __import__("repro.schema", fromlist=["DTD"]).DTD.from_dict(
                "a", {"a": "(b+, c*)", "b": "EMPTY", "c": "EMPTY"}
            ),
            depth_cap=3,
        )
        root = singleton_component(dtd_universe.root())
        b_chains = step_on_component(root, Axis.CHILD, NameTest("b"),
                                     dtd_universe)
        result = step_on_component(
            b_chains, Axis.FOLLOWING_SIBLING, NameTest("c"), dtd_universe
        )
        assert chains(result) == {("a", "c")}
        good = productive_ends(b_chains, Axis.FOLLOWING_SIBLING,
                               NameTest("c"), dtd_universe)
        assert good == frozenset({(1, "b")})


class TestProductiveEnds:
    def test_child_productive(self, doc_universe, doc_root):
        import repro.analysis.cdag as cdag

        all_chains = cdag.descendant_step(doc_root, doc_universe,
                                          or_self=True)
        good = productive_ends(all_chains, Axis.CHILD, NameTest("c"),
                               doc_universe)
        # Only a- and b-ends have a c child.
        assert {n[1] for n in good} == {"a", "b"}

    def test_descendant_productive(self, doc_universe, doc_root):
        good = productive_ends(doc_root, Axis.DESCENDANT, NameTest("c"),
                               doc_universe)
        assert good == frozenset({(0, "doc")})

    def test_descendant_unproductive(self, doc_universe, doc_root):
        good = productive_ends(doc_root, Axis.DESCENDANT, NameTest("zzz"),
                               doc_universe)
        assert good == frozenset()

    def test_self_productive(self, doc_universe, doc_root):
        assert productive_ends(
            doc_root, Axis.SELF, NameTest("doc"), doc_universe
        ) == frozenset({(0, "doc")})

    def test_parent_productive(self, doc_universe, doc_root):
        import repro.analysis.cdag as cdag

        down = cdag.child_step(doc_root, doc_universe)
        good = productive_ends(down, Axis.PARENT, NameTest("doc"),
                               doc_universe)
        assert good == down.ends

    def test_ancestor_productive(self, doc_universe, doc_root):
        import repro.analysis.cdag as cdag

        down = cdag.child_step(cdag.child_step(doc_root, doc_universe),
                               doc_universe)
        good = productive_ends(down, Axis.ANCESTOR, NameTest("doc"),
                               doc_universe)
        assert good == down.ends
        none = productive_ends(down, Axis.ANCESTOR, NameTest("zzz"),
                               doc_universe)
        assert none == frozenset()

    def test_root_has_no_siblings(self, doc_universe, doc_root):
        good = productive_ends(
            doc_root, Axis.FOLLOWING_SIBLING, NodeKindTest(), doc_universe
        )
        assert good == frozenset()
