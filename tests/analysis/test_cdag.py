"""CDAG components: construction, trimming, steps, conflicts (Section 6.1)."""

import pytest

from repro.analysis.cdag import (
    ChainExplosion,
    Universe,
    ancestor_step,
    child_step,
    components_conflict,
    conflict_witness,
    descendant_step,
    graft,
    make_component,
    parent_step,
    restrict_to_ends,
    shift_component,
    sibling_step,
    singleton_component,
)


@pytest.fixture()
def universe(doc_dtd):
    return Universe(doc_dtd, depth_cap=4)


@pytest.fixture()
def root(universe):
    return singleton_component(universe.root())


class TestComponentBasics:
    def test_singleton_denotes_root_chain(self, root):
        assert root.enumerate_chains() == {("doc",)}

    def test_empty_component(self):
        component = make_component((0, "doc"), set(), set())
        assert component.is_empty()
        assert component.enumerate_chains() == set()

    def test_make_trims_unreachable_ends(self):
        component = make_component(
            (0, "doc"), set(), {(0, "doc"), (5, "ghost")}
        )
        assert component.ends == frozenset({(0, "doc")})

    def test_make_trims_dead_edges(self):
        edges = {((0, "doc"), (1, "a")), ((0, "doc"), (1, "b"))}
        component = make_component((0, "doc"), edges, {(1, "a")})
        assert ((0, "doc"), (1, "b")) not in component.edges

    def test_nodes(self, universe, root):
        stepped = child_step(root, universe)
        assert (0, "doc") in stepped.nodes()
        assert (1, "a") in stepped.nodes()

    def test_enumeration_cap(self, d1_dtd):
        universe = Universe(d1_dtd, depth_cap=30)
        component = descendant_step(
            singleton_component(universe.root()), universe, or_self=True
        )
        with pytest.raises(ChainExplosion):
            component.enumerate_chains(limit=50)


class TestSteps:
    def test_child(self, universe, root):
        stepped = child_step(root, universe)
        assert stepped.enumerate_chains() == {("doc", "a"), ("doc", "b")}

    def test_child_twice(self, universe, root):
        stepped = child_step(child_step(root, universe), universe)
        assert stepped.enumerate_chains() == {
            ("doc", "a", "c"), ("doc", "b", "c")
        }

    def test_descendant(self, universe, root):
        stepped = descendant_step(root, universe, or_self=False)
        assert stepped.enumerate_chains() == {
            ("doc", "a"), ("doc", "b"), ("doc", "a", "c"), ("doc", "b", "c")
        }

    def test_descendant_or_self(self, universe, root):
        stepped = descendant_step(root, universe, or_self=True)
        assert ("doc",) in stepped.enumerate_chains()

    def test_parent(self, universe, root):
        down = child_step(child_step(root, universe), universe)
        up = parent_step(down)
        assert up.enumerate_chains() == {("doc", "a"), ("doc", "b")}

    def test_parent_of_root_is_empty(self, root):
        assert parent_step(root).is_empty()

    def test_ancestor(self, universe, root):
        down = child_step(child_step(root, universe), universe)
        up = ancestor_step(down, or_self=False)
        assert up.enumerate_chains() == {
            ("doc",), ("doc", "a"), ("doc", "b")
        }

    def test_ancestor_or_self(self, universe, root):
        down = child_step(root, universe)
        up = ancestor_step(down, or_self=True)
        assert up.enumerate_chains() == {
            ("doc",), ("doc", "a"), ("doc", "b")
        }

    def test_sibling_following(self, sibling_dtd):
        """Over {a<-(b,f*)}: following-siblings of b chains are f chains."""
        universe = Universe(sibling_dtd, depth_cap=5)
        root = singleton_component(universe.root())
        b_chains = restrict_to_ends(
            child_step(root, universe), {(1, "b")}
        )
        siblings = sibling_step(b_chains, universe, following=True)
        assert siblings.enumerate_chains() == {("a", "f")}

    def test_sibling_preceding(self, sibling_dtd):
        universe = Universe(sibling_dtd, depth_cap=5)
        root = singleton_component(universe.root())
        f_chains = restrict_to_ends(
            child_step(root, universe), {(1, "f")}
        )
        siblings = sibling_step(f_chains, universe, following=False)
        # b before f, and f* allows f before f.
        assert siblings.enumerate_chains() == {("a", "b"), ("a", "f")}

    def test_depth_cap_limits_descendants(self, d1_dtd):
        universe = Universe(d1_dtd, depth_cap=3)
        closure = descendant_step(
            singleton_component(universe.root()), universe, or_self=False
        )
        assert all(len(c) <= 3 for c in closure.enumerate_chains())


class TestShiftAndGraft:
    def test_shift(self, root, universe):
        stepped = child_step(root, universe)
        shifted = shift_component(stepped, 2)
        assert shifted.root == (2, "doc")
        assert all(e[0] >= 2 for e in shifted.ends)

    def test_graft_concatenates(self, universe):
        prefix = child_step(singleton_component(universe.root()), universe)
        prefix = restrict_to_ends(prefix, {(1, "a")})
        suffix = singleton_component((0, "x"))
        full = graft(prefix, (1, "a"), suffix)
        assert full.enumerate_chains() == {("doc", "a", "x")}

    def test_graft_empty_suffix(self, root):
        from repro.analysis.cdag import EMPTY_COMPONENT

        assert graft(root, (0, "doc"), EMPTY_COMPONENT).is_empty()


class TestConflicts:
    def _chains_component(self, universe, *dotted):
        """Build a component denoting exactly the given chains."""
        edges = set()
        ends = set()
        for text in dotted:
            parts = text.split(".")
            for i in range(len(parts) - 1):
                edges.add(((i, parts[i]), (i + 1, parts[i + 1])))
            ends.add((len(parts) - 1, parts[-1]))
        return make_component((0, dotted[0].split(".")[0]), edges, ends)

    def test_disjoint_chains_no_conflict(self, universe):
        q = self._chains_component(universe, "doc.a.c")
        u = self._chains_component(universe, "doc.b.c")
        assert not components_conflict(q, u)
        assert not components_conflict(u, q)

    def test_equal_chain_conflicts(self, universe):
        q = self._chains_component(universe, "doc.a.c")
        assert components_conflict(q, q)

    def test_prefix_conflicts_one_way(self, universe):
        short = self._chains_component(universe, "doc.a")
        long = self._chains_component(universe, "doc.a.c")
        assert components_conflict(short, long)
        assert not components_conflict(long, short)

    def test_root_chain_conflicts_with_everything(self, universe):
        root_chain = self._chains_component(universe, "doc")
        other = self._chains_component(universe, "doc.b.c")
        assert components_conflict(root_chain, other)

    def test_different_roots_never_conflict(self, universe):
        a = self._chains_component(universe, "doc.a")
        b = self._chains_component(universe, "other.a")
        assert not components_conflict(a, b)

    def test_witness(self, universe):
        short = self._chains_component(universe, "doc.a")
        long = self._chains_component(universe, "doc.a.c")
        assert conflict_witness(short, long) == ("doc", "a")
        assert conflict_witness(long, short) is None

    def test_figure2_no_artifact(self):
        """Figure 2: merging q1's chains must not fabricate a.b.c.f."""
        universe = None  # not needed for raw components
        q1 = self._chains_component(universe, "a.b.c.e", "a.d.c.e")
        q2 = self._chains_component(universe, "a.d.c.f")
        # a.b.c.f is not in either component's language.
        assert ("a", "b", "c", "f") not in q1.enumerate_chains()
        assert ("a", "b", "c", "f") not in q2.enumerate_chains()
        # And the two components do not conflict (no chain of one prefixes
        # a chain of the other: they diverge at depth 3 / depth 1).
        assert not components_conflict(q1, q2)
