"""Replay the shrunk-counterexample regression corpus.

Every JSON file under ``tests/corpus/`` is a scenario that once
violated (or guards) one of the fuzzer's invariants -- static
soundness, baseline soundness, or chain-over-baseline dominance on
deletes.  Replaying asserts the violation stays *fixed*:
``still_violates`` must be False for each entry, with the precise
invariant re-derived here so a regression produces a readable failure.

Triage workflow (see README): a nightly ``repro fuzz`` run that finds a
violation shrinks it and uploads the JSON; committing that file under
``tests/corpus/`` makes this test fail until the analysis bug is fixed,
then keeps guarding it forever.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testkit.differential import (
    KIND_BASELINE_UNSOUND,
    KIND_DOMINANCE,
    KIND_STATIC_UNSOUND,
    Counterexample,
    Scenario,
    run_scenario,
    still_violates,
)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def _is_differential(path: Path) -> bool:
    """Differential-fuzzer entries only: served-replay corpus files are
    replayed over the wire by ``tests/serve/test_served_corpus.py``,
    and pushdown-divergence files by
    ``tests/docstore/test_pushdown_property.py``."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    return payload.get("kind") in (KIND_STATIC_UNSOUND,
                                   KIND_BASELINE_UNSOUND,
                                   KIND_DOMINANCE)


CORPUS_FILES = sorted(
    path for path in CORPUS_DIR.glob("*.json") if _is_differential(path)
)


def _load(path: Path) -> Counterexample:
    return Counterexample.from_json(
        json.loads(path.read_text(encoding="utf-8"))
    )


def test_corpus_exists_and_is_well_formed():
    assert CORPUS_FILES, "regression corpus must not be empty"
    for path in CORPUS_FILES:
        cx = _load(path)
        assert cx.kind in (KIND_STATIC_UNSOUND, KIND_BASELINE_UNSOUND,
                           KIND_DOMINANCE), path.name
        # Scenarios must stay runnable: schema builds, expressions parse.
        cx.schema.to_dtd()


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_entry_stays_fixed(path: Path):
    cx = _load(path)
    record = run_scenario(Scenario(
        schema=cx.schema,
        queries=(cx.query,),
        updates=(cx.update,),
        corpus_docs=cx.corpus_docs,
        corpus_bytes=cx.corpus_bytes,
        corpus_seed=cx.corpus_seed,
    )).records[0]
    assert cx.kind not in record.violations, (
        f"regression: {path.name} violates again "
        f"(static={record.static_independent} "
        f"baseline={record.baseline_independent} "
        f"witness={record.witness_doc})"
    )


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_entry_agrees_with_still_violates(path: Path):
    # The shrinker and the replay must share one notion of "violating";
    # an entry drifting between the two would silently stop guarding.
    assert not still_violates(_load(path))
