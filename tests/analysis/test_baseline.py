"""The type-based baseline [6]: behavior on documented cases, and the
dominance of the chain analysis."""

from repro.analysis.baseline import TypeAnalysis, baseline_analyze
from repro.analysis.independence import analyze
from repro.xquery.ast import ROOT_VAR
from repro.xquery.parser import parse_query


class TestDocumentedBehaviour:
    def test_q2_accessed_types(self, bib):
        """Section 1: [6] infers bib, book and title as traced by //title."""
        report = baseline_analyze(
            "//title", "delete //price", bib
        )
        assert {"bib", "book", "title"} <= set(report.accessed)
        assert "author" not in report.accessed

    def test_u2_impacted_types(self, bib):
        """Section 1: book is impacted by the author insertion."""
        u2 = "for $x in //book return insert <author/> into $x"
        report = baseline_analyze("//title", u2, bib)
        assert "book" in report.impacted
        assert "author" in report.impacted
        assert report.overlap == frozenset({"book"})

    def test_q1_u1_overlap_on_c(self, doc_dtd):
        """Section 1: type c is inferred for both paths."""
        report = baseline_analyze("//a//c", "delete //b//c", doc_dtd)
        assert "c" in report.overlap
        assert not report.independent

    def test_detects_trivial_disjointness(self, bib):
        report = baseline_analyze("//title", "delete //author/first", bib)
        assert report.independent

    def test_backward_axis_coarseness(self, doc_dtd):
        """Context-free ancestor typing: from c, [6] reaches both a and b
        regardless of the navigated path."""
        analysis = TypeAnalysis(doc_dtd)
        q = parse_query("/doc/a/c/ancestor::node()")
        triple = analysis.infer_query(q, {ROOT_VAR: frozenset({"doc"})})
        assert {"a", "b", "doc"} <= set(triple.returns)


class TestDominance:
    """The chain analysis is never less precise than the type baseline."""

    PAIRS = [
        ("//title", "delete //price"),
        ("//title", "for $x in //book return insert <author/> into $x"),
        ("//author/last", "delete //author/first"),
        ("//book", "delete //book/price"),
        ("//price", "for $x in //price return replace $x with <price/>"),
        ("//editor", "for $x in //author return rename $x as editor"),
    ]

    def test_chains_dominate_types_on_bib(self, bib):
        for query, update in self.PAIRS:
            chain_verdict = analyze(query, update, bib).independent
            type_verdict = baseline_analyze(query, update, bib).independent
            if type_verdict:
                assert chain_verdict, (query, update)

    def test_chains_strictly_better_somewhere(self, bib, doc_dtd):
        wins = 0
        cases = [
            ("//a//c", "delete //b//c", doc_dtd),
            ("//title",
             "for $x in //book return insert <author/> into $x", bib),
        ]
        for query, update, schema in cases:
            if (analyze(query, update, schema).independent
                    and not baseline_analyze(query, update,
                                             schema).independent):
                wins += 1
        assert wins == len(cases)


class TestTextHandling:
    def test_text_typed_by_parent(self, bib):
        analysis = TypeAnalysis(bib)
        q = parse_query("//title/text()")
        triple = analysis.infer_query(q, {ROOT_VAR: frozenset({"bib"})})
        assert triple.returns == frozenset({"title"})

    def test_string_literal_no_type(self, bib):
        analysis = TypeAnalysis(bib)
        triple = analysis.infer_query(
            parse_query('"hello"'), {ROOT_VAR: frozenset({"bib"})}
        )
        assert not triple.returns and not triple.elements

    def test_text_replacement_conflicts_with_parent_query(self, bib):
        u = ("for $x in //title/text() return "
             "replace $x with <title/>")
        # Replacing title text impacts type title; //title accesses it.
        report = baseline_analyze("//title", u, bib)
        assert not report.independent
