"""Query chain inference (Table 1) against explicitly expected chain sets."""

from repro.analysis.cdag import Universe
from repro.analysis.independence import build_universe, chains_of
from repro.analysis.infer_query import QueryInference
from repro.xquery.ast import ROOT_VAR
from repro.xquery.parser import parse_query


def infer(text: str, schema, k: int = 3):
    engine = QueryInference(build_universe(schema, k))
    result = engine.infer_root(parse_query(text), ROOT_VAR)
    return (
        chains_of(result.returns),
        chains_of(result.used),
        chains_of(result.elements),
    )


class TestSteps:
    def test_root_self(self, doc_dtd):
        returns, used, elements = infer("/doc", doc_dtd)
        assert returns == {("doc",)}
        assert used == set()
        assert elements == set()

    def test_child(self, doc_dtd):
        returns, _, _ = infer("/doc/a", doc_dtd)
        assert returns == {("doc", "a")}

    def test_paper_q1_chains(self, doc_dtd):
        """Section 1: //a//c infers chain doc.a.c."""
        returns, used, _ = infer("//a//c", doc_dtd)
        assert returns == {("doc", "a", "c")}
        # Iterated context chains become used (FOR rule).
        assert used == {("doc",), ("doc", "a")}

    def test_paper_u1_path(self, doc_dtd):
        returns, _, _ = infer("//b//c", doc_dtd)
        assert returns == {("doc", "b", "c")}

    def test_bib_title(self, bib):
        """Section 1: //title infers bib.book.title."""
        returns, used, _ = infer("//title", bib)
        assert returns == {("bib", "book", "title")}
        # Only book ends can produce a title child, so of all the
        # //node() iteration chains only bib.book becomes used.
        assert used == {("bib", "book")}

    def test_descendant_step_produces_used(self, doc_dtd):
        """(STEPUH) applies to descendant (it is not in the STEPF list)."""
        returns, used, _ = infer("/descendant::c", doc_dtd)
        assert returns == {("doc", "a", "c"), ("doc", "b", "c")}
        assert used == {("doc",)}

    def test_ancestor_used_chains(self, doc_dtd):
        returns, used, _ = infer("//c/ancestor::a", doc_dtd)
        assert returns == {("doc", "a")}
        assert ("doc", "a", "c") in used


class TestForFiltering:
    def test_filter_keeps_productive_only(self, doc_dtd):
        """Section 3.2's example: for x in //node() return if x/b then x/a
        only keeps used chains leading to an a or b child."""
        returns, used, _ = infer(
            "for $x in //node() return if ($x/b) then $x/a else ()",
            doc_dtd,
        )
        # Only the doc node can have a- or b-children, so of all the
        # //node() chains only ("doc",) survives as used.
        assert ("doc",) in used
        assert ("doc", "a", "c") not in used
        assert ("doc", "b", "c") not in used

    def test_unproductive_iteration_drops_source(self, doc_dtd):
        returns, used, _ = infer(
            "for $x in //c return $x/zzz", doc_dtd
        )
        assert returns == set()
        # No c chain can produce a zzz child: nothing becomes used.
        assert all(c[-1] != "c" for c in used)

    def test_string_body_keeps_everything(self, doc_dtd):
        _, used, elements = infer('for $x in /doc/a return "s"', doc_dtd)
        assert ("doc", "a") in used
        assert ("#S",) in elements

    def test_if_condition_chains_are_used(self, doc_dtd):
        _, used, _ = infer(
            "for $x in /doc return if ($x/b) then $x/a else ()", doc_dtd
        )
        assert ("doc", "b") in used


class TestLet:
    def test_let_converts_returns_to_used(self, doc_dtd):
        returns, used, _ = infer(
            "let $x := /doc/b return /doc/a", doc_dtd
        )
        assert returns == {("doc", "a")}
        assert ("doc", "b") in used


class TestElementChains:
    def test_bare_element(self, doc_dtd):
        _, _, elements = infer("<x/>", doc_dtd)
        assert elements == {("x",)}

    def test_string_content(self, doc_dtd):
        _, _, elements = infer("<x>hi</x>", doc_dtd)
        assert elements == {("x", "#S")}

    def test_element_over_returns_closes_descendants(self, doc_dtd):
        _, _, elements = infer("<x>{/doc/a}</x>", doc_dtd)
        # a's schema descendants (c) are embodied below the new x.
        assert elements == {("x", "a"), ("x", "a", "c")}

    def test_nested_elements_paper_example(self, bib):
        """Section 3.2: q = <r1>(x/a , <r2>x/b</r2>)</r1>-style nesting
        must not fabricate chain r1.a.b."""
        _, _, elements = infer(
            "for $x in /bib/book return "
            "<r1>{($x/title, <r2>{$x/price}</r2>)}</r1>",
            bib,
        )
        assert ("r1", "title") in elements
        assert ("r1", "r2", "price") in elements
        assert ("r1", "title", "price") not in elements
        assert ("r1", "price") not in elements

    def test_element_returns_become_used(self, doc_dtd):
        _, used, _ = infer("<x>{/doc/a}</x>", doc_dtd)
        # r-bar: the returned chain and its descendants are used.
        assert ("doc", "a") in used
        assert ("doc", "a", "c") in used

    def test_author_element_chain(self, bib):
        """Section 3: <author>q'</author> with nested first/last."""
        _, _, elements = infer(
            "<author>{(<first>Umberto</first>, <second>Eco</second>)}"
            "</author>",
            bib,
        )
        assert ("author", "first", "#S") in elements
        assert ("author", "second", "#S") in elements


class TestIfConcat:
    def test_if_unions_branches(self, doc_dtd):
        returns, used, _ = infer(
            "if (/doc/b) then /doc/a else /doc/b", doc_dtd
        )
        assert returns == {("doc", "a"), ("doc", "b")}
        assert ("doc", "b") in used  # condition returns

    def test_concat_unions(self, doc_dtd):
        returns, _, _ = infer("(/doc/a, /doc/b)", doc_dtd)
        assert returns == {("doc", "a"), ("doc", "b")}


class TestMemoization:
    def test_memo_hit_same_query(self, doc_dtd):
        engine = QueryInference(build_universe(doc_dtd, 2))
        q = parse_query("//a//c")
        first = engine.infer_root(q, ROOT_VAR)
        second = engine.infer_root(q, ROOT_VAR)
        assert first is second

    def test_depth_cap_respected(self, d1_dtd):
        universe = Universe(d1_dtd, depth_cap=4)
        engine = QueryInference(universe)
        result = engine.infer_root(parse_query("/descendant::node()"),
                                   ROOT_VAR)
        for component in result.returns:
            for c in component.enumerate_chains():
                assert len(c) <= 4
