"""Every worked example in the paper, end to end."""

from repro.analysis.baseline import baseline_analyze
from repro.analysis.dynamic import dynamic_independent_generated
from repro.analysis.independence import analyze


class TestSection1Examples:
    def test_q1_u1_chains_detect_independence(self, doc_dtd):
        """q1=//a//c vs u1=delete //b//c: chains doc.a.c / doc.b.c are
        disjoint -> independent."""
        report = analyze("//a//c", "delete //b//c", doc_dtd)
        assert report.independent

    def test_q1_u1_types_miss_independence(self, doc_dtd):
        """[6] infers type c for both paths -> wrongly dependent."""
        assert not baseline_analyze("//a//c", "delete //b//c",
                                    doc_dtd).independent

    def test_q1_u1_truly_independent(self, doc_dtd):
        verdict = dynamic_independent_generated(
            "//a//c", "delete //b//c", doc_dtd, documents=6,
            target_bytes=600,
        )
        assert verdict.independent

    def test_q2_u2_chains_detect_independence(self, bib):
        """q2=//title vs u2=insert <author/> into //book: chains
        bib.book.title / bib.book.author diverge after book."""
        u2 = "for $x in //book return insert <author/> into $x"
        assert analyze("//title", u2, bib).independent

    def test_q2_u2_types_miss_independence(self, bib):
        u2 = "for $x in //book return insert <author/> into $x"
        assert not baseline_analyze("//title", u2, bib).independent

    def test_q2_u2_truly_independent(self, bib):
        u2 = "for $x in //book return insert <author/> into $x"
        verdict = dynamic_independent_generated(
            "//title", u2, bib, documents=6, target_bytes=1500
        )
        assert verdict.independent

    def test_author_email_excluded_by_element_chains(self, doc_dtd):
        """Section 3: nested element chains exclude independence for
        //author/email-style queries; here the analogous setup on bib
        with a query below author."""
        from repro.schema import DTD

        dtd = DTD.from_dict(
            "bib",
            {
                "bib": "(book*)",
                "book": "(title, author*)",
                "title": "(#PCDATA)",
                "author": "(first?, email?)",
                "first": "(#PCDATA)",
                "email": "(#PCDATA)",
            },
        )
        u = (
            "for $x in //book return insert "
            "<author><first>Umberto</first></author> into $x"
        )
        # Section 3 (literally): composed element chains are "necessary
        # to exclude independence wrt the query //author/email" -- the
        # update creates a node at the used position bib.book.author, so
        # independence is conservatively rejected.
        assert not analyze("//author/email", u, dtd).independent
        # //author/first and //author genuinely conflict (new first/#S
        # content, new author node).
        assert not analyze("//author/first", u, dtd).independent
        assert not analyze("//author", u, dtd).independent
        # The precision the element chains buy: queries that do not
        # navigate through author stay provably independent.
        assert analyze("//title", u, dtd).independent
        assert analyze("//book/title", u, dtd).independent


class TestSection5Examples:
    def test_k_sum_needed_for_dependence(self, d1_dtd):
        """Section 5: q=/descendant::b, u=delete /descendant::c over d1
        are dependent; k=max(kq,ku)=1 would wrongly infer chains r.a.b
        and r.a:c that do not conflict -- k=kq+ku=2 must be used."""
        report = analyze("/descendant::b", "delete /descendant::c", d1_dtd)
        assert report.k == 2
        assert not report.independent

    def test_strict_k1_chains_miss_the_conflict(self, d1_dtd):
        """The paper's point: the *strict* 1-chain sets for the pair are
        r.a.b (query) and r.a:c (update), which do not conflict.  (Our
        engine's depth-cap universe is a sound superset of the strict
        k-chains, so the analyzer itself still reports dependent even at
        k=1 -- strictly more conservative than Ck_d.)"""
        from repro.schema import chains_from_root, is_prefix

        one_chains = chains_from_root(d1_dtd, k=1)
        query_1chains = {c for c in one_chains if c[-1] == "b"}
        update_1chains = {c for c in one_chains if c[-1] == "c"}
        assert ("r", "a", "b") in query_1chains
        assert ("r", "a", "c") in update_1chains
        # No strict-1-chain conflict in either direction:
        assert not any(
            is_prefix(q, u) or is_prefix(u, q)
            for q in query_1chains for u in update_1chains
        )
        # Our finite analysis still catches the dependence at k=1.
        report = analyze("/descendant::b", "delete /descendant::c",
                         d1_dtd, k=1)
        assert not report.independent

    def test_dependence_is_real(self, d1_dtd):
        verdict = dynamic_independent_generated(
            "/descendant::b", "delete /descendant::c", d1_dtd,
            documents=8, target_bytes=2500,
        )
        assert not verdict.independent

    def test_sibling_example_chains(self, sibling_dtd):
        """Section 5: /descendant::c/following-sibling::b over
        {a<-(b,f*), b<-(b|c)*, f<-(e,g)}: needs used 1-chain a.b.c and
        return 2-chain a.b.b."""
        from repro.analysis.independence import chains_of
        from repro.analysis.infer_query import QueryInference
        from repro.analysis.independence import build_universe
        from repro.xquery.ast import ROOT_VAR
        from repro.xquery.parser import parse_query

        engine = QueryInference(build_universe(sibling_dtd, 2))
        result = engine.infer_root(
            parse_query("/descendant::c/following-sibling::b"), ROOT_VAR
        )
        returns = chains_of(result.returns)
        used = chains_of(result.used)
        assert ("a", "b", "b") in returns
        assert ("a", "b", "c") in used


class TestConflictWitnesses:
    def test_witness_reported(self, doc_dtd):
        report = analyze("//a//c", "delete //a//c", doc_dtd)
        assert not report.independent
        kinds = {c.kind for c in report.conflicts}
        assert "return-update" in kinds
        witnesses = {c.witness for c in report.conflicts}
        assert ("doc", "a", "c") in witnesses

    def test_update_above_return_conflicts(self, doc_dtd):
        report = analyze("//a//c", "delete /doc/a", doc_dtd)
        assert not report.independent
        assert any(c.kind == "update-return" for c in report.conflicts)

    def test_update_below_return_conflicts(self, doc_dtd):
        report = analyze("//a", "delete //a//c", doc_dtd)
        assert not report.independent

    def test_update_on_used_conflicts(self, doc_dtd):
        """Deleting the b nodes that a query's condition inspects."""
        q = "for $x in /doc return if ($x/b) then $x/a else ()"
        report = analyze(q, "delete /doc/b", doc_dtd)
        assert not report.independent
        assert any(c.kind == "update-used" for c in report.conflicts)

    def test_update_below_used_is_independent(self, doc_dtd):
        """Changing strictly below a used node does not affect the query
        (confl(v, U) is deliberately not tested -- Definition 4.1)."""
        q = "for $x in /doc return if ($x/b) then $x/a else ()"
        report = analyze(q, "delete /doc/b/c", doc_dtd)
        assert report.independent
