"""The batch analysis engine: caching, digests, and matrix semantics."""

import pytest

from repro.analysis.engine import (
    AnalysisEngine,
    clear_shared_engines,
    engine_for,
    normalize_source,
    schema_digest,
    schema_spec,
)
from repro.analysis.independence import analyze
from repro.schema import DTD, bib_dtd, paper_doc_dtd, xmark_dtd

#: The paper's Section 2 examples over the Figure 1 DTD
#: ``{doc <- (a|b)*, a <- c, b <- c}``: q0/q1/q2 against u1/u2.
SECTION2_QUERIES = [
    "//a//c",                                   # q0-style downward path
    "/doc/a/c",                                 # q1
    "for $x in /doc/a return <r>{$x/c}</r>",    # q2-style construction
    "//b",
    "//c/parent::node()",
]
SECTION2_UPDATES = [
    "delete //b//c",                            # u1
    "delete /doc/b",
    "for $x in //a return insert <c/> into $x",
    "delete //a",
]


class TestCacheAccounting:
    def test_pair_cache_hits(self, bib):
        engine = AnalysisEngine(bib)
        first = engine.analyze_pair("//title", "delete //price")
        assert engine.stats.pair_misses == 1
        assert engine.stats.pair_hits == 0
        second = engine.analyze_pair("//title", "delete //price")
        assert engine.stats.pair_hits == 1
        assert second is first

    def test_chain_caches_shared_across_pairs(self, bib):
        engine = AnalysisEngine(bib)
        updates = ["delete //price", "delete //author", "delete //editor"]
        for update in updates:
            engine.analyze_pair("//title", update)
        # One query inference total; each later pair hits the cache (the
        # bib schema is non-recursive, so every k shares one state).
        assert engine.stats.query_misses == 1
        assert engine.stats.query_hits == len(updates) - 1
        assert engine.stats.update_misses == len(updates)
        assert engine.stats.universes_built == 1

    def test_normalized_text_shares_one_parse(self, bib):
        engine = AnalysisEngine(bib)
        engine.analyze_pair("//title", "delete //price")
        engine.analyze_pair("  //title  ", "delete    //price")
        assert engine.stats.pair_hits == 1
        assert normalize_source(" delete   //a ") == "delete //a"

    def test_normalization_preserves_string_literals(self):
        # Whitespace inside quotes is significant: these are different
        # expressions and must not alias to one cache entry.
        assert normalize_source('if (//a) then "x  y" else ()') \
            != normalize_source('if (//a) then "x y" else ()')
        assert normalize_source("'a  b'") != normalize_source("'a b'")

    def test_witness_and_witnessless_reports_cached_separately(self, bib):
        engine = AnalysisEngine(bib)
        with_witness = engine.analyze_pair("//title", "delete //title")
        without = engine.analyze_pair("//title", "delete //title",
                                      collect_witnesses=False)
        assert not with_witness.independent
        assert not without.independent
        assert with_witness.conflicts[0].witness


class TestSchemaDigest:
    def test_equal_schemas_equal_digest(self):
        first = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c",
                                      "b": "c", "c": "EMPTY"})
        second = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c",
                                       "b": "c", "c": "EMPTY"})
        assert first is not second
        assert schema_digest(first) == schema_digest(second)

    def test_changed_schema_changes_digest(self):
        base = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c",
                                     "b": "c", "c": "EMPTY"})
        changed = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c*",
                                        "b": "c", "c": "EMPTY"})
        assert schema_digest(base) != schema_digest(changed)

    def test_schema_pickles_for_workers(self):
        # The process pool ships the schema itself; digest must survive.
        import pickle

        for schema in (paper_doc_dtd(), bib_dtd(), xmark_dtd()):
            rebuilt = pickle.loads(pickle.dumps(schema))
            assert rebuilt == schema
            assert schema_spec(rebuilt) == schema_spec(schema)
            assert schema_digest(rebuilt) == schema_digest(schema)

    def test_changed_schema_invalidates_engine(self):
        base = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c",
                                     "b": "c", "c": "EMPTY"})
        changed = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "EMPTY",
                                        "b": "c", "c": "EMPTY"})
        engine = AnalysisEngine(base)
        assert engine.matches(base)
        assert not engine.matches(changed)
        # analyze() must not serve the stale engine for the new schema:
        # under `changed`, a has no c child, so //a//c is unsatisfiable
        # and the pair becomes independent.
        assert not analyze("//a//c", "delete //a//c", base,
                           engine=engine).independent
        assert analyze("//a//c", "delete //a//c", changed,
                       engine=engine).independent

    def test_engine_for_registry_is_per_digest(self):
        clear_shared_engines()
        try:
            first = DTD.from_dict("doc", {"doc": "a*", "a": "EMPTY"})
            twin = DTD.from_dict("doc", {"doc": "a*", "a": "EMPTY"})
            other = DTD.from_dict("doc", {"doc": "a+", "a": "EMPTY"})
            assert engine_for(first) is engine_for(twin)
            assert engine_for(first) is not engine_for(other)
        finally:
            clear_shared_engines()


class TestMatrixSemantics:
    def test_matrix_equals_sequential_one_shot_on_section2(self, doc_dtd):
        expected = [
            [analyze(q, u, doc_dtd, collect_witnesses=False).independent
             for u in SECTION2_UPDATES]
            for q in SECTION2_QUERIES
        ]
        matrix = AnalysisEngine(doc_dtd).analyze_matrix(
            SECTION2_QUERIES, SECTION2_UPDATES
        )
        assert matrix.shape == (len(SECTION2_QUERIES),
                                len(SECTION2_UPDATES))
        assert [list(row) for row in matrix.verdict_rows()] == expected

    def test_matrix_parallel_equals_sequential(self, doc_dtd):
        sequential = AnalysisEngine(doc_dtd).analyze_matrix(
            SECTION2_QUERIES, SECTION2_UPDATES
        )
        pooled = AnalysisEngine(doc_dtd).analyze_matrix(
            SECTION2_QUERIES, SECTION2_UPDATES, processes=2
        )
        assert pooled.processes == 2
        assert pooled.verdict_rows() == sequential.verdict_rows()

    def test_matrix_parallel_accepts_ast_work_units(self, doc_dtd):
        # Work units are pickled to pool workers; parsed ASTs (slotted
        # frozen dataclasses) must survive the trip like strings do.
        from repro.xquery.parser import parse_query
        from repro.xupdate.parser import parse_update

        queries = [parse_query(q) for q in SECTION2_QUERIES]
        updates = [parse_update(u) for u in SECTION2_UPDATES]
        sequential = AnalysisEngine(doc_dtd).analyze_matrix(
            queries, updates
        )
        pooled = AnalysisEngine(doc_dtd).analyze_matrix(
            queries, updates, processes=2
        )
        assert pooled.verdict_rows() == sequential.verdict_rows()

    def test_matrix_parallel_chunk_size_extremes(self, doc_dtd):
        expected = AnalysisEngine(doc_dtd).analyze_matrix(
            SECTION2_QUERIES, SECTION2_UPDATES
        ).verdict_rows()
        # One pair per dispatch, and one chunk holding the whole grid.
        for chunk_size in (1, len(SECTION2_QUERIES)
                           * len(SECTION2_UPDATES) + 5):
            pooled = AnalysisEngine(doc_dtd).analyze_matrix(
                SECTION2_QUERIES, SECTION2_UPDATES, processes=2,
                chunk_size=chunk_size,
            )
            assert pooled.verdict_rows() == expected

    def test_matrix_parallel_k_override_reaches_workers(self, doc_dtd):
        pooled = AnalysisEngine(doc_dtd).analyze_matrix(
            ["//a//c"], ["delete //b//c"], k=4, processes=2
        )
        assert pooled.verdict(0, 0).k == 4

    def test_matrix_parallel_on_generated_schemas(self):
        # The pool path must work for arbitrary (picklable) schemas,
        # not just the curated catalog: fan three testkit-generated
        # DTDs out and compare with the warm sequential engine.
        import random

        from repro.testkit.dtdgen import SchemaGenerator
        from repro.testkit.exprgen import QueryGenerator, UpdateGenerator

        rng = random.Random("engine-pool")
        for _ in range(3):
            dtd = SchemaGenerator(rng, max_tags=5).generate().to_dtd()
            queries = [QueryGenerator(rng, dtd).generate()
                       for _ in range(3)]
            updates = [UpdateGenerator(rng, dtd).generate()
                       for _ in range(3)]
            engine = AnalysisEngine(dtd)
            sequential = engine.analyze_matrix(queries, updates)
            pooled = engine.analyze_matrix(queries, updates, processes=2)
            assert pooled.verdict_rows() == sequential.verdict_rows()

    def test_matrix_k_override(self, doc_dtd):
        matrix = AnalysisEngine(doc_dtd).analyze_matrix(
            ["//a//c"], ["delete //b//c"], k=4
        )
        assert matrix.verdict(0, 0).k == 4

    def test_empty_matrix(self, doc_dtd):
        matrix = AnalysisEngine(doc_dtd).analyze_matrix([], [])
        assert matrix.pairs == 0
        assert matrix.amortized_seconds == 0.0

    def test_analyze_many_matches_analyze(self, bib):
        engine = AnalysisEngine(bib)
        pairs = [("//title", "delete //price"),
                 ("//price", "delete //price")]
        reports = engine.analyze_many(pairs)
        for (query, update), report in zip(pairs, reports):
            assert report.independent == analyze(
                query, update, bib).independent


class TestPairMemoBound:
    PAIRS = [("//title", "delete //price"),
             ("//price", "delete //price"),
             ("//author", "delete //editor"),
             ("//last", "delete //first")]

    def test_lru_eviction_counts_and_bounds(self, bib):
        engine = AnalysisEngine(bib, pair_cache_size=2)
        for query, update in self.PAIRS:
            engine.analyze_pair(query, update, collect_witnesses=False)
        assert len(engine._pair_cache) == 2
        assert engine.stats.pair_evictions == len(self.PAIRS) - 2

    def test_eviction_is_least_recently_used(self, bib):
        engine = AnalysisEngine(bib, pair_cache_size=2)
        first, second, third = self.PAIRS[:3]
        engine.analyze_pair(*first, collect_witnesses=False)
        engine.analyze_pair(*second, collect_witnesses=False)
        engine.analyze_pair(*first, collect_witnesses=False)   # touch
        engine.analyze_pair(*third, collect_witnesses=False)   # evicts 2nd
        hits = engine.stats.pair_hits
        engine.analyze_pair(*first, collect_witnesses=False)
        assert engine.stats.pair_hits == hits + 1
        engine.analyze_pair(*second, collect_witnesses=False)
        assert engine.stats.pair_hits == hits + 1  # second was evicted

    def test_evicted_verdicts_recompute_identically(self, bib):
        engine = AnalysisEngine(bib, pair_cache_size=1)
        before = [
            engine.analyze_pair(q, u, collect_witnesses=False).independent
            for q, u in self.PAIRS
        ]
        after = [
            engine.analyze_pair(q, u, collect_witnesses=False).independent
            for q, u in self.PAIRS
        ]
        assert before == after
        assert engine.stats.pair_evictions > 0

    def test_pair_cache_size_validation(self, bib):
        with pytest.raises(ValueError):
            AnalysisEngine(bib, pair_cache_size=0)

    def test_default_bound_unchanged(self, bib):
        engine = AnalysisEngine(bib)
        assert engine.pair_cache_size == AnalysisEngine.PAIR_CACHE_SIZE
        assert engine.expr_cache_size == AnalysisEngine.EXPR_CACHE_SIZE

    def test_expression_caches_are_bounded_too(self, bib):
        # A service accepts arbitrarily many distinct expressions: the
        # per-expression memos must evict, and evicted expressions must
        # recompute to the same verdicts.
        engine = AnalysisEngine(bib, pair_cache_size=1, expr_cache_size=2)
        before = [
            engine.analyze_pair(q, u, collect_witnesses=False).independent
            for q, u in self.PAIRS
        ]
        assert engine.stats.expr_evictions > 0
        assert len(engine._parsed_queries) <= 2
        assert len(engine._query_chains) <= 2
        after = [
            engine.analyze_pair(q, u, collect_witnesses=False).independent
            for q, u in self.PAIRS
        ]
        assert before == after

    def test_expr_cache_size_validation(self, bib):
        with pytest.raises(ValueError):
            AnalysisEngine(bib, expr_cache_size=0)


class TestEngineStats:
    def test_cachestats_alias_survives(self):
        from repro.analysis import CacheStats, EngineStats

        assert CacheStats is EngineStats

    def test_as_dict_is_json_ready(self, bib):
        import json

        engine = AnalysisEngine(bib)
        engine.analyze_pair("//title", "delete //price",
                            collect_witnesses=False)
        payload = engine.stats.as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["pair_misses"] == 1
        assert payload["pair_evictions"] == 0
        assert payload["store_hits"] == 0
        assert 0.0 <= payload["pair_hit_ratio"] <= 1.0


class TestBackwardsCompat:
    def test_legacy_signature_and_attributes(self, bib):
        engine = AnalysisEngine(bib, 4)
        assert engine.k == 4
        assert engine.universe.depth_cap >= 1
        chains = engine.queries.infer_root(
            engine._query("//title")[1], "$doc"
        )
        assert chains.returns

    def test_default_state_requires_k(self, bib):
        engine = AnalysisEngine(bib)
        with pytest.raises(ValueError):
            _ = engine.universe

    def test_importable_from_independence(self):
        from repro.analysis.independence import AnalysisEngine as Legacy

        assert Legacy is AnalysisEngine

    def test_independence_module_getattr_rejects_unknown(self):
        import repro.analysis.independence as independence

        with pytest.raises(AttributeError):
            _ = independence.no_such_name
