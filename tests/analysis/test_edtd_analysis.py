"""Independence analysis over Extended DTDs (Section 7).

The killer case for EDTDs: two types with the same label but different
content models.  A DTD must merge their content (losing precision); an
EDTD keeps them apart, so the chain analysis can separate ``a`` elements
below ``r1`` from ``a`` elements below ``r2`` even though they carry the
same label.
"""

import pytest

from repro.analysis.baseline import baseline_analyze
from repro.analysis.independence import analyze, is_independent
from repro.schema import DTD, EDTD


@pytest.fixture()
def schema() -> EDTD:
    """root -> (r1, r2); r1's a-children contain b, r2's contain c."""
    core = DTD.from_dict(
        "root",
        {
            "root": "(r1, r2)",
            "r1": "a1*",
            "r2": "a2*",
            "a1": "b",
            "a2": "c",
            "b": "(#PCDATA)",
            "c": "(#PCDATA)",
        },
    )
    return EDTD(
        core,
        {"root": "root", "r1": "r1", "r2": "r2", "a1": "a", "a2": "a",
         "b": "b", "c": "c"},
    )


class TestEDTDAnalysis:
    def test_same_label_different_context_independent(self, schema):
        """//r1//a vs deleting r2's a elements: type chains diverge at
        r1/r2, even though both ends are labeled 'a'."""
        assert is_independent("//r1//a", "delete //r2/a", schema)

    def test_same_label_same_context_dependent(self, schema):
        assert not is_independent("//r1/a", "delete //r1/a", schema)

    def test_label_level_query_spans_both_types(self, schema):
        """//a touches both a1 and a2 chains: depends on either delete."""
        assert not is_independent("//a", "delete //r1/a", schema)
        assert not is_independent("//a", "delete //r2/a", schema)

    def test_content_distinguishes_types(self, schema):
        """//a/b only matches a1 elements (a2 has c content)."""
        assert is_independent("//a/b", "delete //a/c", schema)

    def test_report_runs(self, schema):
        report = analyze("//a/b", "delete //a/c", schema)
        assert report.independent
        assert report.k >= 1

    def test_baseline_works_on_edtd(self, schema):
        report = baseline_analyze("//r1/a", "delete //r2/a", schema)
        # Type-level: a1 vs a2 are distinct types, so even the baseline
        # separates them (EDTD types are the alphabet).
        assert report.independent

    def test_baseline_label_matching(self, schema):
        report = baseline_analyze("//a", "delete //r1/a", schema)
        assert not report.independent
