"""``docs/OBSERVABILITY.md`` is generated-checked against the code.

The metric inventory table must list exactly the families registered on
the process-default registry -- name, kind, and label set -- and the
span table must cover exactly ``repro.obs.tracing.SPAN_NAMES``.  Adding
an instrument without documenting it (or documenting a phantom) fails
here.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.metrics import REGISTRY
from repro.obs.tracing import SPAN_NAMES

DOC = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"

#: A metric row: ``| `name` | kind | labels | meaning |``.
METRIC_ROW = re.compile(
    r"^\| `(repro_[a-z_]+)` \| (counter|gauge|histogram) "
    r"\| ([^|]*) \|",
    re.MULTILINE,
)

#: A span row: ``| `name` | layer | meaning |`` inside the span table.
SPAN_ROW = re.compile(r"^\| `([a-z_]+)` \| [^|`]+ \|", re.MULTILINE)

#: A plan-vocabulary row: ``| `layer` | `d1`, `d2`, ... | meaning |``.
LAYER_ROW = re.compile(r"^\| `([a-z]+)` \| ([^|]*) \|", re.MULTILINE)


def test_document_exists():
    assert DOC.is_file(), "docs/OBSERVABILITY.md is missing"


def test_metric_table_matches_registry_exactly():
    documented = {
        name: (kind, tuple(re.findall(r"`([a-z_]+)`", labels)))
        for name, kind, labels in METRIC_ROW.findall(DOC.read_text())
    }
    live = {
        name: (family.kind, family.labelnames)
        for name, family in REGISTRY.families().items()
    }
    assert documented == live, (
        "docs/OBSERVABILITY.md metric table has drifted from "
        "repro.obs.metrics.REGISTRY:\n"
        f"  documented only: {sorted(set(documented) - set(live))}\n"
        f"  registry only:   {sorted(set(live) - set(documented))}\n"
        f"  mismatched:      "
        f"{sorted(k for k in set(live) & set(documented) if live[k] != documented[k])}"
    )


def test_span_table_matches_span_names_exactly():
    text = DOC.read_text()
    section = text.split("## Life of a traced request")[1] \
        .split("## ")[0]
    documented = tuple(SPAN_ROW.findall(section))
    assert tuple(sorted(documented)) == tuple(sorted(SPAN_NAMES)), (
        f"span table {documented} != SPAN_NAMES {SPAN_NAMES}"
    )


def test_explain_vocabulary_matches_plan_constants():
    from repro.obs.plan import INELIGIBILITY_REASONS, PLAN_DECISIONS

    section = DOC.read_text().split("## EXPLAIN")[1].split("\n## ")[0]
    documented = {
        layer: tuple(re.findall(r"`([a-z_]+)`", decisions))
        for layer, decisions in LAYER_ROW.findall(section)
    }
    live = {layer: tuple(names)
            for layer, names in PLAN_DECISIONS.items()}
    assert documented == live, (
        "docs/OBSERVABILITY.md EXPLAIN table has drifted from "
        "repro.obs.plan.PLAN_DECISIONS:\n"
        f"  documented: {documented}\n  live: {live}"
    )
    for reason in INELIGIBILITY_REASONS:
        assert f"`{reason}`" in section, (
            f"ineligibility reason {reason!r} undocumented in the "
            "EXPLAIN section"
        )


def test_slow_log_entry_keys_documented():
    text = DOC.read_text()
    for key in ("ts", "trace", "op", "total_ms", "spans", "ok"):
        assert f'"{key}"' in text, (
            f"slow-log key {key!r} undocumented in OBSERVABILITY.md"
        )
