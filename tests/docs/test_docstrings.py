"""Public-API docstring coverage for the serving layer, the engine,
the document store, and the storage backends.

The PR 4 docstring pass is enforced, not aspirational: every public
module, class, function, and method across ``repro.serve``,
``repro.analysis.engine``, ``repro.docstore``, ``repro.storage``, and
the ``repro.api`` facade must carry a docstring.  Private names
(leading underscore) and inherited/generated members are exempt.
"""

from __future__ import annotations

import inspect

import pytest

import repro.analysis.engine
import repro.api
import repro.docstore.adapter
import repro.docstore.axes
import repro.docstore.backend
import repro.docstore.encode
import repro.docstore.pushdown
import repro.docstore.streamload
import repro.obs
import repro.obs.export
import repro.obs.metrics
import repro.obs.plan
import repro.obs.tracing
import repro.serve.batching
import repro.serve.loadgen
import repro.serve.protocol
import repro.serve.registry
import repro.serve.server
import repro.serve.sharding
import repro.serve.store
import repro.storage
import repro.storage.base
import repro.storage.memory
import repro.storage.postgres
import repro.storage.sqlite

MODULES = [
    repro.analysis.engine,
    repro.api,
    repro.docstore.adapter,
    repro.docstore.axes,
    repro.docstore.backend,
    repro.docstore.encode,
    repro.docstore.pushdown,
    repro.docstore.streamload,
    repro.obs,
    repro.obs.export,
    repro.obs.metrics,
    repro.obs.plan,
    repro.obs.tracing,
    repro.serve.batching,
    repro.serve.loadgen,
    repro.serve.protocol,
    repro.serve.registry,
    repro.serve.server,
    repro.serve.sharding,
    repro.serve.store,
    repro.storage,
    repro.storage.base,
    repro.storage.memory,
    repro.storage.postgres,
    repro.storage.sqlite,
]


def public_api():
    """Yield ``(qualified name, object)`` for everything that needs a
    docstring: the modules, their public classes/functions, and public
    methods defined (not inherited) on those classes."""
    for module in MODULES:
        yield module.__name__, module
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or
                    inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-exports are documented at their home
            yield f"{module.__name__}.{name}", member
            if inspect.isclass(member):
                for attr, value in vars(member).items():
                    if attr.startswith("_"):
                        continue
                    if inspect.isfunction(value):
                        yield (f"{module.__name__}.{name}.{attr}",
                               value)
                    elif isinstance(value, property) and value.fget:
                        yield (f"{module.__name__}.{name}.{attr}",
                               value.fget)


@pytest.mark.parametrize(
    "qualified,member",
    list(public_api()),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_has_docstring(qualified, member):
    doc = inspect.getdoc(member)
    assert doc and doc.strip(), f"{qualified} has no docstring"
