"""Every ``>>>`` example in the documentation runs green.

Doctests in ``docs/*.md``, ``examples/*.md`` (the docstore
walkthrough), and the README (which currently carries none) are
executed here so examples cannot rot; CI additionally runs
``pytest --doctest-glob='*.md' docs examples`` as a standalone job.
"""

from __future__ import annotations

import doctest
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOCUMENTS = (
    sorted((ROOT / "docs").glob("*.md"))
    + sorted((ROOT / "examples").glob("*.md"))
    + [ROOT / "README.md"]
)


@pytest.mark.parametrize("path", DOCUMENTS, ids=lambda p: p.name)
def test_documentation_examples(path: Path):
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {path.name}"
    )


def test_docs_carry_examples():
    """At least the core docs keep runnable examples (the satellite's
    point: examples that execute, not prose that claims)."""
    with_examples = [
        path.name for path in DOCUMENTS
        if ">>>" in path.read_text()
    ]
    assert len(with_examples) >= 3, with_examples
