"""Every anchor in ``docs/PAPER-MAP.md`` resolves against the tree.

Anchors use the ``path/to/file.py::symbol`` convention; a moved file
or renamed module-level symbol fails here, so the paper-to-code map
cannot rot silently.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "PAPER-MAP.md"

ANCHOR = re.compile(r"`(src/[\w/.-]+\.py)(?:::(\w+))?`")


def anchors() -> list[tuple[str, str | None]]:
    found = ANCHOR.findall(DOC.read_text())
    assert len(found) >= 25, "paper map lost most of its anchors?"
    return [(path, symbol or None) for path, symbol in found]


@pytest.mark.parametrize(
    "path,symbol",
    sorted(set(anchors()), key=lambda pair: (pair[0], pair[1] or "")),
    ids=lambda value: str(value),
)
def test_anchor_resolves(path: str, symbol: str | None):
    file = ROOT / path
    assert file.is_file(), f"{path} does not exist"
    if symbol is None:
        return
    source = file.read_text()
    pattern = re.compile(
        rf"^(?:class|def|async def)\s+{re.escape(symbol)}\b",
        re.MULTILINE,
    )
    assert pattern.search(source), (
        f"{path} defines no module-level symbol {symbol!r}"
    )
