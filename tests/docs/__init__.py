"""Documentation-enforcement tests: the docs cannot rot silently."""
