"""``docs/PROTOCOL.md`` is generated-checked against the code.

Three artifacts must agree on the op list: the canonical tuple in
``repro.serve.protocol.OPS``, the server's dispatch table, and the op
headings of the protocol document (order included, so the document
reads in dispatch order).  Every wire error code must be documented.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.serve.protocol import ERROR_CODES, OPS
from repro.serve.server import IndependenceService, ShardedService

DOC = Path(__file__).resolve().parents[2] / "docs" / "PROTOCOL.md"

#: An op section heading looks like ``### `analyze` ``.
OP_HEADING = re.compile(r"^### `([a-z.]+)`\s*$", re.MULTILINE)


def test_document_exists():
    assert DOC.is_file(), "docs/PROTOCOL.md is missing"


def test_documented_ops_match_protocol_exactly():
    documented = tuple(OP_HEADING.findall(DOC.read_text()))
    assert documented == OPS, (
        "docs/PROTOCOL.md op sections have drifted from "
        f"repro.serve.protocol.OPS:\n  documented: {documented}\n"
        f"  protocol:   {OPS}"
    )


def test_server_dispatch_table_matches_protocol():
    assert set(IndependenceService.OP_HANDLERS) == set(OPS)


def test_router_routing_table_matches_protocol():
    assert set(ShardedService.ROUTING) == set(OPS)


def test_every_error_code_documented():
    text = DOC.read_text()
    for code in ERROR_CODES:
        assert f"`{code}`" in text, (
            f"error code {code!r} is not documented in docs/PROTOCOL.md"
        )


def test_documented_codes_all_exist():
    """No phantom codes: every backticked kebab-case token that looks
    like an error code in the error table must be a real constant."""
    table = DOC.read_text().split("## Error codes", 1)[1]
    codes = set(re.findall(r"^\| `([a-z-]+)` \|", table, re.MULTILINE))
    assert codes == set(ERROR_CODES)
