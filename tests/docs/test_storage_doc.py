"""``docs/STORAGE.md`` is generated-checked against the code.

The storage document's load-bearing claims are diffed against their
sources of truth: the URL scheme list against
``repro.storage.SCHEMES``, the pragma table against
``repro.storage.sqlite.PRAGMAS``, and the migration section against
the deprecation warnings the CLI actually emits.  The ``>>>`` examples
run via ``tests/docs/test_doc_examples.py``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.storage import SCHEMES, normalize_store_flags
from repro.storage.sqlite import PRAGMAS

DOC = Path(__file__).resolve().parents[2] / "docs" / "STORAGE.md"

#: A pragma-table row looks like ``| `journal_mode` | `wal` | ... |``.
PRAGMA_ROW = re.compile(r"^\| `([a-z_]+)` \| `([a-z0-9]+)` \|",
                        re.MULTILINE)


def test_document_exists():
    assert DOC.is_file(), "docs/STORAGE.md is missing"


def test_every_scheme_documented():
    """Each URL scheme the parser accepts appears as ``scheme://``."""
    text = DOC.read_text()
    for scheme in SCHEMES:
        assert f"{scheme}://" in text, (
            f"store URL scheme {scheme!r} is not documented"
        )


def test_pragma_table_matches_code():
    """The documented pragma table is exactly ``PRAGMAS`` -- name,
    value, and order (the table reads in application order)."""
    documented = PRAGMA_ROW.findall(DOC.read_text())
    expected = [(name, str(value)) for name, value in PRAGMAS]
    assert documented == expected, (
        "docs/STORAGE.md pragma table has drifted from "
        f"repro.storage.sqlite.PRAGMAS:\n  documented: {documented}\n"
        f"  code:       {expected}"
    )


def test_migration_documents_deprecated_spellings():
    """Every deprecated flag spelling has a migration row."""
    text = DOC.read_text()
    for spelling in ("--store verdicts.db", "--doc-store", "--docstore",
                     "sqlite:///verdicts.db", "DeprecationWarning"):
        assert spelling in text, (
            f"docs/STORAGE.md migration section lost {spelling!r}"
        )


def test_deprecation_warnings_point_here():
    """The warnings the CLI emits name this document, so following
    them always lands on current migration guidance."""
    with pytest.warns(DeprecationWarning) as caught:
        normalize_store_flags("verdicts.db", "docs.db", stacklevel=1)
    assert len(caught) == 2
    for warning in caught:
        assert "docs/STORAGE.md" in str(warning.message)


def test_cross_references():
    """The doc suite cross-links: ARCHITECTURE and PROTOCOL point at
    STORAGE, and STORAGE names the conformance suite."""
    docs = DOC.parent
    assert "docs/STORAGE.md" in (docs / "ARCHITECTURE.md").read_text()
    assert "docs/STORAGE.md" in (docs / "PROTOCOL.md").read_text()
    assert "tests/storage/test_conformance.py" in DOC.read_text()


def test_postgres_extra_documented():
    """The psycopg install extra in the doc matches pyproject."""
    text = DOC.read_text()
    assert "[postgres]" in text
    pyproject = (DOC.parents[1] / "pyproject.toml").read_text()
    assert "postgres" in pyproject, (
        "pyproject.toml lost the documented 'postgres' extra"
    )
