"""Shared Hypothesis strategies built on the testkit generators.

One home for the property-test inputs: curated paper schemas and
expression pools (regression intent: these encode the exact shapes the
paper discusses) plus unbounded random scenarios drawn through
:mod:`repro.testkit`.  Strategies hand Hypothesis a plain integer seed
and derive everything else through seeded ``random.Random`` streams, so
examples shrink to smaller seeds and replay deterministically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from hypothesis import strategies as st

from repro.schema import DTD, bib_dtd, paper_d1_dtd, paper_doc_dtd
from repro.testkit.dtdgen import SchemaGenerator
from repro.testkit.exprgen import QueryGenerator, UpdateGenerator
from repro.xmldm.generator import DocumentGenerator
from repro.xmldm.store import Tree

#: Small pool of curated schemas exercising recursion, alternation and
#: siblings (the shapes Sections 2 and 5 of the paper lean on).
CURATED_SCHEMAS: list[DTD] = [
    DTD.from_dict(
        "doc", {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"}
    ),
    DTD.from_dict(
        "doc",
        {"doc": "(a, b?)", "a": "(c*, d?)", "b": "(c | d)*",
         "c": "(#PCDATA)", "d": "EMPTY"},
    ),
    DTD.from_dict(  # recursive
        "r", {"r": "a", "a": "(b, c, e)*", "b": "f", "c": "f", "e": "f",
              "f": "(a, g)?", "g": "EMPTY"},
    ),
]

_PATHS = [
    "//a", "//b", "//c", "//d", "//e", "//f", "//g",
    "/doc/a", "/doc/b", "/r/a", "//a//c", "//b//c", "//a/c",
    "/descendant::c", "//c/parent::node()", "//f/ancestor::a",
    "//a/following-sibling::node()", "//c/preceding-sibling::node()",
]

CURATED_QUERIES = _PATHS + [
    "for $x in //a return if ($x/c) then $x else ()",
    "for $x in //node() return if ($x/b) then $x/a else ()",
    "let $x := //b return ($x/c, //d)",
    "for $x in //a return <wrap>{$x/c}</wrap>",
    "//a[c]", "//b[not(c)]",
]

CURATED_UPDATES = [
    "delete //a", "delete //b", "delete //c", "delete //d",
    "delete //a//c", "delete //b//c", "delete /doc/a", "delete //f",
    "for $x in //a return insert <c/> into $x",
    "for $x in //b return insert <d/> into $x",
    "for $x in //c return rename $x as d",
    "for $x in //d return rename $x as c",
    "for $x in //a return replace $x/c with <c/>",
    "for $x in //g return delete $x",
    "if (//d) then delete //c else ()",
    "let $x := //b return delete $x/c",
]

CURATED_DELETE_UPDATES = [
    u for u in CURATED_UPDATES
    if "insert" not in u and "rename" not in u and "replace" not in u
]


@dataclass(frozen=True)
class ScenarioCase:
    """One (schema, query, update, document-seed) property-test input."""

    schema: DTD
    query: str
    update: str
    doc_seed: int
    label: str   # "curated" | "generated" (for failure triage)

    def __repr__(self) -> str:  # readable Hypothesis falsifying examples
        return (f"ScenarioCase({self.label}, start={self.schema.start!r}, "
                f"query={self.query!r}, update={self.update!r}, "
                f"doc_seed={self.doc_seed})")


# -- schemas ---------------------------------------------------------------


@st.composite
def curated_schemas(draw) -> DTD:
    return CURATED_SCHEMAS[
        draw(st.integers(0, len(CURATED_SCHEMAS) - 1))
    ]


@st.composite
def generated_schemas(draw, max_tags: int = 6,
                      recursion_probability: float = 0.4) -> DTD:
    seed = draw(st.integers(0, 2 ** 32 - 1))
    rng = random.Random(f"schema:{seed}")
    spec = SchemaGenerator(
        rng, max_tags=max_tags,
        recursion_probability=recursion_probability,
    ).generate()
    return spec.to_dtd()


def schemas(**kwargs) -> st.SearchStrategy[DTD]:
    """Curated pool plus testkit-generated schemas."""
    return st.one_of(curated_schemas(), generated_schemas(**kwargs))


# -- expressions for a known schema ----------------------------------------


def queries_for(dtd: DTD, seed: int, max_depth: int = 2) -> str:
    """A deterministic random query for ``dtd`` (testkit-generated)."""
    return QueryGenerator(
        random.Random(f"query:{seed}"), dtd, max_depth=max_depth
    ).generate()


def updates_for(dtd: DTD, seed: int, max_depth: int = 2,
                kinds: tuple[str, ...] = UpdateGenerator.ALL_KINDS) -> str:
    """A deterministic random update for ``dtd``."""
    return UpdateGenerator(
        random.Random(f"update:{seed}"), dtd, max_depth=max_depth,
        kinds=kinds,
    ).generate()


# -- full scenario cases ---------------------------------------------------


@st.composite
def curated_cases(draw, deletes_only: bool = False) -> ScenarioCase:
    schema = draw(curated_schemas())
    pool = CURATED_DELETE_UPDATES if deletes_only else CURATED_UPDATES
    return ScenarioCase(
        schema=schema,
        query=draw(st.sampled_from(CURATED_QUERIES)),
        update=draw(st.sampled_from(pool)),
        doc_seed=draw(st.integers(0, 2 ** 16)),
        label="curated",
    )


@st.composite
def generated_cases(draw, deletes_only: bool = False,
                    max_tags: int = 6) -> ScenarioCase:
    schema = draw(generated_schemas(max_tags=max_tags))
    seed = draw(st.integers(0, 2 ** 32 - 1))
    kinds = ("delete",) if deletes_only else UpdateGenerator.ALL_KINDS
    return ScenarioCase(
        schema=schema,
        query=queries_for(schema, seed),
        update=updates_for(schema, seed, kinds=kinds),
        doc_seed=draw(st.integers(0, 2 ** 16)),
        label="generated",
    )


def scenario_cases(deletes_only: bool = False
                   ) -> st.SearchStrategy[ScenarioCase]:
    """The soundness-harness input: curated and generated scenarios."""
    return st.one_of(
        curated_cases(deletes_only=deletes_only),
        generated_cases(deletes_only=deletes_only),
    )


# -- documents -------------------------------------------------------------

#: Catalog schemas the evaluator-duality properties walk.
CATALOG_DTDS = (paper_doc_dtd, bib_dtd, paper_d1_dtd)


@st.composite
def catalog_trees(draw, target_bytes: int = 900) -> tuple[DTD, Tree]:
    """A (schema, valid document) pair over the catalog schemas."""
    dtd = CATALOG_DTDS[draw(st.integers(0, len(CATALOG_DTDS) - 1))]()
    seed = draw(st.integers(0, 400))
    tree = DocumentGenerator(
        dtd, rng=random.Random(f"tree:{seed}")
    ).generate(target_bytes)
    return dtd, tree


@st.composite
def generated_trees(draw, target_bytes: int = 900,
                    max_tags: int = 6) -> tuple[DTD, Tree]:
    """A (schema, valid document) pair over testkit-generated schemas."""
    dtd = draw(generated_schemas(max_tags=max_tags))
    seed = draw(st.integers(0, 2 ** 16))
    tree = DocumentGenerator(
        dtd, rng=random.Random(f"tree:{seed}")
    ).generate(target_bytes)
    return dtd, tree


def trees(**kwargs) -> st.SearchStrategy[tuple[DTD, Tree]]:
    """Catalog and generated (schema, document) pairs."""
    return st.one_of(catalog_trees(**kwargs), generated_trees(**kwargs))
