"""Random DTD generation: structure, determinism, termination."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import paper_doc_dtd
from repro.testkit.dtdgen import SchemaGenerator, SchemaSpec, random_schema
from repro.xmldm.generator import generate_document
from repro.xmldm.validate import validate


def _spec(seed: int, **kwargs) -> SchemaSpec:
    return SchemaGenerator(random.Random(seed), **kwargs).generate()


class TestStructure:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2 ** 32 - 1))
    def test_builds_a_dtd_with_full_reachability(self, seed):
        spec = _spec(seed)
        dtd = spec.to_dtd()
        reachable = dtd.descendants_of(dtd.start) | {dtd.start}
        assert dtd.alphabet <= reachable

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2 ** 32 - 1))
    def test_generated_documents_terminate_and_validate(self, seed):
        # The terminating-recursion invariant: even fully recursive
        # schemas admit finite shortest-word expansion, so document
        # generation halts and the result is valid.
        dtd = _spec(seed).to_dtd()
        tree = generate_document(dtd, 600, seed=seed % 1000)
        validate(tree, dtd)

    def test_alphabet_bounds_respected(self):
        for seed in range(30):
            spec = _spec(seed, min_tags=2, max_tags=4)
            assert 2 <= len(dict(spec.rules)) <= 4

    def test_recursive_schemas_are_produced(self):
        hits = sum(
            _spec(seed, recursion_probability=1.0).to_dtd().is_recursive()
            for seed in range(40)
        )
        # Recursion is opportunistic (a back-edge per rule with p=0.5),
        # so not every draw recurses -- but a healthy fraction must.
        assert hits >= 10

    def test_non_recursive_mode(self):
        for seed in range(20):
            dtd = _spec(seed, recursion_probability=0.0).to_dtd()
            assert not dtd.is_recursive()


class TestDeterminismAndSerialization:
    def test_same_rng_same_schema(self):
        assert _spec(99) == _spec(99)

    def test_json_round_trip(self):
        spec = _spec(5)
        assert SchemaSpec.from_json(spec.to_json()) == spec

    def test_from_dtd_round_trip(self):
        spec = SchemaSpec.from_dtd(paper_doc_dtd())
        assert spec.to_dtd() == paper_doc_dtd()

    def test_random_schema_helper(self):
        spec = random_schema(random.Random(3), max_tags=5)
        assert spec.to_dtd().start == "t0"
