"""The differential runner: classification, scope rules, violations."""

from repro.testkit.differential import (
    KIND_BASELINE_UNSOUND,
    KIND_DOMINANCE,
    KIND_STATIC_UNSOUND,
    Counterexample,
    PairRecord,
    Scenario,
    is_pure_delete,
    run_scenario,
    schema_preserving_on,
    still_violates,
)
from repro.testkit.dtdgen import SchemaSpec
from repro.xmldm.generator import generate_document
from repro.xupdate.parser import parse_update

DOC_SPEC = SchemaSpec(start="doc", rules=(
    ("a", "(c)"), ("b", "(c)"), ("c", "EMPTY"), ("doc", "(a | b)*"),
))


class TestScopeHelpers:
    def test_pure_delete_forms(self):
        for text in ["delete //a", "(delete //a, delete //b)",
                     "for $x in //a return delete $x/c",
                     "if (//b) then delete //a else ()"]:
            assert is_pure_delete(parse_update(text))
        for text in ["insert <c/> into //a", "rename //c as d",
                     "replace //a with <b/>",
                     "(delete //a, rename //c as d)"]:
            assert not is_pure_delete(parse_update(text))

    def test_schema_preserving_detection(self):
        dtd = DOC_SPEC.to_dtd()
        tree = generate_document(dtd, 400, seed=1)
        # Renaming a -> b keeps (a|b)* valid; c -> a breaks a's model.
        assert schema_preserving_on(
            parse_update("for $x in //a return rename $x as b"), tree, dtd
        )
        assert not schema_preserving_on(
            parse_update("for $x in //c return rename $x as a"), tree, dtd
        )

    def test_failed_execution_counts_as_preserving(self):
        dtd = DOC_SPEC.to_dtd()
        tree = generate_document(dtd, 400, seed=1)
        # Renaming several nodes at once is a W3C dynamic error -> no-op.
        assert schema_preserving_on(
            parse_update("rename //c as b"), tree, dtd
        )


class TestRunScenario:
    def test_paper_example_grid(self):
        # q1 = /doc/a/c vs u1 = delete //b//c: the paper's flagship
        # independent pair; //b//c vs the same delete conflicts.
        scenario = Scenario(
            schema=DOC_SPEC,
            queries=("//a//c", "//b//c"),
            updates=("delete //b//c",),
            corpus_docs=3,
            corpus_bytes=400,
            corpus_seed=0,
        )
        result = run_scenario(scenario)
        by_query = {r.query: r for r in result.records}
        assert by_query["//a//c"].static_independent
        assert by_query["//a//c"].dynamic_independent
        assert not by_query["//a//c"].baseline_independent  # [6] blind spot
        assert not by_query["//b//c"].static_independent
        assert by_query["//a//c"].violations == ()
        assert result.counterexamples == []

    def test_dependent_pair_yields_witness(self):
        scenario = Scenario(
            schema=DOC_SPEC,
            queries=("//c",),
            updates=("delete //c",),
            corpus_docs=3,
            corpus_bytes=400,
            corpus_seed=0,
        )
        record = run_scenario(scenario).records[0]
        assert not record.static_independent
        assert record.witness_doc is not None
        assert record.violations == ()   # dependent verdicts claim nothing

    def test_matrix_parallel_matches_sequential_records(self):
        scenario = Scenario(
            schema=DOC_SPEC,
            queries=("//a//c", "//b", "/doc/a"),
            updates=("delete //b//c", "delete //a"),
            corpus_docs=2,
            corpus_bytes=300,
            corpus_seed=5,
        )
        sequential = run_scenario(scenario)
        pooled = run_scenario(scenario, processes=2)
        assert [r.static_independent for r in sequential.records] == \
            [r.static_independent for r in pooled.records]


class TestPairRecordClassification:
    def _record(self, **kwargs) -> PairRecord:
        base = dict(
            query="q", update="u",
            static_independent=False, baseline_independent=False,
            pure_delete=False, in_scope_docs=3, witness_doc=None,
        )
        base.update(kwargs)
        return PairRecord(**base)

    def test_static_unsound(self):
        record = self._record(static_independent=True, witness_doc=1)
        assert KIND_STATIC_UNSOUND in record.violations

    def test_baseline_unsound(self):
        record = self._record(baseline_independent=True, witness_doc=0)
        assert KIND_BASELINE_UNSOUND in record.violations

    def test_delete_dominance(self):
        record = self._record(baseline_independent=True, pure_delete=True)
        assert record.violations == (KIND_DOMINANCE,)
        # Dominance is only a theorem for delete-only updates.
        record = self._record(baseline_independent=True, pure_delete=False)
        assert record.violations == ()

    def test_clean_pair(self):
        assert self._record().violations == ()
        assert self._record(static_independent=True).violations == ()


class TestStillViolates:
    def _cx(self, **kwargs) -> Counterexample:
        base = dict(
            kind=KIND_STATIC_UNSOUND, schema=DOC_SPEC,
            query="//a//c", update="delete //b//c",
            corpus_docs=2, corpus_bytes=300, corpus_seed=0,
        )
        base.update(kwargs)
        return Counterexample(**base)

    def test_sound_pair_does_not_violate(self):
        assert not still_violates(self._cx())

    def test_malformed_inputs_do_not_violate(self):
        assert not still_violates(self._cx(query="//a["))
        assert not still_violates(self._cx(update="delete"))
        broken = SchemaSpec(start="doc", rules=(("doc", "(ghost)"),))
        assert not still_violates(self._cx(schema=broken))
        # Bad content-model *syntax* (RegexError, not DTDError) must
        # also report False, not raise.
        bad_model = SchemaSpec(start="doc", rules=(("doc", "(a?*"),))
        assert not still_violates(self._cx(schema=bad_model))

    def test_json_round_trip(self):
        cx = self._cx(provenance={"fuzz_seed": 3})
        rebuilt = Counterexample.from_json(cx.to_json())
        assert rebuilt == cx
        assert rebuilt.provenance == {"fuzz_seed": 3}
