"""Expression generation and AST -> surface rendering."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schema import paper_doc_dtd
from repro.testkit.dtdgen import SchemaGenerator
from repro.testkit.exprgen import (
    QueryGenerator,
    UpdateGenerator,
    minimal_element_source,
    random_query,
    random_update,
)
from repro.testkit.render import query_to_source, update_to_source
from repro.xmldm.parse import parse_xml
from repro.xmldm.validate import validate
from repro.xquery.ast import ROOT_VAR, free_variables
from repro.xquery.parser import parse_query
from repro.xupdate.ast import update_free_variables
from repro.xupdate.parser import parse_update


def _workload(seed: int):
    rng = random.Random(seed)
    dtd = SchemaGenerator(rng).generate().to_dtd()
    return rng, dtd


class TestGenerators:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 2 ** 32 - 1))
    def test_queries_parse_and_are_quasi_closed(self, seed):
        rng, dtd = _workload(seed)
        ast = parse_query(QueryGenerator(rng, dtd).generate())
        assert free_variables(ast) <= {ROOT_VAR}

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 2 ** 32 - 1))
    def test_updates_parse_and_are_quasi_closed(self, seed):
        rng, dtd = _workload(seed)
        ast = parse_update(UpdateGenerator(rng, dtd).generate())
        assert update_free_variables(ast) <= {ROOT_VAR}

    def test_delete_only_kind_restriction(self):
        from repro.testkit.differential import is_pure_delete

        rng, dtd = _workload(17)
        for _ in range(20):
            update = random_update(rng, dtd, kinds=("delete",))
            assert is_pure_delete(parse_update(update))

    def test_module_level_helpers(self):
        rng, dtd = _workload(3)
        parse_query(random_query(rng, dtd))
        parse_update(random_update(rng, dtd))

    def test_satisfiable_text_steps_are_generated(self):
        # An element whose content is text-only admits child::text();
        # the generator must emit it (and never from a text-free one).
        import random as random_module

        from repro.schema import DTD
        from repro.testkit.exprgen import _PathBuilder
        from repro.xquery.ast import Axis

        dtd = DTD.from_dict("doc", {"doc": "(a)", "a": "(#PCDATA)"})
        builder = _PathBuilder(random_module.Random(0), dtd)
        emitted = set()
        for _ in range(400):
            axis, result = builder._pick_axis(frozenset({"a"}))
            text, _ = builder._step_source(frozenset({"a"}), axis, result)
            emitted.add(text)
        assert "child::text()" in emitted
        for _ in range(400):
            axis, result = builder._pick_axis(frozenset({"doc"}))
            text, _ = builder._step_source(frozenset({"doc"}), axis,
                                           result)
            assert not (axis is Axis.CHILD and text.endswith("text()"))


class TestMinimalElementSource:
    def test_minimal_literal_is_valid_subtree(self):
        dtd = paper_doc_dtd()
        for tag in sorted(dtd.alphabet):
            source = minimal_element_source(dtd, tag)
            tree = parse_xml(source)
            # Validate as if tag were the start symbol.
            from repro.schema import DTD

            rooted = DTD(tag, dtd.rules)
            validate(tree, rooted)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2 ** 32 - 1))
    def test_minimal_literal_terminates_on_generated_schemas(self, seed):
        rng, dtd = _workload(seed)
        for tag in sorted(dtd.alphabet):
            assert minimal_element_source(dtd, tag).startswith(f"<{tag}")


class TestRendering:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 2 ** 32 - 1))
    def test_query_render_round_trip(self, seed):
        rng, dtd = _workload(seed)
        ast = parse_query(QueryGenerator(rng, dtd).generate())
        assert parse_query(query_to_source(ast)) == ast

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 2 ** 32 - 1))
    def test_update_render_round_trip(self, seed):
        rng, dtd = _workload(seed)
        ast = parse_update(UpdateGenerator(rng, dtd).generate())
        assert parse_update(update_to_source(ast)) == ast

    def test_curated_round_trips(self):
        for text in [
            "//a//c", "(//a, //b)", "for $x in //a return <w>{$x/c}</w>",
            "if (//a[c]) then //b else ()", "//a[not(c)]",
            'let $x := //b return ($x/c, "lit")',
        ]:
            ast = parse_query(text)
            assert parse_query(query_to_source(ast)) == ast
        for text in [
            "delete //a", "rename //c as d",
            "insert <c/> as last into //a",
            "replace //a/c with <c/>",
            "for $x in //b return (delete $x/c, rename $x as a)",
        ]:
            ast = parse_update(text)
            assert parse_update(update_to_source(ast)) == ast

    def test_model_render_round_trip(self):
        from repro.schema.regex import parse_content_model
        from repro.testkit.render import model_to_source

        for text in ["EMPTY", "(#PCDATA)", "(a | b)*", "(a, b?, c+)",
                     "((a | b)*, #PCDATA)"]:
            model = parse_content_model(text)
            assert parse_content_model(model_to_source(model)) == model

    def test_unknown_nodes_rejected(self):
        with pytest.raises(TypeError):
            query_to_source(object())  # type: ignore[arg-type]
        with pytest.raises(TypeError):
            update_to_source(object())  # type: ignore[arg-type]

    def test_string_literal_quoting(self):
        from repro.xquery.ast import StringLit

        plain = StringLit("hello world")
        assert parse_query(query_to_source(plain)) == plain
        double = StringLit('say "hi"')
        assert parse_query(query_to_source(double)) == double
        # No escape sequences exist in the surface grammar: a literal
        # mixing both quote kinds must refuse rather than corrupt.
        with pytest.raises(ValueError):
            query_to_source(StringLit("both \" and ' quotes"))

    def test_stacked_repetitions_render_with_group(self):
        # Shrinking can produce Star(Opt(...)): must render as (a?)*,
        # never the unparseable a?*.
        from repro.schema.regex import Opt, Star, Sym, parse_content_model
        from repro.testkit.render import model_to_source

        rendered = model_to_source(Star(Opt(Sym("a"))))
        assert parse_content_model(rendered) == Star(Opt(Sym("a")))
