"""The fuzz campaign driver: determinism, aggregation, persistence."""

import json

from repro.testkit.differential import KIND_STATIC_UNSOUND, Counterexample
from repro.testkit.dtdgen import SchemaSpec
from repro.testkit.fuzz import (
    FuzzConfig,
    FuzzReport,
    counterexample_path,
    generate_scenario,
    run_fuzz,
    save_counterexample,
    scenario_rng,
)


class TestDeterminism:
    def test_scenario_is_pure_function_of_seed_and_index(self):
        config = FuzzConfig(seed=11)
        assert generate_scenario(config, 3) == generate_scenario(config, 3)
        assert generate_scenario(config, 3) != generate_scenario(config, 4)

    def test_scenario_independent_of_campaign_size(self):
        # Scenario i only depends on (seed, i): growing --count must not
        # reshuffle earlier scenarios, so violations replay standalone.
        small = FuzzConfig(seed=2, count=16)
        large = FuzzConfig(seed=2, count=160)
        assert generate_scenario(small, 0) == generate_scenario(large, 0)

    def test_rng_stream_is_salted(self):
        assert scenario_rng(1, 2).random() != scenario_rng(2, 1).random()


class TestCampaign:
    def test_small_campaign_reports(self, tmp_path):
        out = tmp_path / "report.txt"
        config = FuzzConfig(count=32, seed=0, queries_per_schema=2,
                            updates_per_schema=2, corpus_docs=2,
                            corpus_bytes=300)
        with open(out, "w", encoding="utf-8") as handle:
            report = run_fuzz(config, out=handle)
        assert report.pairs >= 32
        assert report.scenarios == report.pairs // 4
        assert report.static_independent <= report.pairs
        # The whole suite rests on this: no unsound verdicts.
        assert report.soundness_violations == 0
        text = out.read_text(encoding="utf-8")
        assert "precision vs oracle" in text

    def test_report_json_shape(self, tmp_path):
        config = FuzzConfig(count=8, seed=4, queries_per_schema=2,
                            updates_per_schema=2, corpus_docs=2,
                            corpus_bytes=300)
        with open(tmp_path / "sink", "w", encoding="utf-8") as handle:
            report = run_fuzz(config, out=handle)
        data = report.to_json()
        assert data["pairs"] == report.pairs
        assert set(data["precision"]) >= {
            "static_precision", "baseline_precision",
            "static_only_of_dynamic",
        }
        json.dumps(data)   # must be serializable as-is

    def test_precision_accounting_is_consistent(self, tmp_path):
        config = FuzzConfig(count=48, seed=9, corpus_docs=2,
                            corpus_bytes=300)
        with open(tmp_path / "sink", "w", encoding="utf-8") as handle:
            report = run_fuzz(config, out=handle)
        assert report.dynamic_independent <= report.in_scope_pairs
        assert report.static_proved_of_dynamic <= report.dynamic_independent
        assert report.static_only_of_dynamic <= report.static_proved_of_dynamic
        assert 0.0 <= report.static_precision <= 1.0
        assert 0.0 <= report.baseline_precision <= 1.0


class TestPersistence:
    def _cx(self) -> Counterexample:
        return Counterexample(
            kind=KIND_STATIC_UNSOUND,
            schema=SchemaSpec(start="t0", rules=(("t0", "EMPTY"),)),
            query="//t0", update="delete //t0",
            corpus_docs=1, corpus_bytes=200, corpus_seed=7,
        )

    def test_save_and_reload(self, tmp_path):
        path = save_counterexample(tmp_path, self._cx())
        assert path.exists()
        data = json.loads(path.read_text(encoding="utf-8"))
        assert Counterexample.from_json(data) == self._cx()

    def test_filename_is_stable_and_kind_tagged(self, tmp_path):
        first = counterexample_path(tmp_path, self._cx())
        second = counterexample_path(tmp_path, self._cx())
        assert first == second
        assert first.name.startswith(KIND_STATIC_UNSOUND)

    def test_filename_ignores_provenance(self, tmp_path):
        # The same minimal scenario found by two campaigns must dedup
        # to one corpus file: provenance is not part of identity.
        import dataclasses

        base = self._cx()
        tagged = dataclasses.replace(
            base, provenance={"fuzz_seed": 9, "scenario": 4}
        )
        assert counterexample_path(tmp_path, base) == \
            counterexample_path(tmp_path, tagged)


class TestEmptyReport:
    def test_precision_defaults(self):
        report = FuzzReport(config=FuzzConfig())
        assert report.static_precision == 0.0
        assert report.baseline_precision == 0.0
        assert report.soundness_violations == 0

    def test_empty_grid_is_rejected_not_spun_forever(self):
        import pytest

        for bad in (FuzzConfig(queries_per_schema=0),
                    FuzzConfig(updates_per_schema=0),
                    FuzzConfig(min_tags=9, max_tags=7),
                    FuzzConfig(min_tags=0)):
            with pytest.raises(ValueError):
                run_fuzz(bad)
