"""Greedy shrinking: candidate enumeration and end-to-end minimization."""

from repro.testkit.differential import Counterexample
from repro.testkit.dtdgen import SchemaSpec
from repro.testkit.render import query_to_source
from repro.testkit.shrink import (
    query_shrinks,
    shrink_counterexample,
    update_shrinks,
)
from repro.xquery.ast import ROOT_VAR, free_variables
from repro.xquery.parser import parse_query
from repro.xupdate.ast import update_free_variables
from repro.xupdate.parser import parse_update

SPEC = SchemaSpec(start="t0", rules=(
    ("t0", "(t1, t2*, #PCDATA)"), ("t1", "(t3+)"),
    ("t2", "(t3 | t1)*"), ("t3", "EMPTY"),
))


class TestCandidateEnumeration:
    def test_query_candidates_are_smaller(self):
        ast = parse_query(
            "for $x in //t1 return if ($x/t3) then ($x/t3, //t2) else ()"
        )
        seen = list(query_shrinks(ast))
        assert seen
        source_len = len(query_to_source(ast))
        # Not every structural candidate is shorter, but many must be.
        shorter = [q for q in seen
                   if len(query_to_source(q)) < source_len]
        assert shorter

    def test_for_body_only_offered_when_closed(self):
        uses_var = parse_query("for $x in //t1 return $x/t3")
        for candidate in query_shrinks(uses_var):
            assert free_variables(candidate) <= {ROOT_VAR, "$x"}
        closed_body = parse_query("for $x in //t1 return //t2")
        # The body never mentions $x, so it is offered whole.  (Note
        # parse_query("//t2") standalone would number its fresh
        # predicate variable differently, so compare the actual node.)
        assert closed_body.body in list(query_shrinks(closed_body))

    def test_update_candidates_include_delete_weakening(self):
        ast = parse_update("insert <t3/> into //t1")
        assert parse_update("delete //t1") in list(update_shrinks(ast))

    def test_update_candidates_respect_scope(self):
        ast = parse_update("for $x in //t1 return delete $x/t3")
        for candidate in update_shrinks(ast):
            assert update_free_variables(candidate) <= {ROOT_VAR, "$x"}


class TestEndToEnd:
    def test_shrinks_to_predicate_core(self):
        cx = Counterexample(
            kind="static-unsound",
            schema=SPEC,
            query="for $v1 in $doc/child::t1 return "
                  "($v1/child::t3, //t2/descendant::t3)",
            update="if (//t2) then delete $doc/child::t1/child::t3 "
                   "else (delete //t2, rename //t1 as t2)",
            corpus_docs=4, corpus_bytes=700, corpus_seed=0,
        )

        def pretend_bug(candidate: Counterexample) -> bool:
            rules = dict(candidate.schema.rules)
            return ("t3" in candidate.query
                    and "delete" in candidate.update
                    and "t1" in rules)

        shrunk = shrink_counterexample(cx, budget=400,
                                       predicate=pretend_bug)
        assert pretend_bug(shrunk)
        assert shrunk.size() < cx.size()
        # The irrelevant schema symbol t2 must have been dropped.
        assert "t2" not in dict(shrunk.schema.rules)
        # Rendered results stay parseable scenarios.
        parse_query(shrunk.query)
        parse_update(shrunk.update)
        shrunk.schema.to_dtd()

    def test_shrink_is_noop_without_violation(self):
        cx = Counterexample(
            kind="static-unsound", schema=SPEC,
            query="//t3", update="delete //t2",
            corpus_docs=2, corpus_bytes=300, corpus_seed=0,
        )
        assert shrink_counterexample(cx, budget=60) == cx

    def test_budget_bounds_work(self):
        cx = Counterexample(
            kind="static-unsound", schema=SPEC,
            query="(//t3, (//t3, (//t3, //t3)))",
            update="delete //t3",
            corpus_docs=1, corpus_bytes=200, corpus_seed=0,
        )
        shrunk = shrink_counterexample(cx, budget=1,
                                       predicate=lambda c: "t3" in c.query)
        # One probe is not enough to finish, but never crashes and
        # never grows.
        assert shrunk.size() <= cx.size()
