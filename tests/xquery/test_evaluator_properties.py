"""Property-based checks of the dynamic semantics (axis dualities).

Documents come from the shared :func:`tests.strategies.trees` strategy:
catalog schemas plus testkit-generated ones, with generation driven
through an injected ``random.Random`` so examples replay exactly.
"""

from hypothesis import given, settings

from ..strategies import catalog_trees, trees


@settings(max_examples=25, deadline=None)
@given(case=trees())
def test_child_parent_duality(case):
    _, tree = case
    store = tree.store
    for loc in _all_elements(tree):
        for child in store.children(loc):
            assert store.parent(child) == loc


@settings(max_examples=25, deadline=None)
@given(case=trees())
def test_descendant_ancestor_duality(case):
    _, tree = case
    store = tree.store
    for loc in _all_elements(tree)[:40]:
        for descendant in store.descendants(loc):
            assert loc in set(store.ancestors(descendant))


@settings(max_examples=25, deadline=None)
@given(case=trees())
def test_sibling_duality(case):
    _, tree = case
    store = tree.store
    for loc in _all_elements(tree)[:40]:
        for sibling in store.siblings_after(loc):
            assert loc in store.siblings_before(sibling)


@settings(max_examples=25, deadline=None)
@given(case=trees())
def test_descendants_partition(case):
    """descendants-or-self = self + children's descendants-or-self,
    in document order."""
    _, tree = case
    store = tree.store
    for loc in _all_elements(tree)[:25]:
        expected = [loc]
        for child in store.children(loc):
            expected.extend(store.descendants_or_self(child))
        assert list(store.descendants_or_self(loc)) == expected


@settings(max_examples=20, deadline=None)
@given(case=trees())
def test_node_chains_follow_dtd(case):
    """Every node chain of a valid generated document is a DTD chain
    rooted at the start symbol (Proposition 2.3)."""
    from repro.schema import is_chain

    dtd, tree = case
    store = tree.store
    for loc in store.descendants_or_self(tree.root):
        chain = store.node_chain(loc)
        assert chain[0] == dtd.start
        assert is_chain(dtd, chain)


@settings(max_examples=20, deadline=None)
@given(case=catalog_trees())
def test_evaluation_is_deterministic(case):
    from repro.xquery import ROOT_VAR, evaluate_query, parse_query

    _, tree = case
    query = parse_query("/descendant-or-self::node()")
    first = evaluate_query(query, tree.store, {ROOT_VAR: [tree.root]})
    second = evaluate_query(query, tree.store, {ROOT_VAR: [tree.root]})
    assert first == second


@settings(max_examples=20, deadline=None)
@given(case=trees(target_bytes=1200))
def test_order_relation_covers_observed_sibling_orders(case):
    """Dynamic check of the <r relation: every ordered sibling-tag pair
    observed in a valid document is in the content model's relation."""
    dtd, tree = case
    store = tree.store
    for loc in store.descendants_or_self(tree.root):
        if not store.is_element(loc):
            continue
        relation = dtd.sibling_order(store.tag(loc))
        kids = store.children(loc)
        symbols = [store.typ(k) for k in kids]
        for i, first in enumerate(symbols):
            for second in symbols[i + 1:]:
                assert (first, second) in relation, (
                    store.tag(loc), first, second
                )


def _all_elements(tree):
    return [
        loc for loc in tree.store.descendants_or_self(tree.root)
        if tree.store.is_element(loc)
    ]
