"""Core AST helpers: free variables, sizes, node tests, axis classes."""

from repro.schema.regex import TEXT_SYMBOL
from repro.xquery.ast import (
    Axis,
    NameTest,
    NodeKindTest,
    TextTest,
    WildcardTest,
    query_size,
    node_test_matches,
)
from repro.xquery.parser import parse_query


class TestAxisClasses:
    def test_recursive_axes(self):
        recursive = {a for a in Axis if a.is_recursive}
        assert recursive == {
            Axis.DESCENDANT,
            Axis.DESCENDANT_OR_SELF,
            Axis.ANCESTOR,
            Axis.ANCESTOR_OR_SELF,
        }

    def test_stepf_axes(self):
        """Rule (STEPF) covers self, child, descendant-or-self (Table 1)."""
        forward = {a for a in Axis if a.is_forward_downward}
        assert forward == {Axis.SELF, Axis.CHILD, Axis.DESCENDANT_OR_SELF}

    def test_descendant_goes_to_stepuh(self):
        assert not Axis.DESCENDANT.is_forward_downward


class TestNodeTests:
    def test_name_test(self):
        assert node_test_matches(NameTest("a"), "a")
        assert not node_test_matches(NameTest("a"), "b")
        assert not node_test_matches(NameTest("a"), TEXT_SYMBOL)

    def test_text_test(self):
        assert node_test_matches(TextTest(), TEXT_SYMBOL)
        assert not node_test_matches(TextTest(), "a")

    def test_node_test(self):
        assert node_test_matches(NodeKindTest(), "a")
        assert node_test_matches(NodeKindTest(), TEXT_SYMBOL)

    def test_wildcard(self):
        assert node_test_matches(WildcardTest(), "a")
        assert not node_test_matches(WildcardTest(), TEXT_SYMBOL)


class TestQuerySize:
    def test_single_step(self):
        assert query_size(parse_query("$x/child::a")) == 1

    def test_grows_with_structure(self):
        small = query_size(parse_query("$x/a"))
        large = query_size(parse_query("for $y in $x/a return ($y/b, $y/c)"))
        assert large > small

    def test_str_rendering_stable(self):
        q = parse_query("for $x in $y/child::a return $x/child::b")
        assert "for $x in" in str(q)
        assert "child::b" in str(q)
