"""Surface-syntax parsing and desugaring to the core fragment."""

import pytest

from repro.xquery.ast import (
    Axis,
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    NameTest,
    NodeKindTest,
    ROOT_VAR,
    Step,
    StringLit,
    TextTest,
    WildcardTest,
    free_variables,
)
from repro.xquery.parser import QueryParseError, parse_query


class TestCoreForms:
    def test_empty(self):
        assert parse_query("()") == Empty()

    def test_string(self):
        assert parse_query('"hello"') == StringLit("hello")
        assert parse_query("'hi'") == StringLit("hi")

    def test_sequence(self):
        q = parse_query('"a", "b"')
        assert q == Concat(StringLit("a"), StringLit("b"))

    def test_explicit_step(self):
        q = parse_query("$x/child::a")
        assert q == Step("$x", Axis.CHILD, NameTest("a"))

    def test_for(self):
        q = parse_query("for $x in $y/child::a return $x/child::b")
        assert isinstance(q, For)
        assert q.var == "$x"

    def test_let(self):
        q = parse_query("let $x := $y/child::a return $x/child::b")
        assert isinstance(q, Let)

    def test_if(self):
        q = parse_query('if ($x/child::a) then "y" else "n"')
        assert isinstance(q, If)
        assert q.then == StringLit("y")

    def test_element_empty(self):
        assert parse_query("<a/>") == Element("a", Empty())

    def test_element_with_text(self):
        assert parse_query("<a>hi</a>") == Element("a", StringLit("hi"))

    def test_element_nested(self):
        q = parse_query("<a><b/><c/></a>")
        assert q == Element("a", Concat(Element("b", Empty()),
                                        Element("c", Empty())))

    def test_element_enclosed_expr(self):
        q = parse_query("<a>{$x/child::b}</a>")
        assert q == Element("a", Step("$x", Axis.CHILD, NameTest("b")))


class TestPathDesugaring:
    def test_bare_variable(self):
        assert parse_query("$x") == Step("$x", Axis.SELF, NodeKindTest())

    def test_absolute_first_step_is_self(self):
        q = parse_query("/site")
        assert q == Step(ROOT_VAR, Axis.SELF, NameTest("site"))

    def test_two_step_path_nests_for(self):
        q = parse_query("/site/people")
        assert isinstance(q, For)
        assert q.source == Step(ROOT_VAR, Axis.SELF, NameTest("site"))
        assert isinstance(q.body, Step)
        assert q.body.axis is Axis.CHILD
        assert q.body.test == NameTest("people")

    def test_double_slash_encoding(self):
        """// = /descendant-or-self::node()/child::phi (the paper)."""
        q = parse_query("//a")
        assert isinstance(q, For)
        assert q.source == Step(ROOT_VAR, Axis.DESCENDANT_OR_SELF,
                                NodeKindTest())
        assert q.body == Step(q.var, Axis.CHILD, NameTest("a"))

    def test_relative_step_from_variable(self):
        q = parse_query("$x/a")
        assert q == Step("$x", Axis.CHILD, NameTest("a"))

    def test_variable_double_slash(self):
        q = parse_query("$x//b")
        assert isinstance(q, For)
        assert q.source.axis is Axis.DESCENDANT_OR_SELF

    def test_dot_and_dotdot(self):
        assert parse_query("$x/.") == Step("$x", Axis.SELF, NodeKindTest())
        assert parse_query("$x/..") == Step("$x", Axis.PARENT,
                                            NodeKindTest())

    def test_explicit_descendant_from_root(self):
        q = parse_query("/descendant::b")
        assert q == Step(ROOT_VAR, Axis.DESCENDANT, NameTest("b"))

    def test_wildcard(self):
        q = parse_query("$x/*")
        assert q == Step("$x", Axis.CHILD, WildcardTest())

    def test_text_test(self):
        q = parse_query("$x/text()")
        assert q == Step("$x", Axis.CHILD, TextTest())

    def test_following_encoding(self):
        """Footnote 3: ancestor-or-self / following-sibling /
        descendant-or-self."""
        q = parse_query("$x/following::a")
        assert isinstance(q, For)
        assert q.source.axis is Axis.ANCESTOR_OR_SELF
        inner = q.body
        assert inner.source.axis is Axis.FOLLOWING_SIBLING
        assert inner.body.axis is Axis.DESCENDANT_OR_SELF
        assert inner.body.test == NameTest("a")

    def test_preceding_encoding(self):
        q = parse_query("$x/preceding::a")
        assert q.body.source.axis is Axis.PRECEDING_SIBLING

    def test_attribute_axis_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("$x/attribute::id")

    def test_parenthesized_path_continuation(self):
        q = parse_query("($x/a, $x/b)/c")
        assert isinstance(q, For)
        assert isinstance(q.source, Concat)


class TestPredicates:
    def test_existence_predicate(self):
        q = parse_query("$x/a[b]")
        assert isinstance(q, For)
        body = q.body
        assert isinstance(body, If)
        assert body.cond == Step(q.var, Axis.CHILD, NameTest("b"))
        assert body.then == Step(q.var, Axis.SELF, NodeKindTest())
        assert body.orelse == Empty()

    def test_or_predicate_is_sequence(self):
        q = parse_query("$x/a[b or c]")
        assert isinstance(q.body.cond, Concat)

    def test_and_predicate_nests_if(self):
        q = parse_query("$x/a[b and c]")
        cond = q.body.cond
        assert isinstance(cond, If)
        assert cond.orelse == Empty()

    def test_not_predicate_swaps_branches(self):
        q = parse_query("$x/a[not(b)]")
        cond = q.body.cond
        assert isinstance(cond, If)
        assert cond.then == Empty()
        assert cond.orelse == StringLit("true")

    def test_axis_in_predicate(self):
        q = parse_query("$x/a[descendant::k]")
        assert q.body.cond.axis is Axis.DESCENDANT

    def test_absolute_path_in_predicate(self):
        q = parse_query("$x/a[/site/b]")
        cond = q.body.cond
        assert isinstance(cond, For)
        assert cond.source.var == ROOT_VAR

    def test_top_level_not(self):
        q = parse_query("not($x/a)")
        assert isinstance(q, If)
        assert q.then == Empty()


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(QueryParseError):
            parse_query("$x/a extra")

    def test_unterminated_string(self):
        with pytest.raises(QueryParseError):
            parse_query('"open')

    def test_missing_return(self):
        with pytest.raises(QueryParseError):
            parse_query("for $x in $y/a")

    def test_bare_name_is_not_a_path(self):
        with pytest.raises(QueryParseError):
            parse_query("site/people")

    def test_mismatched_constructor(self):
        with pytest.raises(QueryParseError):
            parse_query("<a></b>")


class TestFreeVariables:
    def test_quasi_closed(self):
        q = parse_query("//a//c")
        assert free_variables(q) == {ROOT_VAR}

    def test_for_binds(self):
        q = parse_query("for $x in $y/a return $x/b")
        assert free_variables(q) == {"$y"}

    def test_fresh_variables_do_not_leak(self):
        q = parse_query("/site/people/person[phone or homepage]/name")
        assert free_variables(q) == {ROOT_VAR}
