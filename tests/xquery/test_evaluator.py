"""Dynamic query semantics over stores."""

import pytest

from repro.xmldm import parse_xml, value_equivalent
from repro.xquery import (
    ROOT_VAR,
    EvaluationError,
    evaluate_query,
    parse_query,
)


def run(query_text: str, tree):
    return evaluate_query(
        parse_query(query_text), tree.store, {ROOT_VAR: [tree.root]}
    )


def tags(tree, locs):
    return [tree.store.typ(loc) for loc in locs]


@pytest.fixture()
def doc():
    return parse_xml(
        "<doc>"
        "<a><c>one</c></a>"
        "<a><c>two</c></a>"
        "<b><c>three</c></b>"
        "<a><c>four</c></a>"
        "</doc>"
    )


class TestAxes:
    def test_child(self, doc):
        assert tags(doc, run("/doc/a", doc)) == ["a", "a", "a"]

    def test_child_name_filter(self, doc):
        assert tags(doc, run("/doc/b", doc)) == ["b"]

    def test_self_mismatch_is_empty(self, doc):
        assert run("/nope", doc) == []

    def test_descendant(self, doc):
        result = run("/doc/descendant::c", doc)
        assert tags(doc, result) == ["c", "c", "c", "c"]

    def test_descendant_or_self(self, doc):
        result = run("/descendant-or-self::node()", doc)
        assert len(result) == doc.size()
        assert result[0] == doc.root

    def test_parent(self, doc):
        result = run("/doc/a/c/parent::a", doc)
        assert tags(doc, result) == ["a", "a", "a"]

    def test_parent_of_root_empty(self, doc):
        assert run("/doc/parent::node()", doc) == []

    def test_ancestor(self, doc):
        result = run("/doc/a/c/ancestor::node()", doc)
        # Each of the three a/c nodes contributes doc and its a parent.
        assert tags(doc, result) == ["doc", "a"] * 3

    def test_ancestor_or_self(self, doc):
        result = run("/doc/b/ancestor-or-self::node()", doc)
        assert tags(doc, result) == ["doc", "b"]

    def test_following_sibling(self, doc):
        result = run("/doc/b/following-sibling::node()", doc)
        assert tags(doc, result) == ["a"]

    def test_preceding_sibling(self, doc):
        result = run("/doc/b/preceding-sibling::node()", doc)
        assert tags(doc, result) == ["a", "a"]

    def test_following_encoded(self, doc):
        result = run("/doc/b/following::c", doc)
        assert tags(doc, result) == ["c"]

    def test_text_test(self, doc):
        result = run("/doc/a/c/text()", doc)
        values = [doc.store.text(loc) for loc in result]
        assert values == ["one", "two", "four"]

    def test_wildcard_excludes_text(self, doc):
        result = run("/doc/a/*", doc)
        assert tags(doc, result) == ["c", "c", "c"]

    def test_node_includes_text(self, doc):
        result = run("/doc/a/c/node()", doc)
        assert all(doc.store.is_text(loc) for loc in result)


class TestCompound:
    def test_double_slash(self, doc):
        assert tags(doc, run("//c", doc)) == ["c"] * 4

    def test_paper_q1(self, doc):
        assert len(run("//a//c", doc)) == 3

    def test_sequence_concat(self, doc):
        result = run("(/doc/b, /doc/a)", doc)
        assert tags(doc, result) == ["b", "a", "a", "a"]

    def test_if_then_else(self, doc):
        assert tags(doc, run("if (/doc/b) then /doc/a else ()", doc)) == [
            "a", "a", "a"
        ]
        assert run("if (/doc/z) then /doc/a else ()", doc) == []

    def test_let_binds_sequence(self, doc):
        result = run("let $x := /doc/a return ($x/c, $x/c)", doc)
        assert len(result) == 6

    def test_for_iterates_in_order(self, doc):
        result = run("for $x in /doc/a return $x/c/text()", doc)
        assert [doc.store.text(l) for l in result] == ["one", "two", "four"]

    def test_predicate_filters(self, doc):
        result = run("/doc/a[c]", doc)
        assert len(result) == 3
        assert run("/doc/a[z]", doc) == []

    def test_not_predicate(self, doc):
        assert len(run("/doc/a[not(z)]", doc)) == 3
        assert run("/doc/a[not(c)]", doc) == []


class TestConstruction:
    def test_string_literal_makes_text_node(self, doc):
        (loc,) = run('"hi"', doc)
        assert doc.store.text(loc) == "hi"

    def test_element_copies_content(self, doc):
        (loc,) = run("<wrap>{/doc/b}</wrap>", doc)
        store = doc.store
        assert store.tag(loc) == "wrap"
        (copy,) = store.children(loc)
        original = run("/doc/b", doc)[0]
        assert copy != original
        assert value_equivalent(store, copy, store, original)

    def test_construction_does_not_mutate_input(self, doc):
        before = doc.size()
        run("<wrap>{/doc/a}</wrap>", doc)
        # New nodes were allocated, but the original tree is unchanged.
        assert doc.size() == before
        assert tags(doc, run("/doc/a", doc)) == ["a", "a", "a"]

    def test_nested_construction(self, doc):
        (loc,) = run("<r1><r2>{/doc/b/c/text()}</r2></r1>", doc)
        store = doc.store
        (r2,) = store.children(loc)
        assert store.tag(r2) == "r2"
        (t,) = store.children(r2)
        assert store.text(t) == "three"


class TestErrors:
    def test_unbound_variable(self, doc):
        with pytest.raises(EvaluationError):
            evaluate_query(parse_query("$nope/a"), doc.store, {})
