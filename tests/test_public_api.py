"""The package's public API surface (what README/examples rely on)."""

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_snippet(self):
        """The README quickstart, verbatim."""
        dtd = repro.DTD.from_dict(
            "doc", {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"}
        )
        report = repro.analyze("//a//c", "delete //b//c", dtd)
        assert report.independent

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_end_to_end_workflow(self):
        """Parse, validate, query, statically analyze, update, re-query."""
        dtd = repro.bib_dtd()
        tree = repro.parse_xml(
            "<bib><book><title>t</title><author><last>l</last>"
            "<first>f</first></author><publisher>p</publisher>"
            "<price>9</price></book></bib>"
        )
        repro.validate(tree, dtd)
        query = repro.parse_query("//title")
        update = repro.parse_update(
            "for $x in //book return insert <author><last>x</last>"
            "<first>y</first></author> into $x"
        )
        report = repro.analyze(query, update, dtd)
        assert report.independent

        before = repro.evaluate_query(
            query, tree.store, {repro.ROOT_VAR: [tree.root]}
        )
        repro.apply_update_to_root(update, tree.store, tree.root)
        after = repro.evaluate_query(
            query, tree.store, {repro.ROOT_VAR: [tree.root]}
        )
        from repro.xmldm import sequences_equivalent

        assert sequences_equivalent(tree.store, before, tree.store, after)

    def test_api_facade_exports_resolve(self):
        """Every ``repro.api`` name resolves and aliases its home."""
        import repro.analysis.engine
        import repro.api
        import repro.storage

        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name
        assert repro.api.AnalysisEngine is repro.analysis.engine.AnalysisEngine
        assert repro.api.open_store is repro.storage.open_store
        assert repro.api.analyze is repro.analyze
        assert repro.api.DTD is repro.DTD

    def test_api_facade_quickstart(self):
        """The facade docstring's embedding example, condensed."""
        from repro.api import DTD, analyze, engine_for, open_store

        dtd = DTD.from_dict(
            "doc", {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"}
        )
        assert analyze("//a//c", "delete //b//c", dtd).independent
        with open_store("memory://") as backend:
            engine = engine_for(dtd)
            engine.attach_store(backend)
            assert engine.analyze_pair("//a//c", "delete //b//c").independent

    def test_baseline_and_dynamic_exports(self):
        dtd = repro.paper_doc_dtd()
        assert not repro.baseline_is_independent(
            "//a//c", "delete //b//c", dtd
        )
        verdict = repro.dynamic_independent_generated(
            "//a//c", "delete //b//c", dtd, documents=3, target_bytes=300
        )
        assert verdict.independent
