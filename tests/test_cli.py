"""CLI subcommands (exercised in-process)."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_independent_pair_exit_zero(self, capsys):
        code = main([
            "analyze", "--builtin", "paper-doc",
            "--query", "//a//c", "--update", "delete //b//c",
        ])
        assert code == 0
        assert "independent" in capsys.readouterr().out

    def test_dependent_pair_exit_one(self, capsys):
        code = main([
            "analyze", "--builtin", "paper-doc",
            "--query", "//a//c", "--update", "delete //a//c",
        ])
        assert code == 1

    def test_explain_output(self, capsys):
        main([
            "analyze", "--builtin", "paper-doc", "--explain",
            "--query", "//a//c", "--update", "delete //b//c",
        ])
        out = capsys.readouterr().out
        assert "INDEPENDENT" in out
        assert "doc.a.c" in out
        assert "doc.b.c" in out

    def test_types_flag(self, capsys):
        main([
            "analyze", "--builtin", "paper-doc", "--types",
            "--query", "//a//c", "--update", "delete //b//c",
        ])
        out = capsys.readouterr().out
        assert "type baseline" in out
        assert "dependent" in out

    def test_k_override(self, capsys):
        code = main([
            "analyze", "--builtin", "paper-d1", "--k", "4",
            "--query", "/descendant::b",
            "--update", "delete /descendant::c",
        ])
        assert code == 1

    def test_missing_schema_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--query", "//a", "--update", "delete //b"])


class TestFileCommands:
    @pytest.fixture()
    def dtd_file(self, tmp_path):
        path = tmp_path / "schema.dtd"
        path.write_text(
            "<!ELEMENT doc (a | b)*>\n<!ELEMENT a (c)>\n"
            "<!ELEMENT b (c)>\n<!ELEMENT c EMPTY>\n"
        )
        return str(path)

    def test_generate_and_validate(self, dtd_file, tmp_path, capsys):
        out_file = str(tmp_path / "doc.xml")
        code = main([
            "generate", "--dtd", dtd_file, "--root", "doc",
            "--bytes", "400", "--seed", "3", "--out", out_file,
        ])
        assert code == 0
        code = main(["validate", "--dtd", dtd_file, "--root", "doc",
                     out_file])
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_rejects_invalid(self, dtd_file, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<doc><a/></doc>")  # a requires a c child
        code = main(["validate", "--dtd", dtd_file, "--root", "doc",
                     str(bad)])
        assert code == 1
        assert "INVALID" in capsys.readouterr().out

    def test_infer_dtd(self, tmp_path, capsys):
        doc = tmp_path / "d.xml"
        doc.write_text("<doc><a><c/></a><b><c/></b></doc>")
        code = main(["infer-dtd", str(doc)])
        assert code == 0
        out = capsys.readouterr().out
        assert "<!ELEMENT doc" in out
        assert "<!ELEMENT c EMPTY>" in out

    def test_dtd_file_analysis(self, dtd_file, capsys):
        code = main([
            "analyze", "--dtd", dtd_file, "--root", "doc",
            "--query", "//a//c", "--update", "delete //b//c",
        ])
        assert code == 0


class TestFuzz:
    def test_small_campaign_exit_zero_and_json(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main([
            "fuzz", "--count", "16", "--seed", "0",
            "--queries", "2", "--updates", "2",
            "--docs", "2", "--doc-bytes", "300",
            "--json", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzz campaign" in out
        assert "precision vs oracle" in out

        import json

        data = json.loads(report_path.read_text(encoding="utf-8"))
        assert data["pairs"] >= 16
        assert data["violations"]["soundness"] == 0

    def test_corpus_dir_stays_empty_without_violations(self, tmp_path,
                                                       capsys):
        corpus = tmp_path / "corpus"
        code = main([
            "fuzz", "--count", "8", "--seed", "3",
            "--queries", "2", "--updates", "2",
            "--docs", "2", "--doc-bytes", "300",
            "--corpus-dir", str(corpus),
        ])
        assert code == 0
        assert not list(corpus.glob("*.json")) if corpus.exists() else True


class TestExplainModule:
    def test_explain_dependent(self):
        from repro.analysis.explain import explain
        from repro.schema import paper_doc_dtd

        text = explain("//a//c", "delete //a//c", paper_doc_dtd())
        assert "DEPENDENT" in text
        assert "return-update" in text

    def test_explain_multiplicity(self):
        from repro.analysis.explain import explain_multiplicity
        from repro.schema import paper_d1_dtd
        from repro.xquery.parser import parse_query

        text = explain_multiplicity(
            parse_query("/descendant::b"), paper_d1_dtd()
        )
        assert "k = 1" in text
        assert "1 recursive" in text

    def test_explain_handles_huge_chain_sets(self):
        from repro.analysis.explain import explain
        from repro.bench.rbench import recursive_schema

        text = explain("/descendant::node()",
                       "delete /descendant::node()",
                       recursive_schema(5))
        assert "DEPENDENT" in text


class TestParserMatchesConfigs:
    """Argparse smoke tests: the CLI surface cannot drift from the
    serve/loadgen config dataclasses or from its own help text."""

    def test_serve_defaults_match_serveconfig(self):
        from repro.cli import build_parser
        from repro.serve.server import ServeConfig

        args = build_parser().parse_args(["serve"])
        config = ServeConfig()
        assert args.host == config.host
        assert args.port == config.port
        assert args.store == config.store_path
        assert args.doc_store == config.doc_store_path
        assert args.window / 1e3 == config.batch_window
        assert args.max_batch == config.max_batch
        assert args.mode == config.analysis_mode
        assert args.max_schemas == config.max_schemas
        assert args.max_documents == config.max_documents
        assert args.pair_cache == config.pair_cache_size
        assert args.shards == config.shards

    def test_loadgen_defaults_match_loadgenconfig(self):
        from repro.cli import build_parser
        from repro.serve.loadgen import LoadgenConfig

        args = build_parser().parse_args(["loadgen"])
        config = LoadgenConfig()
        assert args.host == config.host
        assert args.port == config.port
        # --schema unset falls through to LoadgenConfig's own default
        # (the CLI never hardcodes a schema name).
        assert args.schema is None
        assert args.source == config.source
        assert args.queries == config.n_queries
        assert args.updates == config.n_updates
        assert args.clients == config.clients
        assert args.requests == config.requests
        assert args.seed == config.seed
        assert args.shards is None

    def test_serve_help_quotes_real_defaults(self):
        """The epilog and flag help must carry the live default values
        (the PR 3 -> PR 4 drift this guards against)."""
        from repro.cli import build_parser
        from repro.serve.server import ServeConfig

        parser = build_parser()
        serve_parser = parser._subparsers._group_actions[0] \
            .choices["serve"]
        text = serve_parser.format_help()
        config = ServeConfig()
        assert f"max-documents {config.max_documents}" in text
        assert f"max-batch {config.max_batch}" in text
        assert f"shards {config.shards}" in text
        assert "docs/PROTOCOL.md" in text

    def test_loadgen_expect_coalescing_semantics_documented(self):
        """--expect-coalescing requires coalesced_requests > 0, not
        just batches > 0; the help text must say so."""
        from repro.cli import build_parser

        loadgen_parser = build_parser()._subparsers \
            ._group_actions[0].choices["loadgen"]
        text = loadgen_parser.format_help()
        assert "coalesced_requests" in text
        assert "batches > 0" in text

    def test_loadgen_schema_repeatable(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["loadgen", "--schema", "xmark", "--schema", "gen:11"]
        )
        assert args.schema == ["xmark", "gen:11"]

    def test_serve_bench_shard_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve-bench", "--shards", "3"])
        assert args.shards == 3
        assert build_parser().parse_args(["serve-bench"]).shards == 2


class TestLoadCommand:
    """`repro load`: streaming (projected) loads from the CLI."""

    @pytest.fixture()
    def xmark_file(self, tmp_path):
        from repro.schema import xmark_dtd
        from repro.xmldm import generate_document, serialize

        tree = generate_document(xmark_dtd(), 60_000, seed=9)
        path = tmp_path / "doc.xml"
        path.write_text(serialize(tree.store, tree.root))
        return str(path)

    def test_full_load_reports_counts(self, xmark_file, capsys):
        code = main(["load", xmark_file, "--builtin", "xmark"])
        assert code == 0
        out = capsys.readouterr().out
        assert "kept" in out and "100.0%" in out

    def test_projected_load_keeps_fewer(self, xmark_file, capsys):
        code = main([
            "load", xmark_file, "--builtin", "xmark",
            "--project", "//emailaddress",
            "--project", "/site/people/person/name",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[projected]" in out
        assert "skipped" in out

    def test_load_persists_into_docstore(self, xmark_file, tmp_path,
                                         capsys):
        from repro.docstore.backend import DocumentBackend

        db = str(tmp_path / "docs.sqlite")
        code = main([
            "load", xmark_file, "--builtin", "xmark",
            "--project", "//emailaddress",
            "--docstore", db, "--doc", "cli-doc",
        ])
        assert code == 0
        assert "persisted" in capsys.readouterr().out
        with DocumentBackend(db) as backend:
            stored = backend.describe("cli-doc")
            assert stored is not None
            # Same meta shape as the server's persistence, so a served
            # reload can check projection coverage.
            assert stored.meta == {
                "projected": True,
                "project_for": ["//emailaddress"],
            }
            loaded, _ = backend.load("cli-doc")
            assert loaded.size() == stored.nodes

    def test_load_store_url_persists_identically(self, xmark_file,
                                                 tmp_path, capsys):
        """The deprecated --docstore spelling and the store-URL
        spelling write byte-identical node tables (the URL database
        additionally carries the unified verdict facet)."""
        import sqlite3
        import warnings

        legacy_db = str(tmp_path / "legacy.sqlite")
        url_db = str(tmp_path / "unified.sqlite")
        with pytest.warns(DeprecationWarning, match="--docstore"):
            assert main([
                "load", xmark_file, "--builtin", "xmark",
                "--docstore", legacy_db, "--doc", "d",
            ]) == 0
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main([
                "load", xmark_file, "--builtin", "xmark",
                "--store", f"sqlite:///{url_db}", "--doc", "d",
            ]) == 0
        out = capsys.readouterr().out
        assert f"sqlite:///{url_db}" in out

        def rows(path):
            with sqlite3.connect(path) as conn:
                return conn.execute(
                    "SELECT loc, parent, level, size, tag, text "
                    "FROM nodes WHERE doc = 'd' ORDER BY loc"
                ).fetchall()

        legacy_rows = rows(legacy_db)
        assert legacy_rows and legacy_rows == rows(url_db)

    def test_docstore_bench_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["docstore-bench"])
        assert args.bytes == 4_500_000
        assert args.seed == 7
        assert args.repeats == 3


class TestExplainCommand:
    """`repro explain`: plan rendering over a persisted document,
    without a serve loop."""

    @pytest.fixture()
    def store_url(self, tmp_path):
        xml = tmp_path / "bib.xml"
        xml.write_text(
            "<bib><book><title>a</title><author>x</author></book>"
            "<book><title>b</title></book></bib>"
        )
        url = f"sqlite:///{tmp_path / 'docs.sqlite'}"
        assert main(["load", str(xml), "--builtin", "bib",
                     "--store", url, "--doc", "d"]) == 0
        return url

    def test_pushdown_plan_carries_steps_and_sql(self, store_url,
                                                 capsys):
        assert main(["explain", "//title",
                     "--store", store_url, "--doc", "d"]) == 0
        out = capsys.readouterr().out
        assert "pushdown: compiled" in out
        assert "descendant-child::name(title)" in out
        assert "SELECT" in out
        assert "answer: pushdown" in out
        assert "count = 2" in out

    def test_ineligible_query_falls_back_with_a_reason(self, store_url,
                                                       capsys):
        assert main(["explain", "for $x in //title return <t>n</t>",
                     "--store", store_url, "--doc", "d"]) == 0
        out = capsys.readouterr().out
        assert "pushdown: ineligible" in out
        assert "reason = non-step-source" in out
        assert "answer: fallback" in out

    def test_missing_document_errors(self, store_url):
        with pytest.raises(SystemExit, match="not persisted"):
            main(["explain", "//title", "--store", store_url,
                  "--doc", "nope"])

    def test_unparsable_query_errors(self, store_url):
        with pytest.raises(SystemExit, match="does not parse"):
            main(["explain", "((", "--store", store_url, "--doc", "d"])


class TestMetricsCommand:
    """`repro metrics`: flag surface and address validation (the live
    scrape paths are covered in tests/serve/test_observability.py)."""

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["metrics", "127.0.0.1:7700"])
        assert args.timeout == 5.0
        assert args.raw is False

    def test_malformed_address_errors(self):
        with pytest.raises(SystemExit, match="HOST:PORT"):
            main(["metrics", "not-an-address"])


class TestStoreURLs:
    """Deprecation hygiene for the unified store-URL flags: old
    spellings warn (once, at the CLI layer only) and resolve to the
    same backends as their URL replacements."""

    @pytest.fixture()
    def serve_stub(self, monkeypatch):
        """Stub the blocking serve loop so `main(["serve", ...])`
        returns after flag resolution; yields the captured configs."""
        import asyncio

        configs = []

        async def run_service(config, ready=None):
            configs.append(config)

        monkeypatch.setattr("repro.serve.server.run_service",
                            run_service)
        monkeypatch.setattr(asyncio, "run",
                            lambda coro: asyncio.new_event_loop()
                            .run_until_complete(coro))
        return configs

    def test_serve_plain_store_path_warns(self, serve_stub, capsys):
        with pytest.warns(DeprecationWarning,
                          match="plain-path --store"):
            assert main(["serve", "--store", "verdicts.db"]) == 0
        assert serve_stub[0].store_path == "verdicts.db"

    def test_serve_doc_store_flag_warns(self, serve_stub, capsys):
        with pytest.warns(DeprecationWarning, match="--doc-store"):
            assert main(["serve", "--doc-store", "docs.db"]) == 0
        assert serve_stub[0].doc_store_path == "docs.db"

    def test_serve_store_url_never_warns(self, serve_stub, capsys):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main([
                "serve", "--store", "sqlite:///verdicts.db",
            ]) == 0
        assert serve_stub[0].store_path == "sqlite:///verdicts.db"

    def test_programmatic_config_never_warns(self):
        """Only the CLI warns; building a ServeConfig with legacy
        values directly stays silent (libraries must not nag)."""
        import warnings

        from repro.serve.server import ServeConfig
        from repro.storage import serve_storage_plan

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = ServeConfig(store_path="verdicts.db",
                                 doc_store_path="docs.db")
            serve_storage_plan(config.store_path,
                               config.doc_store_path)

    def test_old_and_new_spellings_resolve_identically(self):
        """The deprecated flags and their URL replacements map to the
        same backend specs (so behavior cannot drift apart)."""
        from repro.storage import serve_storage_plan

        legacy = serve_storage_plan("verdicts.db")
        unified = serve_storage_plan("sqlite:///verdicts.db")
        assert legacy.verdicts == unified.verdicts
        # ... except that only the URL also persists documents:
        assert legacy.documents is None
        assert unified.documents == unified.verdicts

        legacy_docs = serve_storage_plan(":memory:", "docs.db")
        unified_docs = serve_storage_plan("sqlite:///docs.db")
        assert legacy_docs.documents == unified_docs.documents
