"""The exposition output obeys the Prometheus text-format grammar.

Rather than spot-checking a few lines, ``_validate_exposition`` parses
the whole rendering: every sample line must belong to a ``# TYPE``-
declared family, histogram bucket series must be cumulative
(monotonically non-decreasing in ``le`` order) and end in a ``+Inf``
bucket equal to ``<name>_count``, and families must appear in sorted
order.  The same validator is reused by the wire-level tests.
"""

from __future__ import annotations

import re

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.export import parse_exposition, render
from repro.obs.metrics import MetricsRegistry, histogram_quantile

SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})? (?P<value>\S+)$"
)


def validate_exposition(text: str) -> dict[str, list]:
    """Assert exposition grammar; returns samples grouped by family."""
    families: dict[str, dict] = {}
    samples: dict[str, list] = {}
    current = None
    for line in text.splitlines():
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"help": True, "type": None}
            if current is not None:
                assert name > current, (
                    f"families out of sorted order: {current} then {name}"
                )
            current = name
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name == current, "TYPE must follow its HELP"
            assert kind in ("counter", "gauge", "histogram")
            families[name]["type"] = kind
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"unparsable exposition line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = base if base in families else name
        assert family in families, f"sample for undeclared family {name}"
        kind = families[family]["type"]
        if kind == "histogram":
            assert name != family, (
                f"histogram {family} must expose only _bucket/_sum/_count"
            )
        float(match.group("value"))  # must parse as a number
        samples.setdefault(family, []).append(
            (name, match.group("labels") or "", match.group("value"))
        )
    for name, family in families.items():
        assert family["type"] is not None, f"{name} has HELP but no TYPE"
        _check_histogram(name, family["type"], samples.get(name, []))
    return samples


def _check_histogram(name: str, kind: str, rows: list) -> None:
    if kind != "histogram" or not rows:
        return  # a family with no children renders only HELP/TYPE
    series: dict[str, list] = {}
    counts: dict[str, int] = {}
    for sample_name, labels, value in rows:
        if sample_name == f"{name}_bucket":
            # `le` is always the last (appended) label on a bucket line.
            le = re.search(r'(?:\{|,)le="([^"]+)"\}', labels).group(1)
            base = re.sub(r'\{le="[^"]+"\}', "{}", labels)
            base = re.sub(r',le="[^"]+"', "", base)
            series.setdefault(base, []).append((le, int(value)))
        elif sample_name == f"{name}_count":
            counts[labels] = int(value)
    assert series, f"histogram {name} exposes no _bucket series"
    for base, buckets in series.items():
        assert buckets[-1][0] == "+Inf", (
            f"{name}{base} bucket series must end at le=+Inf"
        )
        bounds = [float(le) for le, _ in buckets[:-1]]
        assert bounds == sorted(bounds), (
            f"{name}{base} le bounds out of order"
        )
        cumulative = [count for _, count in buckets]
        assert cumulative == sorted(cumulative), (
            f"{name}{base} buckets are not cumulative"
        )
        # The +Inf bucket IS the count.
        key = "" if base == "{}" else base
        assert buckets[-1][1] == counts[key], (
            f"{name}{base} +Inf bucket != _count"
        )


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    hist = registry.histogram("repro_x_seconds", "latency", ("op",),
                              bounds=(0.001, 0.01, 0.1))
    for op, value in (("analyze", 0.0005), ("analyze", 0.05),
                      ("analyze", 5.0), ("stats", 0.002)):
        hist.labels(op=op).observe(value)
    registry.counter("repro_errs_total", "errors", ("code",)) \
        .labels(code='we"ird\n').inc(2)
    registry.gauge("repro_docs", "resident docs").set(3)
    return registry


def test_rendering_passes_grammar_validation():
    samples = validate_exposition(render(_sample_registry().snapshot()))
    assert set(samples) == {"repro_x_seconds", "repro_errs_total",
                            "repro_docs"}


def test_label_values_are_escaped():
    text = render(_sample_registry().snapshot())
    assert r'code="we\"ird\n"' in text
    assert "\nrepro_docs 3\n" in "\n" + text


def test_histogram_buckets_are_cumulative_with_inf_terminal():
    text = render(_sample_registry().snapshot())
    analyze = [line for line in text.splitlines()
               if line.startswith("repro_x_seconds_bucket")
               and 'op="analyze"' in line]
    values = [int(line.rsplit(" ", 1)[1]) for line in analyze]
    assert values == [1, 1, 2, 3]
    assert 'le="+Inf"' in analyze[-1]
    assert 'repro_x_seconds_count{op="analyze"} 3' in text


def test_empty_snapshot_renders_empty():
    assert render({"families": {}}) == ""


def test_parse_exposition_round_trips_a_rendered_snapshot():
    snapshot = _sample_registry().snapshot()
    parsed = parse_exposition(render(snapshot))
    assert set(parsed["families"]) == set(snapshot["families"])
    for name, family in snapshot["families"].items():
        back = parsed["families"][name]
        assert back["kind"] == family["kind"]
        assert set(back["children"]) == set(family["children"])
        for key, child in family["children"].items():
            if family["kind"] == "histogram":
                assert back["children"][key]["counts"] == child["counts"]
                assert back["children"][key]["count"] == child["count"]
                assert back["children"][key]["bounds"] == \
                    list(child["bounds"])
            else:
                assert back["children"][key]["value"] == child["value"]


def test_parsed_histograms_answer_quantiles_like_the_originals():
    registry = MetricsRegistry()
    family = registry.histogram("repro_q_seconds", "latency", ("op",))
    for value in (0.002, 0.004, 0.05, 0.3, 2.0):
        family.labels(op="analyze").observe(value)
    original = registry.snapshot()["families"]["repro_q_seconds"]
    parsed = parse_exposition(render(registry.snapshot()))
    child = parsed["families"]["repro_q_seconds"]["children"]['["analyze"]']
    for q in (0.0, 0.5, 0.99, 1.0):
        assert histogram_quantile(child, q) == histogram_quantile(
            original["children"]['["analyze"]'], q
        )


def test_parse_exposition_tolerates_untyped_and_junk_lines():
    parsed = parse_exposition(
        "# a free comment\n"
        "untyped_metric 7\n"
        "not a sample line at all ? !\n"
        "\n"
    )
    family = parsed["families"]["untyped_metric"]
    assert family["kind"] == "gauge"
    assert family["children"]["[]"]["value"] == 7.0


@given(values=st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
              allow_infinity=False),
    max_size=40,
))
def test_any_observation_stream_renders_valid_exposition(values):
    registry = MetricsRegistry()
    family = registry.histogram("repro_p_seconds", "property", ("op",))
    for i, value in enumerate(values):
        family.labels(op=("analyze", "stats")[i % 2]).observe(value)
    validate_exposition(render(registry.snapshot()))
