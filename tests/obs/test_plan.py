"""Plan-context lifecycle, decision recording, and rendering."""

from __future__ import annotations

from repro.obs.metrics import PLAN_DECISIONS_TOTAL
from repro.obs.plan import (
    INELIGIBILITY_REASONS,
    MAX_DECISIONS,
    PLAN_DECISIONS,
    PlanContext,
    clip,
    count_decision,
    current_plan,
    decision,
    finish_plan,
    render_plan,
    start_plan,
    using_plan,
)


def _count(layer: str, name: str) -> float:
    child = PLAN_DECISIONS_TOTAL.labels(layer=layer, decision=name)
    return child.value


def test_start_and_finish_install_the_current_plan():
    assert current_plan() is None
    plan = start_plan()
    assert current_plan() is plan
    finish_plan(plan)
    assert current_plan() is None


def test_decision_attaches_to_the_current_plan_and_counts():
    plan = start_plan()
    try:
        before = _count("engine", "computed")
        decision("engine", "computed", query="//a", universe="built")
        assert _count("engine", "computed") == before + 1
    finally:
        finish_plan(plan)
    assert plan.decisions == [{
        "layer": "engine",
        "decision": "computed",
        "detail": {"query": "//a", "universe": "built"},
    }]


def test_decision_without_a_plan_only_counts():
    assert current_plan() is None
    before = _count("answer", "pushdown")
    decision("answer", "pushdown", doc="d1")
    assert _count("answer", "pushdown") == before + 1


def test_explicit_plan_argument_wins_over_the_installed_one():
    installed = start_plan()
    explicit = PlanContext()
    try:
        decision("batcher", "matrix", explicit, flush=7)
    finally:
        finish_plan(installed)
    assert installed.decisions == []
    assert explicit.decisions[0]["detail"] == {"flush": 7}


def test_count_decision_clamps_unknown_labels_to_other():
    before_layer = _count("other", "other")
    count_decision("no-such-layer", "whatever")
    assert _count("other", "other") == before_layer + 1
    before_name = _count("engine", "other")
    count_decision("engine", "no-such-decision")
    assert _count("engine", "other") == before_name + 1


def test_vocabulary_layers_cover_the_serving_pipeline():
    assert set(PLAN_DECISIONS) == {
        "router", "batcher", "engine", "docstore", "pushdown", "answer",
    }
    assert set(INELIGIBILITY_REASONS) == {
        "non-step-source", "context-reuse", "unsupported-axis",
        "unsupported-test", "non-step-tail",
    }


def test_decision_cap_counts_dropped_records():
    plan = PlanContext()
    for i in range(MAX_DECISIONS + 5):
        plan.add("engine", "computed", i=i)
    assert len(plan.decisions) == MAX_DECISIONS
    report = plan.report()
    assert report["dropped"] == 5


def test_report_nests_an_inner_shard_plan():
    plan = PlanContext()
    plan.add("router", "alias", shard=1)
    inner = {"decisions": [{"layer": "answer", "decision": "pushdown"}],
             "total_ms": 1.0}
    report = plan.report(inner=inner)
    assert report["shard"] is inner
    assert report["total_ms"] >= 0.0
    # Without decisions or an inner plan, the report stays minimal.
    assert set(PlanContext().report()) == {"decisions", "total_ms"}


def test_using_plan_installs_and_restores():
    outer = start_plan()
    try:
        inner = PlanContext()
        with using_plan(inner):
            assert current_plan() is inner
            decision("engine", "store")
        assert current_plan() is outer
    finally:
        finish_plan(outer)
    assert inner.decisions[0]["decision"] == "store"
    assert outer.decisions == []


def test_clip_bounds_long_labels():
    assert clip("short") == "short"
    clipped = clip("x" * 500)
    assert len(clipped) == 200
    assert clipped.endswith("…")


def test_render_plan_indents_decisions_details_and_shards():
    plan = PlanContext()
    plan.add("router", "alias", shard=0)
    report = plan.report(inner={
        "decisions": [
            {"layer": "pushdown", "decision": "compiled",
             "detail": {"sql": "SELECT 1", "engine": "sql"}},
            {"layer": "answer", "decision": "pushdown"},
        ],
        "total_ms": 1.0,
        "dropped": 2,
    })
    text = render_plan(report)
    assert text.splitlines() == [
        "router: alias",
        "  shard = 0",
        "shard:",
        "  pushdown: compiled",
        "    engine = sql",
        "    sql = SELECT 1",
        "  answer: pushdown",
        "  (+2 decisions dropped)",
    ]
