"""Trace-context lifecycle, span attribution, and the slow-request log."""

from __future__ import annotations

import json

from repro.obs.tracing import (
    SPAN_NAMES,
    SlowRequestLog,
    TraceContext,
    current_trace,
    finish_trace,
    span,
    start_trace,
)


def test_start_and_finish_install_the_current_trace():
    assert current_trace() is None
    trace = start_trace("abc123")
    assert current_trace() is trace
    assert trace.trace_id == "abc123"
    finish_trace(trace)
    assert current_trace() is None


def test_generated_trace_ids_are_unique():
    a, b = TraceContext(), TraceContext()
    assert a.trace_id != b.trace_id


def test_module_level_span_attaches_to_current_trace():
    trace = start_trace()
    try:
        with span("engine"):
            pass
        with span("store"):
            pass
    finally:
        finish_trace(trace)
    names = [name for name, _ in trace.spans]
    assert names == ["engine", "store"]
    assert all(seconds >= 0.0 for _, seconds in trace.spans)


def test_span_is_a_noop_without_a_trace():
    with span("engine") as trace:
        assert trace is None


def test_report_merges_an_inner_shard_report():
    trace = TraceContext("router1")
    trace.add_span("router", 0.004)
    inner = {"trace": "w", "total_ms": 3.0,
             "spans": [{"name": "engine", "ms": 2.0}]}
    report = trace.report(inner=inner)
    assert report["trace"] == "router1"
    names = [entry["name"] for entry in report["spans"]]
    assert names == ["router", "shard", "engine"]
    by_name = {entry["name"]: entry["ms"] for entry in report["spans"]}
    assert by_name["shard"] == 3.0
    assert set(names) <= set(SPAN_NAMES)


def test_slow_log_threshold_ring_and_file(tmp_path):
    path = tmp_path / "slow.jsonl"
    log = SlowRequestLog(threshold_ms=5.0, path=str(path), capacity=2)
    fast = TraceContext("fast")
    assert log.record("analyze", fast, 1.0, ok=True) is None
    traces = [TraceContext(f"t{i}") for i in range(3)]
    for i, trace in enumerate(traces):
        trace.add_span("engine", 0.006)
        assert log.record("analyze", trace, 6.0 + i, ok=True)
    log.close()
    # The ring keeps only the most recent `capacity` entries...
    assert [entry["trace"] for entry in log.entries()] == ["t1", "t2"]
    entry = log.entries()[-1]
    assert entry["op"] == "analyze"
    assert entry["spans"]["engine"] == 6.0
    assert entry["ok"] is True
    # ... while the file kept every crossing as one JSON line each.
    lines = [json.loads(line) for line in
             path.read_text().strip().splitlines()]
    assert [line["trace"] for line in lines] == ["t0", "t1", "t2"]


def test_slow_log_disabled_by_default(tmp_path):
    log = SlowRequestLog()
    assert not log.enabled
    trace = TraceContext()
    assert log.record("analyze", trace, 1e6, ok=False) is None
    assert log.entries() == []


def test_slow_log_appends_across_restart(tmp_path):
    path = tmp_path / "slow.jsonl"

    def crossing(log, trace_id):
        trace = TraceContext(trace_id)
        assert log.record("analyze", trace, 10.0, ok=True)

    first = SlowRequestLog(threshold_ms=1.0, path=str(path))
    crossing(first, "before")
    first.close()
    # A restarted service reopens the same file in append mode: the
    # earlier session's crossings must survive.
    second = SlowRequestLog(threshold_ms=1.0, path=str(path))
    crossing(second, "after")
    second.close()
    lines = [json.loads(line) for line in
             path.read_text().strip().splitlines()]
    assert [line["trace"] for line in lines] == ["before", "after"]


def test_slow_log_close_is_idempotent(tmp_path):
    log = SlowRequestLog(threshold_ms=1.0,
                         path=str(tmp_path / "slow.jsonl"))
    trace = TraceContext("t")
    assert log.record("analyze", trace, 5.0, ok=True)
    log.close()
    log.close()  # a second close must not raise
    # Closing without ever recording (file never opened) is fine too.
    SlowRequestLog(threshold_ms=1.0,
                   path=str(tmp_path / "never.jsonl")).close()


def test_slow_ring_evicts_oldest_first():
    log = SlowRequestLog(threshold_ms=1.0, capacity=3)
    for i in range(5):
        assert log.record("analyze", TraceContext(f"t{i}"), 5.0, ok=True)
    # FIFO eviction: the ring holds the 3 most recent crossings, oldest
    # first within the window.
    assert [entry["trace"] for entry in log.entries()] == \
        ["t2", "t3", "t4"]


def test_slow_entries_carry_the_plan_when_given():
    log = SlowRequestLog(threshold_ms=1.0)
    plan = {"decisions": [{"layer": "answer", "decision": "pushdown"}],
            "total_ms": 5.0}
    assert log.record("doc.query", TraceContext("p"), 5.0, ok=True,
                      plan=plan)
    assert log.record("doc.query", TraceContext("q"), 5.0, ok=True)
    with_plan, without = log.entries()
    assert with_plan["plan"] == plan
    assert "plan" not in without
