"""Unit and property tests for the mergeable metrics registry.

The load-bearing property (the whole point of snapshot merging) is
checked with Hypothesis: splitting a sample stream across any number of
per-shard histograms and merging their snapshots must be
indistinguishable -- bucket counts, sum, and count -- from observing
the concatenated stream in one histogram.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
)


def test_counter_and_gauge_merge_by_summing():
    registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
    for registry, n in ((registry_a, 3), (registry_b, 4)):
        family = registry.counter("c_total", "help", ("op",))
        family.labels(op="analyze").inc(n)
        gauge = registry.gauge("g", "help")
        gauge.set(n)
    merged = merge_snapshots([registry_a.snapshot(),
                              registry_b.snapshot()])
    counter = merged["families"]["c_total"]["children"]['["analyze"]']
    assert counter["value"] == 7
    gauge = merged["families"]["g"]["children"]["[]"]
    assert gauge["value"] == 7


def test_histogram_bucketing_is_le_inclusive():
    histogram = Histogram((1.0, 2.0))
    for value in (0.5, 1.0, 1.5, 2.0, 99.0):
        histogram.observe(value)
    # le semantics: a sample equal to a bound lands in that bound's
    # bucket, and values above the last bound land in the overflow slot.
    assert histogram.counts == [2, 2, 1]
    assert histogram.count == 5
    assert histogram.sum == pytest.approx(104.0)


def test_family_label_schema_is_enforced():
    registry = MetricsRegistry()
    family = registry.counter("x_total", "help", ("op",))
    with pytest.raises(ValueError):
        family.labels()
    with pytest.raises(ValueError):
        family.labels(op="a", extra="b")
    with pytest.raises(ValueError):
        registry.gauge("x_total", "help")  # kind mismatch
    # Idempotent re-registration returns the same family.
    assert registry.counter("x_total", "help", ("op",)) is family


def test_merge_rejects_conflicting_schemas():
    registry_a, registry_b = MetricsRegistry(), MetricsRegistry()
    registry_a.counter("m", "help", ("op",)).labels(op="a").inc()
    registry_b.counter("m", "help", ("code",)).labels(code="b").inc()
    with pytest.raises(ValueError):
        merge_snapshots([registry_a.snapshot(), registry_b.snapshot()])


def test_quantile_interpolates_and_clamps():
    histogram = Histogram((1.0, 2.0, 4.0))
    for value in (0.5, 0.5, 1.5, 1.5, 3.0, 100.0):
        histogram.observe(value)
    child = histogram.data()
    # Median rank 3 (of 6) falls halfway through the (1, 2] bucket.
    assert histogram_quantile(child, 0.5) == pytest.approx(1.5)
    # The overflow bucket clamps to the last finite bound.
    assert histogram_quantile(child, 1.0) == pytest.approx(4.0)
    assert histogram_quantile({"bounds": [1.0], "counts": [0, 0],
                               "sum": 0.0, "count": 0}, 0.5) == 0.0


def test_quantile_of_an_empty_histogram_is_zero():
    child = {"bounds": [1.0, 2.0], "counts": [0, 0, 0],
             "sum": 0.0, "count": 0}
    for q in (0.0, 0.5, 1.0):
        assert histogram_quantile(child, q) == 0.0


def test_quantile_with_all_samples_in_the_first_bucket():
    histogram = Histogram((1.0, 2.0))
    for _ in range(5):
        histogram.observe(0.5)
    child = histogram.data()
    # Every quantile interpolates inside (0, 1]; q=0 is its lower edge.
    assert histogram_quantile(child, 0.0) == pytest.approx(0.0)
    assert histogram_quantile(child, 0.5) == pytest.approx(0.5)
    assert histogram_quantile(child, 1.0) == pytest.approx(1.0)


def test_quantile_with_all_samples_in_the_overflow_bucket():
    histogram = Histogram((1.0, 2.0))
    for _ in range(3):
        histogram.observe(99.0)
    child = histogram.data()
    # No finite upper edge to interpolate toward: clamp to the last
    # finite bound at every quantile.
    for q in (0.0, 0.5, 1.0):
        assert histogram_quantile(child, q) == pytest.approx(2.0)


def test_quantile_with_no_finite_bounds_at_all():
    child = {"bounds": [], "counts": [4], "sum": 8.0, "count": 4}
    assert histogram_quantile(child, 0.5) == 0.0


def test_quantile_q_zero_skips_empty_leading_buckets():
    histogram = Histogram((1.0, 2.0, 4.0))
    histogram.observe(3.0)
    child = histogram.data()
    # The first occupied bucket is (2, 4]; q=0 is its lower edge.
    assert histogram_quantile(child, 0.0) == pytest.approx(2.0)


def test_quantile_clamps_q_outside_the_unit_interval():
    histogram = Histogram((1.0,))
    histogram.observe(0.5)
    child = histogram.data()
    assert histogram_quantile(child, -3.0) == \
        histogram_quantile(child, 0.0)
    assert histogram_quantile(child, 7.0) == \
        histogram_quantile(child, 1.0)


#: Latency-like samples: non-negative, spanning below the first bound
#: to far beyond the last.
_samples = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
              allow_infinity=False),
    max_size=60,
)


@given(shards=st.lists(_samples, min_size=1, max_size=5))
def test_merged_shard_histograms_equal_one_histogram(shards):
    """merge(per-shard snapshots) == one histogram over all samples."""
    per_shard = []
    for samples in shards:
        registry = MetricsRegistry()
        family = registry.histogram("repro_h_seconds", "help", ("op",))
        for value in samples:
            family.labels(op="analyze").observe(value)
        per_shard.append(registry.snapshot())

    whole = MetricsRegistry()
    family = whole.histogram("repro_h_seconds", "help", ("op",))
    for samples in shards:
        for value in samples:
            family.labels(op="analyze").observe(value)

    merged = merge_snapshots(per_shard)
    merged_child = merged["families"]["repro_h_seconds"]["children"]
    whole_child = whole.snapshot()["families"]["repro_h_seconds"]["children"]
    assert merged_child.keys() == whole_child.keys()
    for key in whole_child:
        assert merged_child[key]["counts"] == whole_child[key]["counts"]
        assert merged_child[key]["count"] == whole_child[key]["count"]
        assert merged_child[key]["sum"] == pytest.approx(
            whole_child[key]["sum"]
        )


@given(samples=_samples)
def test_bucket_counts_always_total_to_count(samples):
    histogram = Histogram(DEFAULT_LATENCY_BOUNDS)
    for value in samples:
        histogram.observe(value)
    assert sum(histogram.counts) == histogram.count == len(samples)
