"""Persistent verdict store: round-trips, restarts, and warm-starts."""

from __future__ import annotations

from repro.analysis.engine import AnalysisEngine, PairVerdict
from repro.serve.store import VerdictStore


def _verdict(independent: bool = True) -> PairVerdict:
    return PairVerdict(independent=independent, k=3, k_query=1,
                       k_update=2, analysis_seconds=0.123)


class TestRoundTrip:
    def test_get_returns_none_on_miss(self):
        with VerdictStore() as store:
            assert store.get("d", 1, "q", "u") is None

    def test_put_then_get(self):
        with VerdictStore() as store:
            store.put("d", 3, "q", "u", _verdict())
            verdict = store.get("d", 3, "q", "u")
            assert verdict.independent is True
            assert (verdict.k, verdict.k_query, verdict.k_update) == (3, 1, 2)
            # Timing is not persisted: stored verdicts are free.
            assert verdict.analysis_seconds == 0.0

    def test_key_is_four_dimensional(self):
        with VerdictStore() as store:
            store.put("d", 3, "q", "u", _verdict(True))
            store.put("d", 4, "q", "u", _verdict(False))
            store.put("e", 3, "q", "u", _verdict(False))
            assert store.get("d", 3, "q", "u").independent
            assert not store.get("d", 4, "q", "u").independent
            assert not store.get("e", 3, "q", "u").independent
            assert store.get("d", 3, "q", "other") is None

    def test_count_and_stats(self):
        with VerdictStore() as store:
            store.put("d", 3, "q", "u", _verdict())
            store.put("d", 3, "q2", "u", _verdict())
            store.put("e", 3, "q", "u", _verdict())
            assert store.count() == 3
            assert store.count("d") == 2
            assert store.stats()["verdicts"] == 3

    def test_deferred_commits_once_and_nests(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        with VerdictStore(path) as store:
            with store.deferred():
                with store.deferred():
                    store.put("d", 3, "q", "u", _verdict())
                store.put("d", 3, "q2", "u", _verdict())
            assert store.count() == 2


class TestPersistence:
    def test_rows_survive_reopen(self, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        with VerdictStore(path) as store:
            store.put("d", 3, "q", "u", _verdict(False))
        with VerdictStore(path) as reopened:
            verdict = reopened.get("d", 3, "q", "u")
            assert verdict is not None
            assert not verdict.independent

    def test_close_is_idempotent(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts.sqlite"))
        store.close()
        store.close()


class TestEngineWarmStart:
    """The acceptance-criteria property: after a restart, a cold engine
    attached to the surviving store serves already-seen pairs without
    re-deriving inference tables (no universe is ever built)."""

    PAIRS = [
        ("//title", "delete //price"),
        ("//price", "delete //price"),
        ("/bib/book/author", "delete //editor"),
    ]

    def test_cold_engine_serves_from_store_without_universes(
            self, bib, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        with VerdictStore(path) as store:
            warm = AnalysisEngine(bib)
            warm.attach_store(store)
            expected = [
                warm.analyze_pair(q, u, collect_witnesses=False).independent
                for q, u in self.PAIRS
            ]
            assert warm.stats.store_writes == len(self.PAIRS)
            assert warm.stats.universes_built >= 1

        # "Restart": a brand-new engine, a reopened store file.
        with VerdictStore(path) as store:
            cold = AnalysisEngine(bib)
            cold.attach_store(store)
            served = [
                cold.analyze_pair(q, u, collect_witnesses=False).independent
                for q, u in self.PAIRS
            ]
            assert served == expected
            assert cold.stats.store_hits == len(self.PAIRS)
            assert cold.stats.universes_built == 0
            assert cold.stats.query_misses == 0
            assert cold.stats.update_misses == 0

    def test_store_hit_respects_explicit_k(self, bib, tmp_path):
        path = str(tmp_path / "verdicts.sqlite")
        with VerdictStore(path) as store:
            warm = AnalysisEngine(bib)
            warm.attach_store(store)
            derived = warm.analyze_pair("//title", "delete //price",
                                        collect_witnesses=False)
            # An explicit k equal to the derived one shares the row...
            cold = AnalysisEngine(bib)
            cold.attach_store(store)
            same = cold.analyze_pair("//title", "delete //price",
                                     k=derived.k, collect_witnesses=False)
            assert cold.stats.store_hits == 1
            assert same.independent == derived.independent
            # ...while a different k is a distinct verdict row.
            cold.analyze_pair("//title", "delete //price",
                              k=derived.k + 1, collect_witnesses=False)
            assert cold.stats.store_misses == 1

    def test_store_served_dependent_reports_keep_a_conflict_marker(
            self, bib):
        # A computed witness-free dependent report carries exactly one
        # witness-less Conflict; a store-served one must agree in
        # truthiness so `if report.conflicts:` consumers behave the
        # same on a warm restart.
        store = VerdictStore()
        warm = AnalysisEngine(bib)
        warm.attach_store(store)
        computed = warm.analyze_pair("//title", "delete //title",
                                     collect_witnesses=False)
        assert not computed.independent and computed.conflicts
        cold = AnalysisEngine(bib)
        cold.attach_store(store)
        served = cold.analyze_pair("//title", "delete //title",
                                   collect_witnesses=False)
        assert cold.stats.store_hits == 1
        assert not served.independent
        assert bool(served.conflicts) == bool(computed.conflicts)
        # Independent verdicts stay conflict-free either way.
        warm.analyze_pair("//title", "delete //price",
                          collect_witnesses=False)
        clean = cold.analyze_pair("//title", "delete //price",
                                  collect_witnesses=False)
        assert clean.independent and not clean.conflicts

    def test_witness_requests_bypass_the_store(self, bib):
        store = VerdictStore()
        engine = AnalysisEngine(bib)
        engine.attach_store(store)
        engine.analyze_pair("//title", "delete //title")
        assert engine.stats.store_hits == 0
        assert engine.stats.store_misses == 0
        assert store.count() == 0

    def test_store_backed_verdicts_match_fresh_engine(self, bib):
        store = VerdictStore()
        first = AnalysisEngine(bib)
        first.attach_store(store)
        second = AnalysisEngine(bib)  # no store: ground truth
        for query, update in self.PAIRS:
            a = first.analyze_pair(query, update, collect_witnesses=False)
            b = second.analyze_pair(query, update, collect_witnesses=False)
            assert (a.independent, a.k, a.k_query, a.k_update) == \
                (b.independent, b.k, b.k_query, b.k_update)
