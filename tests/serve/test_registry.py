"""Multi-tenant schema registry: aliases, LRU bounds, eviction."""

from __future__ import annotations

import pytest

from repro.schema import DTD
from repro.serve.registry import SchemaRegistry, UnknownSchemaError
from repro.serve.store import VerdictStore


def _distinct_schema(n: int) -> DTD:
    """Distinct digest per ``n``: alphabet ``{doc, t0..tn}``."""
    rules = {"doc": "(" + ", ".join(f"t{i}" for i in range(n + 1)) + ")"}
    for i in range(n + 1):
        rules[f"t{i}"] = "EMPTY"
    return DTD.from_dict("doc", rules)


class TestRegistration:
    def test_register_returns_digest_and_resolves(self):
        registry = SchemaRegistry()
        digest = registry.register(_distinct_schema(1), name="one")
        assert registry.resolve(digest) == digest
        assert registry.resolve("one") == digest
        assert registry.engine("one") is registry.engine(digest)

    def test_same_digest_reuses_engine(self):
        registry = SchemaRegistry()
        first = registry.register(_distinct_schema(1))
        second = registry.register(_distinct_schema(1))
        assert first == second
        assert len(registry) == 1
        assert registry.registrations == 1

    def test_builtins_materialize_lazily(self):
        registry = SchemaRegistry()
        assert len(registry) == 0
        engine = registry.engine("xmark")
        assert len(registry) == 1
        assert engine.schema.start == "site"

    def test_unknown_schema_raises(self):
        registry = SchemaRegistry()
        with pytest.raises(UnknownSchemaError):
            registry.resolve("nope")

    def test_store_attached_to_new_engines(self):
        store = VerdictStore()
        registry = SchemaRegistry(store=store)
        registry.register(_distinct_schema(1))
        digest = registry.resolve(
            registry.register(_distinct_schema(1))
        )
        assert registry.engine(digest).store is store


class TestLRU:
    def test_overflow_evicts_least_recently_used(self):
        registry = SchemaRegistry(max_schemas=2)
        first = registry.register(_distinct_schema(1))
        second = registry.register(_distinct_schema(2))
        registry.engine(first)          # touch: second becomes LRU
        registry.register(_distinct_schema(3))
        assert registry.resolve(first) == first
        with pytest.raises(UnknownSchemaError):
            registry.resolve(second)
        assert registry.evictions == 1

    def test_eviction_drops_aliases(self):
        registry = SchemaRegistry(max_schemas=1)
        registry.register(_distinct_schema(1), name="one")
        registry.register(_distinct_schema(2), name="two")
        with pytest.raises(UnknownSchemaError):
            registry.resolve("one")
        assert registry.resolve("two")

    def test_explicit_evict(self):
        registry = SchemaRegistry()
        digest = registry.register(_distinct_schema(1), name="one")
        assert registry.evict("one")
        with pytest.raises(UnknownSchemaError):
            registry.resolve(digest)
        assert not registry.evict("one")
        # Counted apart from capacity pressure, so /stats can tell an
        # operator whether max_schemas is actually too small.
        assert registry.explicit_evictions == 1
        assert registry.evictions == 0

    def test_evicting_unmaterialized_builtin_is_a_noop(self):
        # evict must not lazily register the builtin first: at the LRU
        # bound that would push an unrelated tenant schema out.
        registry = SchemaRegistry(max_schemas=1)
        tenant = registry.register(_distinct_schema(1))
        assert registry.evict("bib") is False
        assert registry.resolve(tenant) == tenant
        assert len(registry) == 1
        assert registry.evictions == 0
        assert registry.explicit_evictions == 0

    def test_evicted_schema_warm_starts_from_store(self):
        # Eviction costs RAM only: the store still has the verdicts.
        store = VerdictStore()
        registry = SchemaRegistry(store=store, max_schemas=1)
        digest = registry.register(_distinct_schema(1))
        registry.engine(digest).analyze_pair(
            "//t0", "delete //t1", collect_witnesses=False
        )
        assert store.count() == 1
        registry.register(_distinct_schema(2))     # evicts digest
        fresh = registry.register(_distinct_schema(1))
        assert fresh == digest
        engine = registry.engine(fresh)
        engine.analyze_pair("//t0", "delete //t1",
                            collect_witnesses=False)
        assert engine.stats.store_hits == 1
        assert engine.stats.universes_built == 0

    def test_pair_cache_size_propagates(self):
        registry = SchemaRegistry(pair_cache_size=2)
        digest = registry.register(_distinct_schema(1))
        assert registry.engine(digest).pair_cache_size == 2

    def test_describe_and_stats(self):
        registry = SchemaRegistry()
        registry.register(_distinct_schema(1), name="one")
        rows = registry.describe()
        assert len(rows) == 1
        assert rows[0]["names"] == ["one"]
        assert rows[0]["start"] == "doc"
        stats = registry.stats()
        assert stats["schemas"] == 1
        assert set(stats["engines"]) == {rows[0]["digest"]}
