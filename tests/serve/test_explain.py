"""Wire-level EXPLAIN: the ``explain`` envelope flag and plan reports.

Every layer decision the serving pipeline makes must be readable from
the opt-in ``plan`` response field: the batcher's execution shape, the
engine's verdict source, the docstore's load provenance, pushdown
compilation (or its ineligibility reason), and the answer path.  The
differential test at the bottom pins that a sharded service produces
the same decision sequence as the unsharded one, modulo the router's
own fold.
"""

from __future__ import annotations

import asyncio

from .util import ServiceClient, running_service

ANALYZE = dict(schema="bib", query="//title", update="delete //price")

DTD = """<!ELEMENT bib (book*)>
<!ELEMENT book (title, author*)>
<!ELEMENT title (#PCDATA)>
<!ELEMENT author (#PCDATA)>
"""
XML = ("<bib><book><title>a</title><author>x</author></book>"
       "<book><title>b</title></book></bib>")


def _decisions(plan: dict) -> list[tuple[str, str]]:
    return [(d["layer"], d["decision"]) for d in plan["decisions"]]


def _layer(plan: dict, layer: str) -> dict:
    matches = [d for d in plan["decisions"] if d["layer"] == layer]
    assert matches, f"no {layer!r} decision in {plan}"
    return matches[-1]


def test_explain_is_strictly_opt_in():
    async def run():
        async with running_service(preload=("bib",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                explained = await client.call("analyze", explain=True,
                                              **ANALYZE)
                plain = await client.call("analyze", **ANALYZE)
                off = await client.call("analyze", explain=False,
                                        **ANALYZE)
        return explained, plain, off

    explained, plain, off = asyncio.run(run())
    assert explained["ok"] and "plan" in explained
    # explain:false and an absent flag answer with the exact same
    # response shape as before the flag existed.
    assert "plan" not in plain
    assert "plan" not in off
    assert sorted(plain) == sorted(off)


def test_analyze_verdict_sources_are_distinguishable(tmp_path):
    """memo hit, store hit, and fresh computation all read differently."""
    store = f"sqlite:///{tmp_path}/verdicts.sqlite"

    async def run():
        async with running_service(
            preload=("bib",), store_path=store,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                computed = await client.call("analyze", explain=True,
                                             **ANALYZE)
                memo = await client.call("analyze", explain=True,
                                         **ANALYZE)
                # Dropping the warm engine forgets the pair memo but
                # not the persisted verdict: the next analyze must
                # read back from the store.
                assert (await client.call("schema.evict",
                                          schema="bib"))["evicted"]
                stored = await client.call("analyze", explain=True,
                                           **ANALYZE)
        return computed, memo, stored

    computed, memo, stored = asyncio.run(run())
    first = _layer(computed["plan"], "engine")
    assert first["decision"] == "computed"
    assert first["detail"]["universe"] == "built"
    assert first["detail"]["query"] == "//title"
    assert _layer(memo["plan"], "engine")["decision"] == "pair_memo"
    assert _layer(stored["plan"], "engine")["decision"] == "store"
    # All three rode the micro-batch admission queue.
    for response in (computed, memo, stored):
        batcher = _layer(response["plan"], "batcher")
        assert batcher["decision"] in ("matrix", "sparse")
        assert batcher["detail"]["pairs"] >= 1


def test_analysis_mode_shapes_the_batcher_decision():
    async def run(mode):
        async with running_service(
            preload=("bib",), analysis_mode=mode,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                return await client.call("analyze", explain=True,
                                         **ANALYZE)

    direct = asyncio.run(run("engine"))
    assert _layer(direct["plan"], "batcher")["decision"] == "direct"
    # Batching disabled, but the engine layer still reports its source.
    assert _layer(direct["plan"], "engine")["decision"] == "computed"
    oneshot = asyncio.run(run("oneshot"))
    assert _layer(oneshot["plan"], "batcher")["decision"] == "oneshot"


def test_explained_matrix_reports_per_pair_engine_decisions():
    async def run():
        async with running_service(preload=("bib",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                return await client.call(
                    "matrix", schema="bib", explain=True,
                    queries=["//title", "//author"],
                    updates=["delete //price"],
                )

    response = asyncio.run(run())
    assert response["ok"], response
    engine = [d for d in response["plan"]["decisions"]
              if d["layer"] == "engine"]
    assert len(engine) == 2
    assert {d["detail"]["query"] for d in engine} == \
        {"//title", "//author"}


def test_doc_load_provenance_and_doc_query_answer_paths():
    async def run():
        async with running_service(
            preload=("bib",), doc_store_path="memory://",
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                loaded = await client.call(
                    "doc.load", schema="bib", doc="bx", xml=XML,
                    project_for=["//title"], explain=True,
                )
                materialized = await client.call(
                    "doc.query", schema="bib", doc="bx",
                    query="//title", explain=True,
                )
                # Unload: the next query must answer from the store.
                await client.call("doc.unload", doc=loaded["doc"])
                pushed = await client.call(
                    "doc.query", schema="bib", doc="bx",
                    query="//title", explain=True,
                )
                reloaded = await client.call(
                    "doc.load", schema="bib", doc="bx", explain=True,
                )
        return loaded, materialized, pushed, reloaded

    loaded, materialized, pushed, reloaded = asyncio.run(run())
    docstore = _layer(loaded["plan"], "docstore")
    assert docstore["decision"] == "projected"
    assert docstore["detail"]["nodes_seen"] == 9
    assert docstore["detail"]["nodes"] == 7
    assert docstore["detail"]["subtrees_skipped"] == 1
    assert docstore["detail"]["depth_cap"] >= 1

    assert materialized["mode"] == "materialized"
    assert _layer(materialized["plan"], "answer")["decision"] == \
        "materialized"

    assert pushed["mode"] == "pushdown"
    compiled = _layer(pushed["plan"], "pushdown")
    assert compiled["decision"] == "compiled"
    assert compiled["detail"]["steps"] == \
        ["descendant-child::name(title)"]
    assert compiled["detail"]["engine"] == "tree"  # memory store
    assert _layer(pushed["plan"], "answer")["decision"] == "pushdown"

    assert _layer(reloaded["plan"], "docstore")["decision"] == \
        "from_store"


def test_sqlite_pushdown_plan_carries_the_exact_sql(tmp_path):
    store = f"sqlite:///{tmp_path}/docs.sqlite"

    async def run():
        async with running_service(
            preload=("bib",), store_path=store,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                loaded = await client.call("doc.load", schema="bib",
                                           doc="bx", xml=XML)
                await client.call("doc.unload", doc=loaded["doc"])
                pushed = await client.call(
                    "doc.query", schema="bib", doc="bx",
                    query="//title", explain=True,
                )
                fallback = await client.call(
                    "doc.query", schema="bib", doc="bx",
                    query="for $x in //title return <t>n</t>",
                    explain=True,
                )
        return pushed, fallback

    pushed, fallback = asyncio.run(run())
    compiled = _layer(pushed["plan"], "pushdown")
    assert compiled["detail"]["engine"] == "sql"
    assert compiled["detail"]["dialect"] == "sqlite"
    assert "SELECT" in compiled["detail"]["sql"]
    assert "title" in compiled["detail"]["params"]
    assert _layer(pushed["plan"], "answer")["decision"] == "pushdown"

    assert fallback["mode"] == "fallback"
    ineligible = _layer(fallback["plan"], "pushdown")
    assert ineligible["decision"] == "ineligible"
    assert ineligible["detail"]["reason"] == "non-step-source"
    assert _layer(fallback["plan"], "answer")["decision"] == "fallback"


def test_slow_ring_entries_arrive_with_their_plan():
    async def run():
        async with running_service(
            preload=("bib",), slow_ms=0.000001,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                # No explain flag: the slow ring captures plans anyway.
                assert (await client.call("analyze", **ANALYZE))["ok"]
                return await client.call("metrics")

    metrics = asyncio.run(run())
    slow = [e for e in metrics["slow"] if e["op"] == "analyze"]
    assert slow, metrics["slow"]
    plan = slow[-1].get("plan")
    assert plan is not None
    assert ("engine", "computed") in _decisions(plan)


def test_sharded_plans_match_unsharded_modulo_router_fold(tmp_path):
    async def drive(doc_store, **config):
        async with running_service(
            preload=("bib",), doc_store_path=doc_store, **config
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                analyze = await client.call("analyze", explain=True,
                                            **ANALYZE)
                loaded = await client.call(
                    "doc.load", schema="bib", doc="dx", xml=XML,
                    explain=True,
                )
                query = await client.call(
                    "doc.query", schema="bib", doc="dx",
                    query="//title", explain=True,
                )
        return analyze, loaded, query

    single = asyncio.run(drive(str(tmp_path / "single.db")))
    sharded = asyncio.run(drive(str(tmp_path / "sharded.db"), shards=2))
    for flat, routed in zip(single, sharded):
        assert routed["ok"], routed
        # The router's own plan holds exactly its routing decision
        # (preloads are seeded into the alias table at start); the
        # worker's plan nests under "shard" and must equal the
        # unsharded decision sequence.
        assert _decisions(routed["plan"]) == [("router", "alias")]
        assert _decisions(routed["plan"]["shard"]) == \
            _decisions(flat["plan"])
        assert "shard" not in flat["plan"]
