"""Store-URL configs serve byte-identically to the legacy flag pair.

The acceptance bar for the unified ``--store URL`` API: a service on
``--store sqlite:///x.db`` and a service on the deprecated spellings
(plain-path ``--store`` + ``--doc-store``) must report identical
``/stats`` storage counters for the same workload -- same verdict
counts, same docstore hit/miss/save accounting, same document detail.
Only the reported ``path`` strings may differ (they echo the flags).
"""

from __future__ import annotations

import asyncio

from repro.storage import serve_storage_plan

from .util import ServiceClient, running_service

PAIRS = [
    ("//title", "delete //price"),
    ("//price", "delete //price"),
    ("/bib/book/author", "delete //editor"),
]


async def _drive(**config_kwargs) -> dict:
    """One fixed workload: analyses, a generated persisted document,
    a view, a reload; returns the final ``/stats`` payload."""
    async with running_service(preload=("bib",),
                               **config_kwargs) as (_, host, port):
        async with ServiceClient(host, port) as client:
            for query, update in PAIRS:
                response = await client.call(
                    "analyze", schema="bib", query=query, update=update
                )
                assert response["ok"], response
            loaded = await client.call("doc.load", schema="bib",
                                       doc="d", bytes=2000, seed=3)
            assert loaded["ok"], loaded
            view = await client.call("view.register", doc="d",
                                     name="titles", query="//title")
            assert view["ok"], view
            await client.call("doc.unload", doc="d")
            reloaded = await client.call("doc.load", schema="bib",
                                         doc="d")
            assert reloaded["ok"] and reloaded["from_store"], reloaded
            stats = await client.call("stats")
            assert stats["ok"], stats
            return stats


def _storage_counters(stats: dict) -> dict:
    """The storage-relevant ``/stats`` sections, paths redacted (the
    path echoes the flag spelling; everything else must match)."""
    store = dict(stats["store"])
    docstore = dict(stats["docstore"])
    store.pop("path", None)
    docstore.pop("path", None)
    return {
        "store": store,
        "docstore": docstore,
        "documents": stats["documents"],
        "documents_detail": stats["documents_detail"],
    }


def test_url_and_legacy_flag_counters_match(tmp_path):
    """`--store sqlite:///x.db` == `--store a.db --doc-store b.db` on
    every storage counter (paths aside)."""
    unified = asyncio.run(_drive(
        store_path=f"sqlite:///{tmp_path / 'unified.db'}",
    ))
    legacy = asyncio.run(_drive(
        store_path=str(tmp_path / "verdicts.db"),
        doc_store_path=str(tmp_path / "docs.db"),
    ))
    assert _storage_counters(unified) == _storage_counters(legacy)


def test_url_reported_paths_echo_the_url(tmp_path):
    """The unified service reports its configured URL targets."""
    url = f"sqlite:///{tmp_path / 'unified.db'}"
    stats = asyncio.run(_drive(store_path=url))
    assert str(tmp_path / "unified.db") in stats["store"]["path"]
    assert stats["docstore"]["enabled"] is True


def test_memory_url_matches_default_ephemeral(tmp_path):
    """`memory://` is the URL spelling of the historical default: no
    document store, ephemeral verdicts."""
    plan_url = serve_storage_plan("memory://")
    plan_default = serve_storage_plan(":memory:")
    assert plan_url.verdicts == plan_default.verdicts
    assert plan_url.documents is None is plan_default.documents
