"""Micro-batching admission queue: coalescing, fallback, counters."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.batching import MicroBatcher
from repro.serve.registry import SchemaRegistry
from repro.serve.store import VerdictStore

PAIRS = [
    ("//title", "delete //price"),
    ("//price", "delete //price"),
    ("//author", "delete //editor"),
    ("/bib/book", "delete //price"),
    ("//title", "delete //editor"),
    ("//last", "delete //first"),
]


def _counting_registry(store=None) -> tuple[SchemaRegistry, list]:
    """A registry whose bib engine counts its analyze_matrix calls."""
    registry = SchemaRegistry(store=store)
    engine = registry.engine("bib")
    calls: list[tuple[int, int]] = []
    original = engine.analyze_matrix

    def counting(queries, updates, **kwargs):
        queries = list(queries)
        updates = list(updates)
        calls.append((len(queries), len(updates)))
        return original(queries, updates, **kwargs)

    engine.analyze_matrix = counting
    return registry, calls


class TestCoalescing:
    def test_concurrent_requests_one_matrix_call(self):
        async def run():
            registry, calls = _counting_registry()
            batcher = MicroBatcher(registry, window=0.05)
            try:
                verdicts = await asyncio.gather(*(
                    batcher.submit("bib", query, update)
                    for query, update in PAIRS
                ))
            finally:
                batcher.close()
            return verdicts, calls, batcher

        verdicts, calls, batcher = asyncio.run(run())
        assert len(calls) == 1, "N concurrent requests must coalesce"
        assert batcher.batches == 1
        assert batcher.coalesced_requests == len(PAIRS) - 1
        assert batcher.requests == len(PAIRS)
        # The flush deduplicates: 5 distinct queries x 3 distinct updates.
        assert calls[0] == (5, 3)
        # Verdicts equal the engine's own per-pair answers.
        engine = _counting_registry()[0].engine("bib")
        for (query, update), verdict in zip(PAIRS, verdicts):
            report = engine.analyze_pair(query, update,
                                         collect_witnesses=False)
            assert verdict.independent == report.independent
            assert (verdict.k, verdict.k_query, verdict.k_update) == \
                (report.k, report.k_query, report.k_update)

    def test_sequential_requests_do_not_coalesce(self):
        async def run():
            registry, calls = _counting_registry()
            batcher = MicroBatcher(registry, window=0.002)
            try:
                for query, update in PAIRS[:3]:
                    await batcher.submit("bib", query, update)
            finally:
                batcher.close()
            return calls, batcher

        calls, batcher = asyncio.run(run())
        assert len(calls) == 3
        assert batcher.coalesced_requests == 0

    def test_distinct_k_groups_flush_separately(self):
        async def run():
            registry, calls = _counting_registry()
            batcher = MicroBatcher(registry, window=0.05)
            try:
                await asyncio.gather(
                    batcher.submit("bib", "//title", "delete //price"),
                    batcher.submit("bib", "//title", "delete //price",
                                   k=5),
                )
            finally:
                batcher.close()
            return calls, batcher

        calls, batcher = asyncio.run(run())
        assert len(calls) == 2
        assert batcher.coalesced_requests == 0

    def test_max_batch_enforced_under_a_burst(self):
        # A same-cycle burst beyond max_batch must split into several
        # batches: a full group closes its window to later submits.
        burst = [(f"//{tag}", "delete //price")
                 for tag in ("title", "price", "author", "editor",
                             "last", "first")] + PAIRS[:4]

        async def run():
            registry, _ = _counting_registry()
            batcher = MicroBatcher(registry, window=0.05, max_batch=3)
            try:
                await asyncio.gather(*(
                    batcher.submit("bib", query, update)
                    for query, update in burst
                ))
            finally:
                batcher.close()
            return batcher

        batcher = asyncio.run(run())
        assert batcher.max_batch_size <= 3
        assert batcher.batches >= -(-len(burst) // 3)

    def test_max_batch_flushes_early(self):
        async def run():
            registry, calls = _counting_registry()
            # Window far beyond the test timeout: only the size bound
            # can trigger the flush.
            batcher = MicroBatcher(registry, window=30.0, max_batch=3)
            try:
                await asyncio.wait_for(asyncio.gather(*(
                    batcher.submit("bib", query, update)
                    for query, update in PAIRS[:3]
                )), timeout=10)
            finally:
                batcher.close()
            return calls

        calls = asyncio.run(run())
        assert len(calls) == 1

    def test_sparse_batch_skips_the_cross_product(self, tmp_path):
        # Five requests pairing five distinct queries with five distinct
        # updates diagonally: the full grid would be 25 analyses for 5
        # answers (> MATRIX_DENSITY_LIMIT x), so the flush must analyze
        # exactly the requested pairs instead.
        tags = ["title", "price", "author", "editor", "last"]
        sparse_pairs = [
            (f"//{tag}", f"delete //{other}")
            for tag, other in zip(tags, tags[1:] + tags[:1])
        ]

        async def run():
            store = VerdictStore(str(tmp_path / "verdicts.sqlite"))
            registry, calls = _counting_registry(store=store)
            batcher = MicroBatcher(registry, window=0.05)
            try:
                verdicts = await asyncio.gather(*(
                    batcher.submit("bib", query, update)
                    for query, update in sparse_pairs
                ))
            finally:
                batcher.close()
            count = store.count()
            store.close()
            return verdicts, calls, batcher, count

        verdicts, calls, batcher, count = asyncio.run(run())
        assert calls == [], "sparse batch must not call analyze_matrix"
        assert batcher.batches == 1
        assert batcher.sparse_batches == 1
        assert count == len(sparse_pairs)   # only requested pairs stored
        engine = _counting_registry()[0].engine("bib")
        for (query, update), verdict in zip(sparse_pairs, verdicts):
            report = engine.analyze_pair(query, update,
                                         collect_witnesses=False)
            assert verdict.independent == report.independent

    def test_group_commit_wraps_flush(self, tmp_path):
        async def run():
            store = VerdictStore(str(tmp_path / "verdicts.sqlite"))
            registry, calls = _counting_registry(store=store)
            batcher = MicroBatcher(registry, window=0.05)
            try:
                await asyncio.gather(*(
                    batcher.submit("bib", query, update)
                    for query, update in PAIRS
                ))
            finally:
                batcher.close()
            count = store.count()
            store.close()
            return count, calls

        count, calls = asyncio.run(run())
        assert calls == [(5, 3)]
        assert count == 15  # the whole deduplicated grid persisted


class TestFallback:
    def test_bad_expression_only_fails_its_own_request(self):
        async def run():
            registry, _ = _counting_registry()
            batcher = MicroBatcher(registry, window=0.05)
            try:
                results = await asyncio.gather(
                    batcher.submit("bib", "//title", "delete //price"),
                    batcher.submit("bib", "///", "delete //price"),
                    return_exceptions=True,
                )
            finally:
                batcher.close()
            return results, batcher

        results, batcher = asyncio.run(run())
        good, bad = results
        assert good.independent is not None
        assert isinstance(bad, Exception)
        assert batcher.fallback_singles >= 1

    def test_disabled_batcher_serves_directly(self):
        async def run():
            registry, calls = _counting_registry()
            batcher = MicroBatcher(registry, enabled=False)
            try:
                verdicts = await asyncio.gather(*(
                    batcher.submit("bib", query, update)
                    for query, update in PAIRS
                ))
            finally:
                batcher.close()
            return verdicts, calls, batcher

        verdicts, calls, batcher = asyncio.run(run())
        assert calls == []          # no matrix path at all
        assert batcher.batches == 0
        assert len(verdicts) == len(PAIRS)

    def test_stats_shape(self):
        registry, _ = _counting_registry()
        batcher = MicroBatcher(registry, window=0.01, max_batch=7)
        stats = batcher.stats()
        batcher.close()
        assert stats["enabled"] is True
        assert stats["max_batch"] == 7
        assert stats["requests"] == 0


@pytest.mark.parametrize("query,update", PAIRS[:2])
def test_wire_verdict_round_trip(query, update):
    async def run():
        registry, _ = _counting_registry()
        batcher = MicroBatcher(registry, window=0.001)
        try:
            return await batcher.submit("bib", query, update)
        finally:
            batcher.close()

    verdict = asyncio.run(run())
    payload = verdict.as_dict()
    assert set(payload) == {"independent", "k", "k_query", "k_update"}
