"""Shared helpers for the serve tests: an in-process service session
and a minimal JSON-lines client."""

from __future__ import annotations

import asyncio
import json
from contextlib import asynccontextmanager

from repro.serve.protocol import MAX_LINE_BYTES, encode
from repro.serve.server import IndependenceService, ServeConfig, make_service


@asynccontextmanager
async def running_service(**config_kwargs):
    """A started service on an ephemeral loopback port.

    With ``shards=N`` (N > 1) this yields the sharded router over a
    pool of worker processes; otherwise the classic in-process service.
    """
    config_kwargs.setdefault("port", 0)
    service = make_service(ServeConfig(**config_kwargs))
    if config_kwargs.get("shards", 1) == 1:
        assert isinstance(service, IndependenceService)
    host, port = await service.start()
    server_task = asyncio.create_task(service.serve_until_stopped())
    try:
        yield service, host, port
    finally:
        service.stop()
        await server_task


class ServiceClient:
    """One connection; requests tagged with sequential ids."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 0

    async def __aenter__(self) -> "ServiceClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self

    async def __aexit__(self, *exc_info) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    async def call(self, op: str, **params) -> dict:
        """Send one request and await its (id-matched) response."""
        self._next_id += 1
        request_id = self._next_id
        self._writer.write(encode({"op": op, "id": request_id, **params}))
        await self._writer.drain()
        response = json.loads(await self._reader.readline())
        assert response["id"] == request_id, response
        return response

    async def send_raw(self, payload: bytes) -> dict:
        self._writer.write(payload)
        await self._writer.drain()
        return json.loads(await self._reader.readline())
