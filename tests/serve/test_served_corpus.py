"""Replay the served-scenario regression corpus over the wire.

``tests/corpus/served-xmark-pairs.json`` pins XMark pair verdicts three
ways: the values committed in the file, the engine's current
``analyze_pair`` ground truth, and the verdicts the service returns
over TCP (in both batched and batching-disabled modes).  Any pairwise
disagreement -- an analysis regression, a serving-layer translation
bug, or a stale pin -- fails here with the offending pair named.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.schema.catalog import xmark_dtd

from .util import ServiceClient, running_service

CORPUS_PATH = (Path(__file__).resolve().parent.parent / "corpus"
               / "served-xmark-pairs.json")
CORPUS = json.loads(CORPUS_PATH.read_text(encoding="utf-8"))
FIELDS = ("independent", "k", "k_query", "k_update")


def _pinned(entry: dict) -> dict:
    return {field: entry[field] for field in FIELDS}


def test_corpus_file_shape():
    assert CORPUS["kind"] == "served-replay"
    assert CORPUS["schema"] == {"builtin": "xmark"}
    assert len(CORPUS["pairs"]) >= 5
    kinds = {entry["independent"] for entry in CORPUS["pairs"]}
    assert kinds == {True, False}, "corpus must pin both verdict kinds"


@pytest.mark.parametrize(
    "entry", CORPUS["pairs"],
    ids=[f"{e['view']}-{e['update_name']}" for e in CORPUS["pairs"]],
)
def test_pinned_verdicts_match_engine_ground_truth(entry):
    engine = AnalysisEngine(xmark_dtd())
    report = engine.analyze_pair(entry["query"], entry["update"],
                                 collect_witnesses=False)
    assert _pinned(entry) == {
        "independent": report.independent,
        "k": report.k,
        "k_query": report.k_query,
        "k_update": report.k_update,
    }, f"engine drifted from pin on {entry['view']}/{entry['update_name']}"


@pytest.mark.parametrize("mode", ["batched", "engine"])
def test_served_verdicts_match_pins(mode):
    async def run():
        async with running_service(analysis_mode=mode,
                                   preload=("xmark",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                return [
                    await client.call("analyze", schema="xmark",
                                      query=entry["query"],
                                      update=entry["update"])
                    for entry in CORPUS["pairs"]
                ]

    responses = asyncio.run(run())
    for entry, response in zip(CORPUS["pairs"], responses):
        assert response["ok"], response
        served = {field: response[field] for field in FIELDS}
        assert served == _pinned(entry), (
            "served verdict drifted from pin on "
            f"{entry['view']}/{entry['update_name']} (mode={mode})"
        )
