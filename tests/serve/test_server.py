"""End-to-end service tests over loopback TCP: every endpoint, the
protocol-error contract, and wire-vs-engine verdict agreement."""

from __future__ import annotations

import asyncio
import json

from repro.analysis.engine import AnalysisEngine
from repro.serve.protocol import encode

from .util import ServiceClient, running_service

BIB_PAIRS = [
    ("//title", "delete //price"),
    ("//price", "delete //price"),
    ("/bib/book/author", "delete //editor"),
    ("//last", "delete //author"),
]


def test_analyze_matches_engine_ground_truth(bib):
    async def run():
        async with running_service(preload=("bib",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                return [
                    await client.call("analyze", schema="bib",
                                      query=query, update=update)
                    for query, update in BIB_PAIRS
                ]

    responses = asyncio.run(run())
    engine = AnalysisEngine(bib)
    for (query, update), response in zip(BIB_PAIRS, responses):
        assert response["ok"], response
        report = engine.analyze_pair(query, update,
                                     collect_witnesses=False)
        assert response["independent"] == report.independent
        assert response["k"] == report.k
        assert response["k_query"] == report.k_query
        assert response["k_update"] == report.k_update


def test_concurrent_clients_coalesce_into_batches(bib):
    async def run():
        async with running_service(batch_window=0.05) as (_, host, port):
            async def one(query, update):
                async with ServiceClient(host, port) as client:
                    return await client.call("analyze", schema="bib",
                                             query=query, update=update)

            responses = await asyncio.gather(*(
                one(query, update) for query, update in BIB_PAIRS * 3
            ))
            async with ServiceClient(host, port) as client:
                stats = await client.call("stats")
            return responses, stats

    responses, stats = asyncio.run(run())
    assert all(response["ok"] for response in responses)
    batcher = stats["batcher"]
    assert batcher["batches"] >= 1
    assert batcher["coalesced_requests"] > 0
    assert batcher["requests"] == len(BIB_PAIRS) * 3


def test_pipelined_requests_on_one_connection_coalesce():
    async def run():
        async with running_service(batch_window=0.05) as (_, host, port):
            reader, writer = await asyncio.open_connection(host, port)
            for index, (query, update) in enumerate(BIB_PAIRS):
                writer.write(encode({
                    "op": "analyze", "id": index, "schema": "bib",
                    "query": query, "update": update,
                }))
            await writer.drain()
            responses = {}
            for _ in BIB_PAIRS:
                response = json.loads(await reader.readline())
                responses[response["id"]] = response
            writer.close()
            await writer.wait_closed()
            async with ServiceClient(host, port) as client:
                stats = await client.call("stats")
            return responses, stats

    responses, stats = asyncio.run(run())
    assert set(responses) == set(range(len(BIB_PAIRS)))
    assert all(response["ok"] for response in responses.values())
    assert stats["batcher"]["coalesced_requests"] > 0


def test_matrix_and_schedule_endpoints(bib):
    async def run():
        async with running_service() as (_, host, port):
            async with ServiceClient(host, port) as client:
                matrix = await client.call(
                    "matrix", schema="bib",
                    queries=["//title", "//price"],
                    updates=["delete //price"],
                )
                schedule = await client.call(
                    "schedule", schema="bib",
                    operations=[
                        {"name": "q-titles", "query": "//title"},
                        {"name": "u-prices", "update": "delete //price"},
                        {"name": "q-prices", "query": "//price"},
                    ],
                )
                return matrix, schedule

    matrix, schedule = asyncio.run(run())
    assert matrix["ok"]
    engine = AnalysisEngine(bib)
    expected = [
        [engine.analyze_pair(q, "delete //price",
                             collect_witnesses=False).independent]
        for q in ("//title", "//price")
    ]
    assert matrix["independent"] == expected
    assert matrix["pairs"] == 2
    assert schedule["ok"]
    waves = schedule["waves"]
    flat = [name for wave in waves for name in wave]
    assert sorted(flat) == ["q-prices", "q-titles", "u-prices"]
    # //title is independent of the delete, //price is not, so q-prices
    # must be separated from u-prices while q-titles can share its wave.
    wave_of = {name: i for i, wave in enumerate(waves) for name in wave}
    assert wave_of["q-prices"] != wave_of["u-prices"]
    assert wave_of["q-titles"] == min(wave_of.values())


def test_view_maintenance_over_the_wire():
    xml = ("<bib><book><title>t</title><author><last>l</last>"
           "<first>f</first></author><publisher>p</publisher>"
           "<price>9</price></book></bib>")

    async def run():
        async with running_service() as (_, host, port):
            async with ServiceClient(host, port) as client:
                doc = await client.call("doc.load", schema="bib", xml=xml)
                titles = await client.call(
                    "view.register", doc=doc["doc"],
                    name="titles", query="//title",
                )
                prices = await client.call(
                    "view.register", doc=doc["doc"],
                    name="prices", query="//price",
                )
                applied = await client.call(
                    "update.apply", doc=doc["doc"],
                    update="delete //price",
                )
                after = await client.call("view.result", doc=doc["doc"],
                                          name="prices")
                return doc, titles, prices, applied, after

    doc, titles, prices, applied, after = asyncio.run(run())
    assert doc["ok"] and doc["nodes"] > 0
    assert titles["count"] == 1 and prices["count"] == 1
    assert applied["ok"]
    # The analysis proves the titles view independent of the delete:
    # only the prices view is refreshed.
    assert applied["refreshed"] == ["prices"]
    assert applied["skipped"] == 1
    assert after["count"] == 0


def test_document_lru_bound_and_unload():
    xml = "<bib></bib>"

    async def run():
        async with running_service(max_documents=2) as (service, host,
                                                        port):
            async with ServiceClient(host, port) as client:
                docs = [
                    (await client.call("doc.load", schema="bib",
                                       xml=xml))["doc"]
                    for _ in range(3)
                ]
                # The oldest document was evicted by the LRU bound.
                oldest = await client.call("view.register", doc=docs[0],
                                           name="v", query="//title")
                newest = await client.call("view.register", doc=docs[2],
                                           name="v", query="//title")
                unloaded = await client.call("doc.unload", doc=docs[2])
                gone = await client.call("view.result", doc=docs[2],
                                         name="v")
                return oldest, newest, unloaded, gone, \
                    service.document_evictions

    oldest, newest, unloaded, gone, evictions = asyncio.run(run())
    assert not oldest["ok"] and oldest["error"]["code"] == "unknown-doc"
    assert newest["ok"]
    assert unloaded["unloaded"] is True
    assert not gone["ok"]
    assert evictions == 1


def test_schema_register_evict_list():
    async def run():
        async with running_service() as (_, host, port):
            async with ServiceClient(host, port) as client:
                registered = await client.call(
                    "schema.register", root="doc",
                    dtd="<!ELEMENT doc (leaf*)><!ELEMENT leaf EMPTY>",
                    name="tiny",
                )
                listed = await client.call("schema.list")
                analyzed = await client.call(
                    "analyze", schema="tiny",
                    query="//leaf", update="delete //leaf",
                )
                evicted = await client.call("schema.evict", schema="tiny")
                gone = await client.call(
                    "analyze", schema="tiny",
                    query="//leaf", update="delete //leaf",
                )
                return registered, listed, analyzed, evicted, gone

    registered, listed, analyzed, evicted, gone = asyncio.run(run())
    assert registered["ok"] and registered["tags"] == 2
    assert any(row["names"] == ["tiny"] for row in listed["schemas"])
    assert analyzed["ok"] and analyzed["independent"] is False
    assert evicted["evicted"] is True
    assert not gone["ok"]
    assert gone["error"]["code"] == "unknown-schema"


def test_protocol_errors_keep_connection_usable():
    async def run():
        async with running_service() as (_, host, port):
            async with ServiceClient(host, port) as client:
                outcomes = []
                outcomes.append(await client.send_raw(b"not json\n"))
                outcomes.append(await client.send_raw(b"[1, 2, 3]\n"))
                outcomes.append(await client.send_raw(b'{"id": 9}\n'))
                outcomes.append(await client.call("frobnicate"))
                outcomes.append(await client.call("analyze",
                                                  schema="bib"))
                outcomes.append(await client.call(
                    "analyze", schema="bib", query="///broken(",
                    update="delete //price",
                ))
                outcomes.append(await client.call(
                    "analyze", schema="no-such-schema",
                    query="//a", update="delete //a",
                ))
                # After six errors, a good request still succeeds.
                outcomes.append(await client.call(
                    "analyze", schema="bib", query="//title",
                    update="delete //price",
                ))
                return outcomes

    outcomes = asyncio.run(run())
    codes = [outcome.get("error", {}).get("code") for outcome in outcomes]
    assert codes[0] == "bad-json"
    assert codes[1] == "bad-request"
    assert codes[2] == "bad-request"
    assert codes[3] == "unknown-op"
    assert codes[4] == "bad-params"
    assert codes[5] == "internal"        # parse failure inside analysis
    assert codes[6] == "unknown-schema"
    assert outcomes[7]["ok"] and outcomes[7]["independent"] is True


def test_stats_endpoint_exposes_all_layers():
    async def run():
        async with running_service(preload=("bib",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call("analyze", schema="bib",
                                  query="//title",
                                  update="delete //price")
                return await client.call("stats")

    stats = asyncio.run(run())
    assert stats["ok"]
    assert stats["analysis_mode"] == "batched"
    assert stats["requests"] >= 2
    assert stats["ops"]["analyze"] == 1
    engines = stats["registry"]["engines"]
    (engine_stats,) = engines.values()
    for key in ("pair_hits", "pair_misses", "pair_evictions",
                "store_hits", "store_misses", "store_writes"):
        assert key in engine_stats
    assert stats["store"]["verdicts"] == 1
    assert stats["batcher"]["requests"] == 1


def test_shutdown_op_stops_the_service():
    async def run():
        async with running_service() as (service, host, port):
            async with ServiceClient(host, port) as client:
                response = await client.call("shutdown")
            await asyncio.wait_for(service._stopping.wait(), timeout=5)
            return response

    response = asyncio.run(run())
    assert response["ok"] and response["stopping"]


def test_oneshot_and_engine_modes_agree_with_batched(bib):
    async def run(mode):
        async with running_service(analysis_mode=mode) as (_, host, port):
            async with ServiceClient(host, port) as client:
                return [
                    await client.call("analyze", schema="bib",
                                      query=query, update=update)
                    for query, update in BIB_PAIRS
                ]

    by_mode = {
        mode: [
            {key: response[key]
             for key in ("independent", "k", "k_query", "k_update")}
            for response in asyncio.run(run(mode))
        ]
        for mode in ("batched", "engine", "oneshot")
    }
    assert by_mode["batched"] == by_mode["engine"] == by_mode["oneshot"]
