"""Loadgen-side observability: percentile math and the scrape/trace
report sections.

``_percentile`` is pinned against hand-computed linear-interpolation
values (the R-7 / numpy-default definition) on a known small sample --
the old nearest-rank version returned 2 for the median of [1,2,3,4].
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.loadgen import LoadgenConfig, _percentile, run_loadgen

from .util import running_service


def test_percentile_interpolates_between_order_statistics():
    sample = [1.0, 2.0, 3.0, 4.0]
    assert _percentile(sample, 0.0) == 1.0
    assert _percentile(sample, 0.5) == pytest.approx(2.5)
    assert _percentile(sample, 0.25) == pytest.approx(1.75)
    assert _percentile(sample, 0.75) == pytest.approx(3.25)
    assert _percentile(sample, 1.0) == 4.0
    # Odd length: the median is the middle order statistic exactly.
    assert _percentile([1.0, 10.0, 100.0], 0.5) == 10.0
    # p90 of 10 values: rank 8.1 -> 0.9 of the way from v[8] to v[9].
    decade = [float(i) for i in range(10)]
    assert _percentile(decade, 0.9) == pytest.approx(8.1)
    assert _percentile([], 0.5) == 0.0
    assert _percentile([7.0], 0.99) == 7.0


def test_report_gains_scrape_timing_and_doc_sections():
    async def run():
        async with running_service(preload=("xmark",)) as (_, host, port):
            plain = await run_loadgen(LoadgenConfig(
                host=host, port=port, schema="xmark", source="bench",
                n_queries=3, n_updates=3, clients=2, requests=12,
            ))
            observed = await run_loadgen(LoadgenConfig(
                host=host, port=port, schema="xmark", source="bench",
                n_queries=3, n_updates=3, clients=2, requests=12,
                scrape_metrics=True, timing_sample=2, doc_queries=2,
            ))
        return plain, observed

    plain, observed = asyncio.run(run())
    # The default report shape is unchanged (bench gates parse it).
    for key in ("server_metrics", "span_breakdown", "doc_query"):
        assert key not in plain
    assert plain["errors"] == 0

    assert observed["errors"] == 0, observed["error_samples"]
    server = observed["server_metrics"]
    assert server["role"] == "service"
    assert server["counts_match"] is True
    analyze = server["per_op"]["analyze"]
    assert analyze["count"] == 12
    assert 0.0 < analyze["p50_ms"] <= analyze["p99_ms"]
    assert server["per_op"]["doc.query"]["count"] == 4

    breakdown = observed["span_breakdown"]
    assert {"engine", "queue_wait", "total"} <= set(breakdown["analyze"])
    assert "engine" in breakdown["doc.query"]
    assert breakdown["analyze"]["engine"]["count"] > 0

    doc = observed["doc_query"]
    assert doc["completed"] == 4
    assert doc["latency_ms"]["p50"] > 0.0
