"""``doc.load`` over the indexed document store: file/projection
loading, node-table persistence across restarts, and the ``/stats``
docstore surface."""

import asyncio

import pytest

from repro.schema import xmark_dtd
from repro.xmldm import generate_document, serialize

from .util import ServiceClient, running_service


@pytest.fixture(scope="module")
def xmark_file(tmp_path_factory):
    tree = generate_document(xmark_dtd(), 150_000, seed=3)
    path = tmp_path_factory.mktemp("docs") / "xmark.xml"
    path.write_text(serialize(tree.store, tree.root))
    return str(path)


def test_doc_load_from_path_with_projection(xmark_file):
    async def run():
        async with running_service(preload=("xmark",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                full = await client.call("doc.load", schema="xmark",
                                         path=xmark_file)
                assert full["ok"] and not full["projected"]
                projected = await client.call(
                    "doc.load", schema="xmark", path=xmark_file,
                    project_for=["//emailaddress",
                                 "/site/people/person/name"],
                )
                assert projected["ok"] and projected["projected"]
                assert projected["nodes"] < full["nodes"] / 4
                assert projected["subtrees_skipped"] > 0
                assert projected["nodes_seen"] == full["nodes"]
                # Views over the projection answer like the full doc.
                for doc in (full["doc"], projected["doc"]):
                    registered = await client.call(
                        "view.register", doc=doc, name="emails",
                        query="//emailaddress",
                    )
                    assert registered["ok"]
                counts = [
                    (await client.call("view.result", doc=doc,
                                       name="emails"))["count"]
                    for doc in (full["doc"], projected["doc"])
                ]
                assert counts[0] == counts[1] > 0
                stats = await client.call("stats")
                detail = stats["documents_detail"]
                assert detail[projected["doc"]]["projected"] is True
                assert detail[projected["doc"]]["nodes"] < \
                    detail[full["doc"]]["nodes"]
                assert stats["docstore"] == {"enabled": False}

    asyncio.run(run())


def test_doc_load_explicit_id_and_bad_params(xmark_file):
    async def run():
        async with running_service(preload=("xmark",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                named = await client.call("doc.load", schema="xmark",
                                          path=xmark_file, doc="mine")
                assert named["doc"] == "mine"
                bad = await client.call("doc.load", schema="xmark",
                                        path="/nonexistent.xml")
                assert not bad["ok"]
                assert bad["error"]["code"] == "bad-params"
                bad = await client.call("doc.load", schema="xmark",
                                        xml="<site>", doc="broken")
                assert not bad["ok"]
                bad = await client.call(
                    "doc.load", schema="xmark", path=xmark_file,
                    project_for=["not a query ((("],
                )
                assert not bad["ok"]
                assert bad["error"]["code"] == "bad-params"

    asyncio.run(run())


def test_persisted_document_survives_restart(tmp_path, xmark_file):
    db = str(tmp_path / "docs.sqlite")

    async def first_run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                loaded = await client.call(
                    "doc.load", schema="xmark", path=xmark_file,
                    doc="persisted", project_for=["//emailaddress"],
                )
                assert loaded["ok"] and not loaded["from_store"]
                registered = await client.call(
                    "view.register", doc="persisted", name="v",
                    query="//emailaddress",
                )
                stats = await client.call("stats")
                assert stats["docstore"]["enabled"]
                assert stats["docstore"]["saves"] == 1
                assert stats["docstore"]["documents"] == 1
                return loaded, registered["count"]

    async def second_run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                # Same doc id, no source: served from the node table.
                reloaded = await client.call("doc.load", schema="xmark",
                                             doc="persisted")
                assert reloaded["ok"] and reloaded["from_store"]
                assert reloaded["projected"] is True
                registered = await client.call(
                    "view.register", doc="persisted", name="v",
                    query="//emailaddress",
                )
                stats = await client.call("stats")
                assert stats["docstore"]["hits"] == 1
                assert stats["docstore"]["saves"] == 0
                detail = stats["documents_detail"]["persisted"]
                assert detail["from_store"] is True
                return reloaded, registered["count"]

    loaded, count_before = asyncio.run(first_run())
    reloaded, count_after = asyncio.run(second_run())
    assert reloaded["nodes"] == loaded["nodes"]
    assert reloaded["nodes_seen"] == loaded["nodes_seen"]
    assert count_after == count_before


def test_generated_documents_persist_too(tmp_path):
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                generated = await client.call(
                    "doc.load", schema="xmark", bytes=4_000, doc="gen",
                )
                assert generated["ok"]
                stats = await client.call("stats")
                assert stats["docstore"]["saves"] == 1
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                reloaded = await client.call("doc.load", schema="xmark",
                                             doc="gen")
                assert reloaded["from_store"]
                assert reloaded["nodes"] == generated["nodes"]

    asyncio.run(run())


def test_anonymous_ids_never_clobber_named_documents(xmark_file):
    """A later anonymous doc.load must not reuse a client's ``d1``."""

    async def run():
        async with running_service(preload=("xmark",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                named = await client.call("doc.load", schema="xmark",
                                          path=xmark_file, doc="d1")
                assert named["doc"] == "d1"
                await client.call("view.register", doc="d1",
                                  name="v", query="//emailaddress")
                anonymous = await client.call("doc.load",
                                              schema="xmark",
                                              bytes=2_000)
                assert anonymous["ok"]
                assert anonymous["doc"] != "d1"
                view = await client.call("view.result", doc="d1",
                                         name="v")
                assert view["ok"], view  # the named doc survived

    asyncio.run(run())


def test_from_store_rejects_mismatched_schema(tmp_path, xmark_file):
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark", "bib"), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                loaded = await client.call("doc.load", schema="xmark",
                                           path=xmark_file, doc="x")
                assert loaded["ok"]
                wrong = await client.call("doc.load", schema="bib",
                                          doc="x")
                assert not wrong["ok"]
                assert wrong["error"]["code"] == "bad-params"
                assert "different schema" in wrong["error"]["message"]
                right = await client.call("doc.load", schema="xmark",
                                          doc="x")
                assert right["ok"] and right["from_store"]
                stats = await client.call("stats")
                # The mismatch attempt counted as a lookup (hit at the
                # backend layer), the generation-fallback path counts
                # misses; both stay observable.
                assert stats["docstore"]["hits"] == 2

    asyncio.run(run())


def test_named_reload_miss_is_an_error_not_generation(tmp_path):
    """Reloading a name the store does not hold (e.g. a typo) is
    refused -- never silently replaced by a generated document -- and
    the lookup shows up in the docstore miss counter."""
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                missing = await client.call("doc.load", schema="xmark",
                                            doc="typo")
                assert not missing["ok"]
                assert missing["error"]["code"] == "bad-params"
                assert "not persisted" in missing["error"]["message"]
                stats = await client.call("stats")
                assert stats["docstore"]["misses"] == 1
                assert stats["docstore"]["saves"] == 0
                # Anonymous generation (no doc name) still works and
                # never consults the store (no spurious misses).
                anonymous = await client.call("doc.load",
                                              schema="xmark",
                                              bytes=2_000)
                assert anonymous["ok"]
                plain = await client.call("doc.load", schema="xmark")
                assert plain["ok"] and not plain["from_store"]
                stats = await client.call("stats")
                assert stats["docstore"]["misses"] == 1

    asyncio.run(run())


def test_reload_refreshes_lru_position(xmark_file):
    async def run():
        async with running_service(
            preload=("xmark",), max_documents=2,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call("doc.load", schema="xmark",
                                  bytes=2_000, doc="a")
                await client.call("doc.load", schema="xmark",
                                  bytes=2_000, doc="b")
                # Reload "a": it must become most-recently-used...
                await client.call("doc.load", schema="xmark",
                                  bytes=2_000, doc="a")
                await client.call("doc.load", schema="xmark",
                                  bytes=2_000, doc="c")
                # ...so the eviction hits "b", not the fresh "a".
                stats = await client.call("stats")
                assert set(stats["documents_detail"]) == {"a", "c"}

    asyncio.run(run())


def test_persistence_key_survives_topology_change(tmp_path, xmark_file):
    """A document persisted unsharded reloads from the table on a
    sharded service (and vice versa) -- the node-table key is the
    unprefixed name."""
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                loaded = await client.call(
                    "doc.load", schema="xmark", path=xmark_file,
                    doc="topo", project_for=["//emailaddress"],
                )
                assert loaded["ok"] and loaded["doc"] == "topo"
        async with running_service(
            shards=2, preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                reloaded = await client.call("doc.load",
                                             schema="xmark",
                                             doc="topo")
                assert reloaded["ok"], reloaded
                assert reloaded["from_store"], reloaded
                assert reloaded["doc"].endswith("-topo")
                assert reloaded["nodes"] == loaded["nodes"]

    asyncio.run(run())


def test_generated_documents_honor_project_for():
    """project_for on a generated load must actually prune (and a
    truthful flag must never claim projection that did not happen)."""

    async def run():
        async with running_service(preload=("xmark",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                full = await client.call("doc.load", schema="xmark",
                                         bytes=20_000, seed=3)
                projected = await client.call(
                    "doc.load", schema="xmark", bytes=20_000, seed=3,
                    project_for=["//emailaddress"],
                )
                assert projected["projected"] is True
                assert full["projected"] is False
                assert projected["nodes"] < projected["nodes_seen"]
                assert projected["nodes"] < full["nodes"] / 4
                for doc in (full["doc"], projected["doc"]):
                    registered = await client.call(
                        "view.register", doc=doc, name="em",
                        query="//emailaddress")
                    assert registered["ok"]
                counts = [
                    (await client.call("view.result", doc=doc,
                                       name="em"))["count"]
                    for doc in (full["doc"], projected["doc"])
                ]
                assert counts[0] == counts[1]

    asyncio.run(run())


def test_store_hit_rejects_uncovered_projection(tmp_path, xmark_file):
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call(
                    "doc.load", schema="xmark", path=xmark_file,
                    doc="proj",
                    project_for=["//emailaddress", "//person/name"],
                )
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                # Covered subset: served from the store.
                covered = await client.call(
                    "doc.load", schema="xmark", doc="proj",
                    project_for=["//emailaddress"],
                )
                assert covered["ok"] and covered["from_store"]
                # Uncovered query: must refuse, not silently serve
                # the narrower tree.
                uncovered = await client.call(
                    "doc.load", schema="xmark", doc="proj",
                    project_for=["//item"],
                )
                assert not uncovered["ok"]
                assert uncovered["error"]["code"] == "bad-params"
                assert "does not cover" in uncovered["error"]["message"]

    asyncio.run(run())


def test_malformed_project_for_rejected_on_every_branch(tmp_path,
                                                        xmark_file):
    """A non-list project_for is bad-params on the from-store branch
    too, not a TypeError surfacing as an internal error."""
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call("doc.load", schema="xmark",
                                  path=xmark_file, doc="p",
                                  project_for=["//emailaddress"])
                for branch_params in (
                    {"path": xmark_file},   # parse branch
                    {},                     # from-store branch
                    {"bytes": 2_000},       # generation branch
                ):
                    bad = await client.call(
                        "doc.load", schema="xmark", doc="p",
                        project_for=5, **branch_params,
                    )
                    assert not bad["ok"], branch_params
                    assert bad["error"]["code"] == "bad-params", bad

    asyncio.run(run())


def test_named_reload_without_docstore_errors(xmark_file):
    """doc.load naming a document with no source on a service without
    --doc-store must refuse, not silently generate under that name."""

    async def run():
        async with running_service(preload=("xmark",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                bad = await client.call("doc.load", schema="xmark",
                                        doc="dblp")
                assert not bad["ok"]
                assert bad["error"]["code"] == "bad-params"
                assert "document store" in bad["error"]["message"]
                # Explicit generation under a name still works.
                ok = await client.call("doc.load", schema="xmark",
                                       doc="dblp", bytes=2_000)
                assert ok["ok"]

    asyncio.run(run())


def test_cli_persisted_projection_guard_over_the_wire(tmp_path,
                                                      xmark_file):
    """`repro load --docstore` and the served reload agree on the
    projection-coverage meta (the two persistence writers share one
    format)."""
    from repro.cli import main as cli_main

    db = str(tmp_path / "docs.sqlite")
    code = cli_main([
        "load", xmark_file, "--builtin", "xmark",
        "--project", "//emailaddress",
        "--docstore", db, "--doc", "cli-doc",
    ])
    assert code == 0

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                covered = await client.call(
                    "doc.load", schema="xmark", doc="cli-doc",
                    project_for=["//emailaddress"],
                )
                assert covered["ok"] and covered["from_store"], covered
                uncovered = await client.call(
                    "doc.load", schema="xmark", doc="cli-doc",
                    project_for=["//item"],
                )
                assert not uncovered["ok"]
                assert uncovered["error"]["code"] == "bad-params"

    asyncio.run(run())


def test_explicit_generation_not_shadowed_by_store(tmp_path):
    """doc.load with bytes/seed is a generation request even when a
    document with that id is persisted."""
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                first = await client.call("doc.load", schema="xmark",
                                          bytes=2_000, doc="g")
                assert first["ok"]
                regenerated = await client.call(
                    "doc.load", schema="xmark", bytes=8_000, doc="g",
                )
                assert regenerated["ok"]
                assert not regenerated["from_store"]
                stats = await client.call("stats")
                # Both generations persisted; neither lookup shadowed.
                assert stats["docstore"]["saves"] == 2
                reloaded = await client.call("doc.load",
                                             schema="xmark", doc="g")
                assert reloaded["from_store"]
                assert reloaded["nodes"] == regenerated["nodes"]

    asyncio.run(run())


def test_doc_query_modes_and_stats(tmp_path, xmark_file):
    """doc.query picks its answer path per request: materialized while
    the doc is loaded, SQL pushdown on a restarted service (zero
    materializations -- the docstore hit counter stays at 0), and
    transient materialize-then-evaluate for queries outside the
    fragment."""
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call("doc.load", schema="xmark",
                                  path=xmark_file, doc="corpus")
                warm = await client.call(
                    "doc.query", schema="xmark", doc="corpus",
                    query="//emailaddress",
                )
                assert warm["ok"] and warm["mode"] == "materialized"
                assert not warm["from_store"]
                assert warm["count"] == len(warm["answers"]) > 0
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                pushed = await client.call(
                    "doc.query", schema="xmark", doc="corpus",
                    query="//emailaddress",
                )
                assert pushed["ok"] and pushed["mode"] == "pushdown"
                assert pushed["from_store"]
                # Byte-identical to the materialized-path answers.
                assert pushed["answers"] == warm["answers"]
                stats = await client.call("stats")
                # The pushdown answered without materializing: no
                # docstore load happened, and no document is resident.
                assert stats["docstore"]["hits"] == 0
                assert stats["documents"] == 0
                assert stats["doc_queries"] == {
                    "pushed_down": 1, "fallback": 0, "materialized": 0,
                }
                # Outside the fragment (predicate): honest fallback.
                fell = await client.call(
                    "doc.query", schema="xmark", doc="corpus",
                    query="//person[name]", limit=2,
                )
                assert fell["ok"] and fell["mode"] == "fallback"
                assert fell["count"] >= len(fell["answers"])
                assert len(fell["answers"]) <= 2
                stats = await client.call("stats")
                assert stats["doc_queries"]["fallback"] == 1
                assert stats["docstore"]["hits"] == 1
                # The fallback tree was transient, not admitted to
                # the document LRU.
                assert stats["documents"] == 0

    asyncio.run(run())


def test_doc_query_rejects_uncovered_projection(tmp_path, xmark_file):
    """Satellite 3: a persisted *projection* must refuse queries
    outside its recorded project_for set instead of silently answering
    from the narrower node table (mirrors the doc.load store-hit
    guard)."""
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call(
                    "doc.load", schema="xmark", path=xmark_file,
                    doc="proj", project_for=["//emailaddress"],
                )
        async with running_service(
            preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                covered = await client.call(
                    "doc.query", schema="xmark", doc="proj",
                    query="//emailaddress",
                )
                assert covered["ok"] and covered["mode"] == "pushdown"
                uncovered = await client.call(
                    "doc.query", schema="xmark", doc="proj",
                    query="//person/name",
                )
                assert not uncovered["ok"]
                assert uncovered["error"]["code"] == "bad-params"
                assert "does not cover" in \
                    uncovered["error"]["message"]
                stats = await client.call("stats")
                # The refusal happened before any answer path ran.
                assert stats["doc_queries"] == {
                    "pushed_down": 1, "fallback": 0, "materialized": 0,
                }

    asyncio.run(run())


def test_doc_query_error_paths(tmp_path, xmark_file):
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            preload=("xmark", "bib"), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call("doc.load", schema="xmark",
                                  path=xmark_file, doc="corpus")
                missing = await client.call(
                    "doc.query", schema="xmark", doc="ghost",
                    query="//emailaddress",
                )
                assert not missing["ok"]
                assert missing["error"]["code"] == "unknown-doc"
                unparsable = await client.call(
                    "doc.query", schema="xmark", doc="corpus",
                    query="((",
                )
                assert not unparsable["ok"]
                assert unparsable["error"]["code"] == "bad-params"
                bad_limit = await client.call(
                    "doc.query", schema="xmark", doc="corpus",
                    query="//emailaddress", limit=-1,
                )
                assert not bad_limit["ok"]
                assert bad_limit["error"]["code"] == "bad-params"
        async with running_service(
            preload=("xmark", "bib"), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                # Persisted under xmark; querying as bib must refuse
                # (digest mismatch), not answer against the wrong
                # schema's expectations.
                wrong = await client.call(
                    "doc.query", schema="bib", doc="corpus",
                    query="//title",
                )
                assert not wrong["ok"]
                assert wrong["error"]["code"] == "bad-params"
                assert "different schema" in wrong["error"]["message"]
        # No document store at all: nothing to answer from.
        async with running_service(preload=("xmark",)) as (_, host,
                                                           port):
            async with ServiceClient(host, port) as client:
                nowhere = await client.call(
                    "doc.query", schema="xmark", doc="corpus",
                    query="//emailaddress",
                )
                assert not nowhere["ok"]
                assert nowhere["error"]["code"] == "unknown-doc"

    asyncio.run(run())


def test_sharded_anonymous_names_are_shard_scoped(xmark_file):
    """Anonymous persistence keys must differ across shards sharing
    one document store (d<shard>x<n>)."""
    from repro.serve.server import IndependenceService, ServeConfig

    worker = IndependenceService(ServeConfig(port=0, shard_index=1,
                                             doc_id_prefix="s1-"))
    assert worker._fresh_doc_name() == "d1x1"
    plain = IndependenceService(ServeConfig(port=0))
    assert plain._fresh_doc_name() == "d1"


def test_sharded_stats_aggregate_docstore(tmp_path, xmark_file):
    db = str(tmp_path / "docs.sqlite")

    async def run():
        async with running_service(
            shards=2, preload=("xmark",), doc_store_path=db,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                loaded = await client.call(
                    "doc.load", schema="xmark", path=xmark_file,
                    doc="sharded", project_for=["//emailaddress"],
                )
                assert loaded["ok"]
                assert loaded["doc"].startswith("s")  # shard-prefixed
                stats = await client.call("stats")
                assert stats["docstore"]["enabled"]
                assert stats["docstore"]["saves"] == 1
                assert stats["docstore"]["documents"] == 1
                assert loaded["doc"] in stats["documents_detail"]
                # doc.query routes by schema affinity to the shard
                # that loaded the doc; the router sums the counters.
                queried = await client.call(
                    "doc.query", schema="xmark", doc="sharded",
                    query="//emailaddress", limit=3,
                )
                assert queried["ok"]
                assert queried["mode"] == "materialized"
                assert queried["doc"] == loaded["doc"]
                stats = await client.call("stats")
                assert stats["doc_queries"] == {
                    "pushed_down": 0, "fallback": 0, "materialized": 1,
                }

    asyncio.run(run())
