"""Sharded serving: affinity routing, cross-shard state, warm starts.

The end-to-end tests here spawn real shard worker processes (the
``spawn`` start method pays an interpreter + import per worker), so
workloads are kept tiny; throughput claims live in
``benchmarks/test_serve_gate.py``, not here.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.loadgen import (
    LoadgenConfig,
    dtd_text,
    generated_schema,
    run_loadgen,
)
from repro.serve.protocol import OPS, UNKNOWN_DOC, ProtocolError
from repro.serve.registry import BUILTIN_SCHEMAS, UnknownSchemaError
from repro.serve.server import ServeConfig, ShardedService
from repro.serve.sharding import (
    builtin_digest,
    partition_preload,
    shard_for,
)

from .util import ServiceClient, running_service

#: Chosen so xmark (shard 0 of 2) and the generated schema (shard 1 of
#: 2) exercise both shards; pinned by test_workload_schemas_spread.
GEN_REF = "gen:11"

PAIRS = [
    ("//title", "delete //price"),
    ("//price", "delete //price"),
    ("/site/people/person/name", "delete //bidder"),
]


def _gen_register_params() -> dict:
    spec = generated_schema(int(GEN_REF.split(":")[1]))
    return {"root": spec.start, "dtd": dtd_text(spec), "name": GEN_REF}


class TestRoutingPrimitives:
    def test_shard_for_is_stable_and_in_range(self):
        digest = builtin_digest("xmark")
        assert shard_for(digest, 1) == 0
        for shards in (2, 3, 7):
            index = shard_for(digest, shards)
            assert 0 <= index < shards
            assert index == shard_for(digest, shards)  # deterministic

    def test_builtin_digests_distinct(self):
        digests = {builtin_digest(name) for name in BUILTIN_SCHEMAS}
        assert len(digests) == len(BUILTIN_SCHEMAS)

    def test_builtin_digest_unknown_name(self):
        with pytest.raises(UnknownSchemaError):
            builtin_digest("nope")

    def test_partition_preload_assigns_owners_only(self):
        names = tuple(BUILTIN_SCHEMAS)
        partitions = partition_preload(names, 3)
        assert sum(len(part) for part in partitions) == len(names)
        for index, part in enumerate(partitions):
            for name in part:
                assert shard_for(builtin_digest(name), 3) == index

    def test_routing_table_covers_every_op(self):
        assert set(ShardedService.ROUTING) == set(OPS)

    def test_route_digest_resolution(self):
        router = ShardedService(ServeConfig(port=0, shards=2))
        assert router._route_digest("xmark") == builtin_digest("xmark")
        literal = "ab" * 32
        assert router._route_digest(literal) == literal
        router._remember_alias("tenant", literal)
        assert router._route_digest("tenant") == literal
        with pytest.raises(UnknownSchemaError):
            router._route_digest("unregistered")

    def test_doc_routing_rejects_foreign_ids(self):
        router = ShardedService(ServeConfig(port=0, shards=2))
        for doc_id in ("d1", "s9-d1", "sX-d1", "shard", ""):
            with pytest.raises(ProtocolError) as err:
                router._link_for_doc(doc_id)
            assert err.value.code == UNKNOWN_DOC


class TestShardLinkFailure:
    def test_dead_link_fails_fast_instead_of_hanging(self):
        """After the shard side of a link dies, in-flight calls get a
        ConnectionError and *later* calls fail immediately -- they must
        never await a response that can no longer arrive."""
        from repro.serve.sharding import ShardLink

        async def run():
            connections = []

            async def handler(reader, writer):
                connections.append(writer)
                await reader.readline()  # swallow one request...
                writer.close()           # ...then die without answering

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            link = ShardLink(0, "127.0.0.1", port)
            await link.connect()
            try:
                with pytest.raises(ConnectionError):
                    await asyncio.wait_for(link.call("ping", {}),
                                           timeout=5)
                with pytest.raises(ConnectionError):
                    # Fail-fast path: no request is even written.
                    await asyncio.wait_for(link.call("ping", {}),
                                           timeout=5)
            finally:
                await link.aclose()
                server.close()
                await server.wait_closed()

        asyncio.run(run())


class TestShardedServiceEndToEnd:
    def test_verdicts_byte_identical_with_unsharded(self):
        """Topology may change speed, never answers."""

        async def run(shards: int):
            async with running_service(
                shards=shards, preload=("xmark",)
            ) as (_, host, port):
                async with ServiceClient(host, port) as client:
                    responses = []
                    for query, update in PAIRS:
                        response = await client.call(
                            "analyze", schema="xmark",
                            query=query, update=update,
                        )
                        responses.append({
                            key: value for key, value in response.items()
                            if key != "id"
                        })
                    return responses

        assert asyncio.run(run(1)) == asyncio.run(run(2))

    def test_workload_schemas_spread_across_shards(self):
        """xmark and the generated schema land on different shards, and
        traffic for each shows up only in its owner's counters."""

        async def run():
            async with running_service(
                shards=2, preload=("xmark",)
            ) as (_, host, port):
                async with ServiceClient(host, port) as client:
                    register = await client.call(
                        "schema.register", **_gen_register_params()
                    )
                    assert register["ok"], register
                    for ref in ("xmark", GEN_REF):
                        response = await client.call(
                            "analyze", schema=ref,
                            query="//*", update="delete //*",
                        )
                        assert response["ok"], response
                    stats = await client.call("stats")
                    listing = await client.call("schema.list")
                    return register, stats, listing

        register, stats, listing = asyncio.run(run())
        assert stats["shards"] == 2
        assert len(stats["per_shard"]) == 2
        routed = {entry["shard"]: entry["routed"]
                  for entry in stats["per_shard"]}
        assert all(count > 0 for count in routed.values()), routed
        # Affinity: each digest's engine exists on exactly one shard.
        gen_digest = register["schema"]
        owners = {
            digest: entry["shard"]
            for entry in stats["per_shard"]
            for digest in entry["registry"]["engines"]
        }
        assert owners[gen_digest] != owners[builtin_digest("xmark")]
        # schema.list is the union of both shards' registries.
        digests = {row["digest"] for row in listing["schemas"]}
        assert {gen_digest, builtin_digest("xmark")} <= digests
        # Aggregated batcher counters cover traffic from both shards.
        assert stats["batcher"]["requests"] >= 2

    def test_doc_ops_route_by_id_prefix(self):
        async def run():
            async with running_service(
                shards=2, preload=("xmark",)
            ) as (_, host, port):
                async with ServiceClient(host, port) as client:
                    await client.call("schema.register",
                                      **_gen_register_params())
                    docs = {}
                    for ref in ("xmark", GEN_REF):
                        loaded = await client.call(
                            "doc.load", schema=ref, bytes=800, seed=1
                        )
                        assert loaded["ok"], loaded
                        docs[ref] = loaded["doc"]
                    view = await client.call(
                        "view.register", doc=docs["xmark"],
                        name="titles", query="//title",
                    )
                    missing = await client.call("view.result",
                                                doc="s0-d99", name="x")
                    unloaded = await client.call("doc.unload",
                                                 doc=docs[GEN_REF])
                    return docs, view, missing, unloaded

        docs, view, missing, unloaded = asyncio.run(run())
        # Ids carry their owning shard: xmark lives on shard 0, the
        # generated schema on shard 1 (same hash the router uses).
        assert docs["xmark"].startswith("s0-")
        assert docs[GEN_REF].startswith("s1-")
        assert view["ok"]
        assert not missing["ok"]
        assert missing["error"]["code"] == "unknown-doc"
        assert unloaded["ok"] and unloaded["unloaded"]

    def test_schema_evict_routes_and_reports(self):
        async def run():
            async with running_service(
                shards=2, preload=("xmark",)
            ) as (_, host, port):
                async with ServiceClient(host, port) as client:
                    await client.call("schema.register",
                                      **_gen_register_params())
                    evicted = await client.call("schema.evict",
                                                schema=GEN_REF)
                    again = await client.call("schema.evict",
                                              schema=GEN_REF)
                    unknown = await client.call("schema.evict",
                                                schema="never-was")
                    return evicted, again, unknown

        evicted, again, unknown = asyncio.run(run())
        assert evicted["ok"] and evicted["evicted"]
        assert again["ok"] and not again["evicted"]
        assert unknown["ok"] and not unknown["evicted"]

    def test_protocol_error_contract_via_router(self):
        async def run():
            async with running_service(
                shards=2, preload=("xmark",)
            ) as (_, host, port):
                async with ServiceClient(host, port) as client:
                    unknown_op = await client.call("no.such.op")
                    unknown_schema = await client.call(
                        "analyze", schema="ghost",
                        query="//a", update="delete //b",
                    )
                    bad_params = await client.call(
                        "analyze", schema="xmark", query="//a"
                    )
                    # The connection survives all three errors.
                    pong = await client.call("ping")
                    return unknown_op, unknown_schema, bad_params, pong

        unknown_op, unknown_schema, bad_params, pong = asyncio.run(run())
        assert unknown_op["error"]["code"] == "unknown-op"
        assert unknown_schema["error"]["code"] == "unknown-schema"
        assert bad_params["error"]["code"] == "bad-params"
        assert pong["ok"] and pong["pong"]

    def test_cross_shard_warm_start(self, tmp_path):
        """Verdicts computed by shard processes serve a different
        topology from the shared store without rebuilding universes."""
        store = str(tmp_path / "verdicts.sqlite")
        spec_params = _gen_register_params()

        async def sharded_run():
            async with running_service(
                shards=2, store_path=store, preload=("xmark",)
            ) as (_, host, port):
                async with ServiceClient(host, port) as client:
                    await client.call("schema.register", **spec_params)
                    for ref in ("xmark", GEN_REF):
                        for query, update in PAIRS:
                            response = await client.call(
                                "analyze", schema=ref,
                                query=query, update=update,
                            )
                            assert response["ok"], response
                    stats = await client.call("stats")
                    return stats["store"]["verdicts"]

        async def replay_unsharded():
            async with running_service(
                store_path=store, preload=("xmark",)
            ) as (_, host, port):
                async with ServiceClient(host, port) as client:
                    await client.call("schema.register", **spec_params)
                    for ref in ("xmark", GEN_REF):
                        for query, update in PAIRS:
                            response = await client.call(
                                "analyze", schema=ref,
                                query=query, update=update,
                            )
                            assert response["ok"], response
                    return await client.call("stats")

        verdicts = asyncio.run(sharded_run())
        assert verdicts > 0
        stats = asyncio.run(replay_unsharded())
        engines = stats["registry"]["engines"].values()
        assert sum(engine["store_hits"] for engine in engines) \
            == 2 * len(PAIRS)
        # The warm-start property: store hits never build universes.
        assert all(engine["universes_built"] == 0 for engine in engines)

    def test_loadgen_multischema_run(self, tmp_path):
        """The two-schema loadgen workload drives a sharded service
        with zero errors and traffic on both shards."""
        store = str(tmp_path / "verdicts.sqlite")

        async def run():
            async with running_service(
                shards=2, store_path=store, preload=("xmark",)
            ) as (_, host, port):
                return await run_loadgen(LoadgenConfig(
                    host=host, port=port,
                    schema=("xmark", GEN_REF), source="bench",
                    n_queries=3, n_updates=3,
                    clients=4, requests=40, seed=5,
                ))

        report = asyncio.run(run())
        assert report["errors"] == 0, report["error_samples"]
        assert report["completed"] == 40
        assert report["service"]["shards"] == 2
        routing = report["service"]["shard_routing"]
        assert sum(1 for count in routing.values() if count > 0) == 2
        assert report["workload"]["schemas"] == ["xmark", GEN_REF]
