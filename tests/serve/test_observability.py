"""Wire-level observability: the ``metrics`` op, trace/timing fields,
the slow-request log, the HTTP scrape listener, and cross-shard merge.

The in-process service shares one process-default registry across
tests, so every count assertion works on before/after deltas of two
``metrics`` snapshots rather than absolute values.
"""

from __future__ import annotations

import asyncio
import json
import socket
import urllib.request

from repro.obs.metrics import histogram_quantile

from ..obs.test_export import validate_exposition
from .util import ServiceClient, running_service

ANALYZE = dict(schema="bib", query="//title", update="delete //price")


def _child(snapshot: dict, family: str, *labelvalues: str) -> dict | None:
    children = snapshot["families"].get(family, {}).get("children", {})
    return children.get(json.dumps(list(labelvalues)))


def _count_delta(before: dict, after: dict, family: str,
                 *labelvalues: str) -> int:
    now = _child(after, family, *labelvalues)
    then = _child(before, family, *labelvalues)
    return (now["count"] if now else 0) - (then["count"] if then else 0)


def test_metrics_op_returns_valid_exposition_and_snapshot():
    async def run():
        async with running_service(preload=("bib",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                before = await client.call("metrics")
                for _ in range(3):
                    response = await client.call("analyze", **ANALYZE)
                    assert response["ok"], response
                await client.call("doc.query", schema="bib", doc="nope",
                                  query="//title")  # error: not found
                after = await client.call("metrics")
        return before, after

    before, after = asyncio.run(run())
    assert before["ok"] and after["ok"]
    validate_exposition(after["text"])
    assert isinstance(after["slow"], list)
    delta = _count_delta(before["snapshot"], after["snapshot"],
                         "repro_request_seconds", "analyze", "service")
    assert delta == 3
    errors = _child(after["snapshot"], "repro_request_errors_total",
                    "doc.query", "unknown-doc", "service")
    assert errors and errors["value"] >= 1
    # The scraped histogram carries a usable latency estimate.
    child = _child(after["snapshot"], "repro_request_seconds",
                   "analyze", "service")
    assert histogram_quantile(child, 0.5) > 0.0


def test_timing_field_reports_per_layer_spans():
    async def run():
        async with running_service(preload=("bib",)) as (_, host, port):
            async with ServiceClient(host, port) as client:
                analyze = await client.call(
                    "analyze", trace="trace-42", timing=True, **ANALYZE
                )
                untimed = await client.call("analyze", **ANALYZE)
                load = await client.call("doc.load", schema="bib",
                                         bytes=4000, seed=1)
                doc = await client.call(
                    "doc.query", schema="bib", doc=load["doc"],
                    query="//title", timing=True,
                )
        return analyze, untimed, doc

    analyze, untimed, doc = asyncio.run(run())
    assert analyze["ok"], analyze
    timing = analyze["timing"]
    assert timing["trace"] == "trace-42"
    names = {span["name"] for span in timing["spans"]}
    assert "engine" in names and "queue_wait" in names
    assert timing["total_ms"] >= 0.0
    # timing is strictly opt-in: the response shape without it is
    # unchanged (the serve-bench overhead gate rides on this).
    assert "timing" not in untimed
    assert {span["name"] for span in doc["timing"]["spans"]} >= {"engine"}


def test_slow_log_records_over_threshold_requests(tmp_path):
    slow_path = tmp_path / "slow.jsonl"

    async def run():
        async with running_service(
            preload=("bib",), slow_ms=0.000001,
            slow_log_path=str(slow_path),
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                assert (await client.call("analyze", **ANALYZE))["ok"]
                return await client.call("metrics")

    metrics = asyncio.run(run())
    slow = [entry for entry in metrics["slow"] if entry["op"] == "analyze"]
    assert slow, metrics["slow"]
    entry = slow[-1]
    assert entry["total_ms"] > 0.0
    assert "engine" in entry["spans"]
    logged = [json.loads(line) for line in
              slow_path.read_text().strip().splitlines()]
    assert any(line["op"] == "analyze" for line in logged)
    counted = _child(metrics["snapshot"], "repro_slow_requests_total",
                     "analyze", "service")
    assert counted and counted["value"] >= 1


def test_http_metrics_listener_serves_exposition():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]

    async def run():
        async with running_service(
            preload=("bib",), metrics_port=free_port,
        ) as (service, host, port):
            assert service.metrics_port == free_port
            async with ServiceClient(host, port) as client:
                assert (await client.call("analyze", **ANALYZE))["ok"]

            def scrape():
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{free_port}/metrics", timeout=10
                ) as response:
                    return (response.status,
                            response.headers["Content-Type"],
                            response.read().decode("utf-8"))

            status, ctype, text = await asyncio.get_running_loop() \
                .run_in_executor(None, scrape)

            def miss():
                try:
                    with urllib.request.urlopen(
                        f"http://127.0.0.1:{free_port}/other", timeout=10
                    ) as response:
                        return response.status
                except urllib.error.HTTPError as error:
                    return error.code

            not_found = await asyncio.get_running_loop() \
                .run_in_executor(None, miss)
        return status, ctype, text, not_found

    status, ctype, text, not_found = asyncio.run(run())
    assert status == 200
    assert ctype.startswith("text/plain; version=0.0.4")
    validate_exposition(text)
    assert "repro_request_seconds_bucket" in text
    assert not_found == 404


def test_sharded_metrics_merge_equals_sum_of_shards(tmp_path):
    async def run():
        async with running_service(
            preload=("bib",), shards=2,
            store_path=str(tmp_path / "verdicts.sqlite"),
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                before = await client.call("metrics")
                for _ in range(4):
                    response = await client.call(
                        "analyze", timing=True, **ANALYZE
                    )
                    assert response["ok"], response
                after = await client.call("metrics")
        return before, after, response

    before, after, analyze = asyncio.run(run())
    validate_exposition(after["text"])
    assert len(after["per_shard"]) == 2
    # Router view == sum of per-shard views: the service-role series
    # only exists in the shard workers, so the run's delta in the
    # merged snapshot must equal the summed per-shard deltas, bucket by
    # bucket.  (Deltas, not absolutes: the router process reuses this
    # test process's registry, which earlier in-process tests fed.)
    def shard_sum(response):
        children = [
            _child(snap, "repro_request_seconds", "analyze", "service")
            for snap in response["per_shard"]
        ]
        present = [child for child in children if child]
        counts = [sum(column) for column in
                  zip(*(child["counts"] for child in present))] \
            if present else []
        return sum(child["count"] for child in present), counts

    merged_delta = _count_delta(before["snapshot"], after["snapshot"],
                                "repro_request_seconds",
                                "analyze", "service")
    before_count, before_counts = shard_sum(before)
    after_count, after_counts = shard_sum(after)
    assert merged_delta == after_count - before_count == 4
    merged_before = _child(before["snapshot"], "repro_request_seconds",
                           "analyze", "service")
    merged_after = _child(after["snapshot"], "repro_request_seconds",
                          "analyze", "service")
    old = (merged_before["counts"] if merged_before
           else [0] * len(merged_after["counts"]))
    if not before_counts:
        before_counts = [0] * len(after_counts)
    assert [now - then for now, then
            in zip(merged_after["counts"], old)] == \
        [now - then for now, then in zip(after_counts, before_counts)]
    # Both wire hops appear, each counting the same 4 requests.
    assert _count_delta(before["snapshot"], after["snapshot"],
                        "repro_request_seconds", "analyze", "router") == 4
    assert _count_delta(before["snapshot"], after["snapshot"],
                        "repro_request_seconds", "analyze", "service") == 4
    # A traced request through the router shows the forwarded hop.
    names = {span["name"] for span in analyze["timing"]["spans"]}
    assert {"router", "shard", "engine"} <= names


def test_metrics_cli_scrapes_the_wire_and_http_listeners(capsys):
    from repro.cli import main

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]

    async def run():
        async with running_service(
            preload=("bib",), metrics_port=free_port,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                assert (await client.call("analyze", **ANALYZE))["ok"]
            # The CLI is synchronous (it owns its own event loop), so
            # it scrapes off-thread while the service keeps serving.
            loop = asyncio.get_running_loop()
            wire = await loop.run_in_executor(
                None, main, ["metrics", f"{host}:{port}"]
            )
            http = await loop.run_in_executor(
                None, main,
                ["metrics", f"http://127.0.0.1:{free_port}", "--raw"],
            )
        return wire, http

    wire, http = asyncio.run(run())
    assert wire == 0 and http == 0
    out = capsys.readouterr().out
    # Wire scrape: the summary table with quantile estimates.
    assert "repro_request_seconds{" in out
    assert "count=" in out and "p50=" in out and "p99=" in out
    # HTTP scrape with --raw: the exposition text verbatim.
    assert "# TYPE repro_request_seconds histogram" in out
