"""Backend-agnostic storage conformance suite.

Every test in this module runs identically against the memory and
sqlite backends (tier-1), and against PostgreSQL when ``REPRO_PG_DSN``
is set (the CI service-container leg).  The suite pins the storage
interface of :mod:`repro.storage.base`: verdict round-trips and
engine warm-starts, node-table save/load/compact, in-database axis
traversals, catalog operations, cross-instance visibility, and
busy-writer behavior under a held group-commit transaction.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.analysis.engine import AnalysisEngine, PairVerdict
from repro.docstore.adapter import apply_update_indexed
from repro.docstore.streamload import load_xml
from repro.docstore.pushdown import (
    compile_query,
    run_steps_on_tree,
    serialize_answers,
)
from repro.schema import bib_dtd, xmark_dtd
from repro.storage import StepSpec, open_store
from repro.xmldm import generate_document, serialize

PG_DSN = os.environ.get("REPRO_PG_DSN", "")

BACKENDS = [
    "memory",
    "sqlite",
    pytest.param(
        "postgres",
        marks=pytest.mark.skipif(
            not PG_DSN, reason="REPRO_PG_DSN not set"
        ),
    ),
]

PAIRS = [
    ("//title", "delete //price"),
    ("//price", "delete //price"),
    ("/bib/book/author", "delete //editor"),
]


def _verdict(independent: bool = True) -> PairVerdict:
    return PairVerdict(independent=independent, k=3, k_query=1,
                       k_update=2, analysis_seconds=0.123)


def _indexed(dtd, byts, seed):
    tree = generate_document(dtd, byts, seed=seed)
    return load_xml(serialize(tree.store, tree.root)).tree


def _reset_postgres(dsn: str) -> None:
    """Drop the suite's tables so every test starts from nothing."""
    backend = open_store(dsn)
    try:
        connection = backend._connection
        for table in ("verdicts", "nodes", "documents"):
            connection.execute(f"DROP TABLE IF EXISTS {table}")
        connection.commit()
    finally:
        backend.close()


@pytest.fixture(params=BACKENDS)
def make_backend(request, tmp_path):
    """A factory opening (and re-opening) one backend target.

    Calling it twice models a restart: sqlite/postgres reopen the same
    durable target; memory -- per-process by design -- returns the
    same live object, which preserves the restart *semantics* the
    tests exercise (two engine instances over one store).
    """
    kind = request.param
    opened = []
    if kind == "memory":
        from repro.storage.memory import MemoryBackend

        shared = MemoryBackend()
        opened.append(shared)

        def factory():
            return shared
    elif kind == "sqlite":
        url = f"sqlite:///{tmp_path}/store.db"

        def factory():
            backend = open_store(url)
            opened.append(backend)
            return backend
    else:
        _reset_postgres(PG_DSN)

        def factory():
            backend = open_store(PG_DSN)
            opened.append(backend)
            return backend

    factory.kind = kind
    yield factory
    for backend in opened:
        backend.close()


class TestVerdictConformance:
    def test_miss_returns_none(self, make_backend):
        assert make_backend().verdicts.get("d", 1, "q", "u") is None

    def test_put_then_get_fields(self, make_backend):
        kv = make_backend().verdicts
        kv.put("d", 3, "q", "u", _verdict())
        verdict = kv.get("d", 3, "q", "u")
        assert verdict.independent is True
        assert (verdict.k, verdict.k_query, verdict.k_update) == (3, 1, 2)
        # Timing is not persisted: stored verdicts are free.
        assert verdict.analysis_seconds == 0.0

    def test_key_is_four_dimensional(self, make_backend):
        kv = make_backend().verdicts
        kv.put("d", 3, "q", "u", _verdict(True))
        kv.put("d", 4, "q", "u", _verdict(False))
        kv.put("e", 3, "q", "u", _verdict(False))
        assert kv.get("d", 3, "q", "u").independent
        assert not kv.get("d", 4, "q", "u").independent
        assert not kv.get("e", 3, "q", "u").independent
        assert kv.get("d", 3, "q", "other") is None

    def test_overwrite_updates_in_place(self, make_backend):
        kv = make_backend().verdicts
        kv.put("d", 3, "q", "u", _verdict(True))
        kv.put("d", 3, "q", "u", _verdict(False))
        assert kv.count() == 1
        assert not kv.get("d", 3, "q", "u").independent

    def test_count_stats_and_scan(self, make_backend):
        kv = make_backend().verdicts
        kv.put("d", 3, "q", "u", _verdict())
        kv.put("d", 3, "q2", "u", _verdict())
        kv.put("e", 3, "q", "u", _verdict(False))
        assert kv.count() == 3
        assert kv.count("d") == 2
        assert kv.stats()["verdicts"] == 3
        rows = list(kv.scan())
        assert len(rows) == 3
        assert rows[0][:4] == ("d", 3, "q", "u")
        assert all(isinstance(r[4], PairVerdict) for r in rows)
        only_e = list(kv.scan("e"))
        assert len(only_e) == 1 and not only_e[0][4].independent

    def test_deferred_commits_once_and_nests(self, make_backend):
        kv = make_backend().verdicts
        with kv.deferred():
            with kv.deferred():
                kv.put("d", 3, "q", "u", _verdict())
            kv.put("d", 3, "q2", "u", _verdict())
        assert kv.count() == 2

    def test_rows_survive_reopen(self, make_backend):
        make_backend().verdicts.put("d", 3, "q", "u", _verdict(False))
        reopened = make_backend().verdicts
        verdict = reopened.get("d", 3, "q", "u")
        assert verdict is not None and not verdict.independent

    def test_engine_warm_start(self, make_backend, bib):
        """The acceptance pin: a cold engine attached to a warm store
        serves every already-seen pair without building a universe."""
        warm_backend = make_backend()
        warm = AnalysisEngine(bib)
        warm.attach_store(warm_backend.verdicts)
        expected = [
            warm.analyze_pair(q, u, collect_witnesses=False).independent
            for q, u in PAIRS
        ]
        assert warm.stats.store_writes == len(PAIRS)
        assert warm.stats.universes_built >= 1

        cold = AnalysisEngine(bib)
        cold.attach_store(make_backend().verdicts)
        served = [
            cold.analyze_pair(q, u, collect_witnesses=False).independent
            for q, u in PAIRS
        ]
        assert served == expected
        assert cold.stats.store_hits == len(PAIRS)
        assert cold.stats.universes_built == 0

    def test_engine_accepts_whole_backend(self, make_backend, bib):
        """attach_store unwraps a StorageBackend to its verdict KV."""
        backend = make_backend()
        engine = AnalysisEngine(bib)
        engine.attach_store(backend)
        assert engine.store is backend.verdicts
        engine.analyze_pair(*PAIRS[0], collect_witnesses=False)
        assert backend.verdicts.count() == 1

    def test_busy_writer_waits_out_a_held_transaction(self,
                                                      make_backend):
        """A writer arriving while another connection holds a deferred
        group-commit transaction must wait it out (not fail), and both
        writes must land."""
        first = make_backend().verdicts
        second = make_backend().verdicts
        entered = threading.Event()

        def competing_write():
            entered.wait(5)
            second.put("d", 3, "q2", "u", _verdict(False))

        thread = threading.Thread(target=competing_write)
        thread.start()
        with first.deferred():
            first.put("d", 3, "q1", "u", _verdict())
            entered.set()
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert first.count() == 2
        assert second.get("d", 3, "q1", "u") is not None


class TestDocumentConformance:
    def test_save_load_round_trip(self, make_backend):
        tree = _indexed(xmark_dtd(), 20_000, 3)
        documents = make_backend().documents
        rows = documents.save("doc", tree, "digest-a", nodes_seen=999,
                              subtrees_skipped=7,
                              meta={"projected": True})
        assert rows == len(tree.store)
        loaded, stored = make_backend().documents.load("doc")
        assert serialize(loaded.store, loaded.root) == \
            serialize(tree.store, tree.root)
        assert stored.schema_digest == "digest-a"
        assert stored.nodes_seen == 999
        assert stored.subtrees_skipped == 7
        assert stored.meta == {"projected": True}

    def test_loaded_tree_does_not_alias_saved_tree(self, make_backend):
        tree = _indexed(bib_dtd(), 4_000, 5)
        documents = make_backend().documents
        documents.save("doc", tree, "d")
        loaded, _ = documents.load("doc")
        before = serialize(tree.store, tree.root)
        apply_update_indexed("delete //title", loaded)
        # Mutating the loaded copy must not corrupt the persisted one.
        again, _ = documents.load("doc")
        assert serialize(again.store, again.root) == before

    def test_mutated_tree_compacts_on_save(self, make_backend):
        tree = _indexed(xmark_dtd(), 20_000, 3)
        apply_update_indexed("delete //emailaddress", tree)
        live = tree.size()
        assert live < len(tree.store)  # garbage exists pre-compaction
        documents = make_backend().documents
        rows = documents.save("doc", tree, "digest-c")
        assert rows == live
        loaded, _ = documents.load("doc")
        assert serialize(loaded.store, loaded.root) == \
            serialize(tree.store, tree.root)

    def test_overwrite_replaces_rows(self, make_backend):
        small = _indexed(bib_dtd(), 2_000, 5)
        big = _indexed(bib_dtd(), 8_000, 6)
        documents = make_backend().documents
        documents.save("doc", big, "d")
        documents.save("doc", small, "d")
        loaded, stored = documents.load("doc")
        assert serialize(loaded.store, loaded.root) == \
            serialize(small.store, small.root)
        assert stored.nodes == len(small.store)

    def test_catalog_miss_counters_list_delete(self, make_backend):
        documents = make_backend().documents
        assert documents.load("missing") is None
        tree = _indexed(bib_dtd(), 2_000, 5)
        documents.save("a", tree, "d1")
        documents.save("b", tree, "d2")
        documents.load("a")
        stats = documents.stats()
        assert stats["documents"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["saves"] == 2
        assert stats["nodes"] == 2 * len(tree.store)
        assert [d.doc for d in documents.list_documents()] == ["a", "b"]
        assert documents.delete("a") is True
        assert documents.delete("a") is False
        assert documents.describe("a") is None
        assert documents.describe("b") is not None


class TestTraversalConformance:
    """In-database axis traversals over the persisted node table
    (recursive CTE / interval range scan in the SQL backends) must
    agree with the materialized tree's own structure."""

    @pytest.fixture()
    def persisted(self, make_backend):
        tree = _indexed(xmark_dtd(), 12_000, 4)
        documents = make_backend().documents
        documents.save("doc", tree, "d")
        return documents, tree

    def test_descendants_match_interval_encoding(self, persisted):
        documents, tree = persisted
        store = tree.store
        for loc in (tree.root, 1, len(store) // 2):
            size = store._size[loc]
            expected = list(range(loc + 1, loc + size))
            assert documents.descendants("doc", loc) == expected

    def test_descendants_tag_filter(self, persisted):
        documents, tree = persisted
        store = tree.store
        got = documents.descendants("doc", tree.root, tag="emailaddress")
        expected = [loc for loc in range(1, len(store))
                    if store._tags[loc] == "emailaddress"]
        assert got == expected and got  # non-trivial on xmark

    def test_ancestors_match_parent_chain(self, persisted):
        documents, tree = persisted
        store = tree.store
        leaf = max(range(len(store)), key=lambda loc: store._level[loc])
        chain = []
        parent = store._parent[leaf]
        while parent is not None:
            chain.append(parent)
            parent = store._parent[parent]
        assert documents.ancestors("doc", leaf) == sorted(chain)
        assert documents.ancestors("doc", tree.root) == []


class TestRunStepsConformance:
    """The ``run_steps`` backend op (SQL pushdown in the SQL backends,
    axis accelerators in the memory backend) must agree across
    backends and with the in-memory reference on nested-loop order,
    duplicate multiplicity, positional predicates, dedup, and empty
    results."""

    #: Pushdown-eligible surface queries exercised against xmark.
    QUERIES = (
        "//emailaddress",
        "/site/people/person/name",
        "//person/name",
        "//text()",
        "//open_auction//increase",
        "/site/regions//item",
        "//*",
    )

    #: Nested same-tag document: ``//a//c`` has real duplicates.
    NESTED = ("<r><a>one<a><c>x</c><a><c>deep</c></a></a><c>top</c></a>"
              "<b><c>bc</c></b><a><c>last</c></a></r>")

    @pytest.fixture()
    def persisted(self, make_backend):
        tree = _indexed(xmark_dtd(), 12_000, 4)
        documents = make_backend().documents
        documents.save("doc", tree, "d")
        return documents, tree

    def test_queries_match_reference_and_serialize(self, persisted):
        documents, tree = persisted
        for source in self.QUERIES:
            steps = compile_query(source)
            assert steps is not None, source
            expected = run_steps_on_tree(tree, steps)
            got = documents.run_steps("doc", steps)
            assert got == expected, source
            head = got[:5]
            assert serialize_answers(documents, "doc", head) == \
                [serialize(tree.store, loc) for loc in head], source

    def test_duplicates_preserved_and_dedup_collapses(self,
                                                      make_backend):
        tree = load_xml(self.NESTED).tree
        documents = make_backend().documents
        documents.save("nested", tree, "d")
        steps = compile_query("//a//c")
        expected = run_steps_on_tree(tree, steps)
        # The nested-loop semantics really produce duplicates here.
        assert len(expected) > len(set(expected))
        assert documents.run_steps("nested", steps) == expected
        deduped = documents.run_steps("nested", steps, dedup=True)
        assert deduped == sorted(set(expected))  # document order
        assert deduped == run_steps_on_tree(tree, steps, dedup=True)

    def test_positional_predicates(self, persisted):
        documents, tree = persisted
        chains = (
            [StepSpec("descendant", "name", "person"),
             StepSpec("child", "node", position=1)],
            [StepSpec("descendant", "name", "person", position=2)],
            [StepSpec("descendant-child", "name", "person"),
             StepSpec("child", "name", "name", position=1)],
        )
        for steps in chains:
            expected = run_steps_on_tree(tree, steps)
            assert expected, steps  # non-trivial on xmark
            assert documents.run_steps("doc", steps) == expected, steps

    def test_empty_results(self, persisted):
        documents, _ = persisted
        ghost = [StepSpec("descendant", "name", "no-such-tag")]
        assert documents.run_steps("doc", ghost) == []
        assert documents.run_steps("doc", ghost, dedup=True) == []
        # A position past the last match is empty, not an error.
        past = [StepSpec("child", "node", position=99)]
        assert documents.run_steps("doc", past) == []

    def test_missing_document_raises_keyerror(self, make_backend):
        documents = make_backend().documents
        with pytest.raises(KeyError):
            documents.run_steps("ghost", [StepSpec("child", "name", "a")])
        with pytest.raises(KeyError):
            documents.subtree_rows("ghost", 0)

    def test_malformed_chains_rejected(self, make_backend):
        documents = make_backend().documents
        documents.save("doc", _indexed(bib_dtd(), 2_000, 5), "d")
        for bad in ([],
                    [StepSpec("parent", "name", "a")],
                    [StepSpec("child", "bogus")],
                    [StepSpec("child", "name")],
                    [StepSpec("child", "text", "a")],
                    [StepSpec("child", "name", "a", position=0)]):
            with pytest.raises(ValueError):
                documents.run_steps("doc", bad)

    def test_subtree_rows_round_trip(self, persisted):
        documents, tree = persisted
        rows = documents.subtree_rows("doc", 0)
        assert [r[0] for r in rows] == list(range(len(tree.store)))
        some = documents.run_steps(
            "doc", compile_query("//emailaddress"))[0]
        slice_rows = documents.subtree_rows("doc", some)
        assert slice_rows[0][0] == some
        assert len(slice_rows) == slice_rows[0][3]  # size includes self


class TestSqlitePragmas:
    """Satellite pin: the consolidated connection factory ends the
    VerdictStore/DocumentBackend pragma drift -- every file-backed
    sqlite connection (backend, legacy adapters alike) gets the same
    pragmas."""

    def _pragmas(self, connection):
        from repro.storage.sqlite import PRAGMAS

        return {
            pragma: connection.execute(
                f"PRAGMA {pragma}"
            ).fetchone()[0]
            for pragma, _ in PRAGMAS
        }

    def test_pinned_values(self):
        from repro.storage.sqlite import PRAGMAS

        assert dict(PRAGMAS) == {
            "journal_mode": "wal",
            "busy_timeout": 10000,
            "synchronous": 1,  # NORMAL
            "mmap_size": 268435456,
        }

    def test_every_file_connection_gets_them(self, tmp_path):
        from repro.docstore.backend import DocumentBackend
        from repro.serve.store import VerdictStore
        from repro.storage.sqlite import PRAGMAS, SqliteBackend

        expected = dict(PRAGMAS)
        with SqliteBackend(str(tmp_path / "a.db")) as backend:
            assert self._pragmas(backend._connection) == expected
        with VerdictStore(str(tmp_path / "b.db")) as store:
            assert self._pragmas(store._connection) == expected
        with DocumentBackend(str(tmp_path / "c.db")) as docs:
            assert self._pragmas(docs._conn) == expected

    def test_memory_connections_skip_file_pragmas(self):
        from repro.serve.store import VerdictStore

        with VerdictStore() as store:
            mode = store._connection.execute(
                "PRAGMA journal_mode"
            ).fetchone()[0]
            assert mode == "memory"


class TestSqliteCrossProcess:
    """The multi-process sharing property the sharded service relies
    on: a second *process* opening the same sqlite store URL sees
    committed rows and can write alongside a busy writer."""

    def test_second_process_reads_and_writes(self, tmp_path):
        import subprocess
        import sys

        db = str(tmp_path / "shared.db")
        with open_store(f"sqlite:///{db}") as backend:
            backend.verdicts.put("d", 3, "q", "u", _verdict())
            script = (
                "from repro.storage import open_store\n"
                "from repro.analysis.engine import PairVerdict\n"
                f"backend = open_store('sqlite:///{db}')\n"
                "assert backend.verdicts.get('d', 3, 'q', 'u') "
                "is not None\n"
                "backend.verdicts.put('d', 3, 'q2', 'u', PairVerdict("
                "independent=False, k=3, k_query=1, k_update=1, "
                "analysis_seconds=0.0))\n"
                "backend.close()\n"
            )
            result = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, timeout=60,
            )
            assert result.returncode == 0, result.stderr
            assert backend.verdicts.count() == 2
            assert not backend.verdicts.get("d", 3, "q2", "u").independent
