"""Sharded serving over one PostgreSQL store (live-server gated).

The acceptance test for the ``postgresql://`` backend's reason to
exist: verdicts computed by a **2-shard** service through one
PostgreSQL server must warm-start an **unsharded** replay of the same
workload -- every pair served from the store (``store_hits ==
pairs``), zero universes rebuilt.  This mirrors
``tests/serve/test_sharding.py::test_cross_shard_warm_start`` with the
shared WAL file swapped for a shared server, proving the two backends
are interchangeable at the topology level.

Runs only when ``REPRO_PG_DSN`` points at a live server (the CI
postgres job sets it); the tables are dropped first so every run
starts cold.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from tests.serve.test_sharding import GEN_REF, PAIRS, _gen_register_params
from tests.serve.util import ServiceClient, running_service

PG_DSN = os.environ.get("REPRO_PG_DSN", "")

pytestmark = pytest.mark.skipif(
    not PG_DSN, reason="REPRO_PG_DSN not set (no live PostgreSQL)"
)


@pytest.fixture()
def cold_pg_store() -> str:
    """The live server's DSN with this suite's tables dropped."""
    from repro.storage import open_store

    backend = open_store(PG_DSN)
    try:
        with backend._lock:
            with backend._connection.cursor() as cursor:
                for table in ("verdicts", "nodes", "documents"):
                    cursor.execute(f"DROP TABLE IF EXISTS {table}")
            backend._connection.commit()
    finally:
        backend.close()
    return PG_DSN


def test_two_shard_pg_warm_starts_unsharded_replay(cold_pg_store):
    """Shard processes write one PostgreSQL store; a later unsharded
    service replays the workload entirely from it."""
    spec_params = _gen_register_params()

    async def drive(**config_kwargs) -> dict:
        async with running_service(
            store_path=cold_pg_store, preload=("xmark",),
            **config_kwargs,
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                await client.call("schema.register", **spec_params)
                for ref in ("xmark", GEN_REF):
                    for query, update in PAIRS:
                        response = await client.call(
                            "analyze", schema=ref,
                            query=query, update=update,
                        )
                        assert response["ok"], response
                stats = await client.call("stats")
                assert stats["ok"], stats
                return stats

    sharded = asyncio.run(drive(shards=2))
    assert sharded["store"]["verdicts"] >= 2 * len(PAIRS)

    replay = asyncio.run(drive())
    engines = replay["registry"]["engines"].values()
    pairs = 2 * len(PAIRS)
    assert sum(engine["store_hits"] for engine in engines) == pairs
    # The warm-start property: store hits never build universes.
    assert all(engine["universes_built"] == 0 for engine in engines)


def test_pg_document_persists_across_services(cold_pg_store):
    """A document persisted through one service is served
    ``from_store`` by a fresh service over the same server."""

    async def save() -> dict:
        async with running_service(
            store_path=cold_pg_store, preload=("xmark",),
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                loaded = await client.call(
                    "doc.load", schema="xmark", doc="pg-doc",
                    bytes=2000, seed=3,
                )
                assert loaded["ok"], loaded
                return loaded

    async def reload() -> dict:
        async with running_service(
            store_path=cold_pg_store, preload=("xmark",),
        ) as (_, host, port):
            async with ServiceClient(host, port) as client:
                reloaded = await client.call(
                    "doc.load", schema="xmark", doc="pg-doc",
                )
                assert reloaded["ok"], reloaded
                return reloaded

    saved = asyncio.run(save())
    served = asyncio.run(reload())
    assert served["from_store"] is True
    assert served["nodes"] == saved["nodes"]
