"""Figure 3.b -- precision of the two static analyses.

Regenerates the precision series (percentage of truly independent
(update, view) pairs detected) and asserts the paper's qualitative
findings: the chain analysis is always at least as precise as the type
baseline [6], with high average precision.  The benchmark measures the
full 31x36 static grid computation.

Absolute percentages depend on the rewritten workload and the ground-
truth corpus (see EXPERIMENTS.md); the paper reports avg 96% (chains)
vs 49% (types).
"""

from repro.bench.harness import (
    compute_grid,
    compute_ground_truth,
    run_fig3b,
)
import io

import pytest


@pytest.fixture(scope="module")
def grid():
    return compute_grid()


@pytest.fixture(scope="module")
def truth():
    # Reduced corpus for benchmark runtime; the harness CLI uses the
    # full configuration.
    return compute_ground_truth(corpus_size=3, document_bytes_target=5_000)


def test_grid_computation_time(benchmark):
    result = benchmark.pedantic(compute_grid, rounds=1, iterations=1)
    assert len(result.chains_independent) == 31 * 36


def test_precision_series(grid, truth, capsys):
    out = io.StringIO()
    results = run_fig3b(grid, truth, out=out)
    print(out.getvalue())

    chains_pcts = [c for c, _ in results.values()]
    types_pcts = [t for _, t in results.values()]
    chains_avg = sum(chains_pcts) / len(chains_pcts)
    types_avg = sum(types_pcts) / len(types_pcts)

    # Paper shape: chains outperform types on average and per update.
    assert chains_avg > types_avg
    assert chains_avg >= 85.0
    for update, (chains_pct, types_pct) in results.items():
        assert chains_pct >= types_pct, update


def test_soundness_on_benchmark(grid, truth):
    """No pair may be statically independent but dynamically dependent."""
    for pair, independent in grid.chains_independent.items():
        if independent:
            assert truth[pair], f"unsound chain verdict on {pair}"
