"""Serving-layer acceptance gate for the serve PR.

On the 20-view x 20-update XMark workload driven closed-loop over
loopback TCP, the micro-batched service must reach >= 3x the throughput
of the batching-disabled configuration (stateless one-shot request
handling -- the service you would run without the engine/serving
layers), with byte-identical verdicts across every mode.  On this
workload the typical observed margin is 6-10x; the engine-no-batching
mode is also measured and must at least not be slower than one-shot, so
the report keeps the queue's own contribution separate from the
engine's.
"""

import asyncio
import json

from repro.bench.serve_bench import run_serve_bench_async

#: The acceptance threshold from the issue.
REQUIRED_SPEEDUP = 3.0

#: Trimmed workload: same 20x20 XMark pool as the committed
#: BENCH_serve.json point, fewer requests to keep the gate quick.
WORKLOAD = dict(n_queries=20, n_updates=20, clients=32,
                requests=800, seed=7)

_RESULTS: dict | None = None


def results() -> dict:
    """The shared three-mode run, executed lazily on first use (module
    import and `--collect-only` stay side-effect free)."""
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = asyncio.run(run_serve_bench_async(WORKLOAD))
    return _RESULTS


def test_all_modes_complete_without_errors():
    for mode, row in results()["modes"].items():
        assert row["errors"] == 0, f"{mode}: {row['errors']} errors"


def test_verdicts_byte_identical_across_modes():
    assert results()["verdicts_identical"], (
        "batched / engine / oneshot services returned different verdicts"
    )


def test_batched_coalesces_and_unbatched_does_not():
    modes = results()["modes"]
    assert modes["batched"]["batches"] > 0
    assert modes["batched"]["coalesced_requests"] > 0
    assert modes["engine"]["batches"] == 0
    assert modes["oneshot"]["batches"] == 0


def test_batched_service_three_x_over_batching_disabled():
    speedup = results()["speedup_vs_oneshot"]
    print("\n" + json.dumps(
        {mode: round(row["throughput_rps"], 1)
         for mode, row in results()["modes"].items()}
    ) + f"  speedup {speedup:.1f}x")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"micro-batched service reached only {speedup:.2f}x the "
        f"batching-disabled throughput (gate: {REQUIRED_SPEEDUP}x)"
    )


def test_engine_mode_not_slower_than_oneshot():
    # Not a timing-sensitive check: the shared engine beats per-request
    # one-shot by ~9x (universe/inference amortization), so this only
    # catches a wiring regression, not scheduler jitter.
    engine = results()["modes"]["engine"]["throughput_rps"]
    oneshot = results()["modes"]["oneshot"]["throughput_rps"]
    assert engine > oneshot, (
        "shared-engine mode should already beat stateless one-shot"
    )
