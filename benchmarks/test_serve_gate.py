"""Serving-layer acceptance gates: micro-batching and sharding.

**Micro-batching gate (PR 3):** on the 20-view x 20-update XMark
workload driven closed-loop over loopback TCP, the micro-batched
service must reach >= 3x the throughput of the batching-disabled
configuration (stateless one-shot request handling -- the service you
would run without the engine/serving layers), with byte-identical
verdicts across every mode.  On this workload the typical observed
margin is 6-10x; the engine-no-batching mode is also measured and must
at least not be slower than one-shot, so the report keeps the queue's
own contribution separate from the engine's.

**Shard gate (PR 4):** on the two-schema workload (XMark plus a
deterministic generated schema, hashing to different shards), the
2-shard service must reach >= 1.6x single-shard throughput --
byte-identical verdicts across shard counts on *any* machine; the
throughput ratio itself is only asserted on >= 2 cores, because on one
core two shard processes merely time-slice.
"""

import asyncio
import json

import pytest

from repro.bench.serve_bench import (
    available_cores,
    run_serve_bench_async,
    run_shard_bench_async,
)

#: The micro-batching acceptance threshold from the PR 3 issue.
REQUIRED_SPEEDUP = 3.0

#: The shard acceptance threshold from the PR 4 issue: 2 shards must
#: buy >= 1.6x on >= 2 cores.
REQUIRED_SHARD_SPEEDUP = 1.6

#: Trimmed workload: same 20x20 XMark pool as the committed
#: BENCH_serve.json point, fewer requests to keep the gate quick.
WORKLOAD = dict(n_queries=20, n_updates=20, clients=32,
                requests=800, seed=7)

#: Trimmed two-schema shard workload (same shape as the committed
#: point's sharding section).
SHARD_WORKLOAD = dict(requests=600)

_RESULTS: dict | None = None
_SHARD_RESULTS: dict | None = None


def results() -> dict:
    """The shared three-mode run, executed lazily on first use (module
    import and `--collect-only` stay side-effect free)."""
    global _RESULTS
    if _RESULTS is None:
        _RESULTS = asyncio.run(run_serve_bench_async(WORKLOAD))
    return _RESULTS


def shard_results() -> dict:
    """The shared 1-shard vs 2-shard run (lazy, like :func:`results`)."""
    global _SHARD_RESULTS
    if _SHARD_RESULTS is None:
        _SHARD_RESULTS = asyncio.run(
            run_shard_bench_async(shards=2, workload=SHARD_WORKLOAD)
        )
    return _SHARD_RESULTS


def test_all_modes_complete_without_errors():
    for mode, row in results()["modes"].items():
        assert row["errors"] == 0, f"{mode}: {row['errors']} errors"


def test_verdicts_byte_identical_across_modes():
    assert results()["verdicts_identical"], (
        "batched / engine / oneshot services returned different verdicts"
    )


def test_batched_coalesces_and_unbatched_does_not():
    modes = results()["modes"]
    assert modes["batched"]["batches"] > 0
    assert modes["batched"]["coalesced_requests"] > 0
    assert modes["engine"]["batches"] == 0
    assert modes["oneshot"]["batches"] == 0


def test_batched_service_three_x_over_batching_disabled():
    speedup = results()["speedup_vs_oneshot"]
    print("\n" + json.dumps(
        {mode: round(row["throughput_rps"], 1)
         for mode, row in results()["modes"].items()}
    ) + f"  speedup {speedup:.1f}x")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"micro-batched service reached only {speedup:.2f}x the "
        f"batching-disabled throughput (gate: {REQUIRED_SPEEDUP}x)"
    )


def test_engine_mode_not_slower_than_oneshot():
    # Not a timing-sensitive check: the shared engine beats per-request
    # one-shot by ~9x (universe/inference amortization), so this only
    # catches a wiring regression, not scheduler jitter.
    engine = results()["modes"]["engine"]["throughput_rps"]
    oneshot = results()["modes"]["oneshot"]["throughput_rps"]
    assert engine > oneshot, (
        "shared-engine mode should already beat stateless one-shot"
    )


# -- shard gate ---------------------------------------------------------------


def test_shard_runs_complete_without_errors():
    for count, row in shard_results()["shard_counts"].items():
        assert row["errors"] == 0, f"{count} shard(s): errors"


def test_shard_verdicts_byte_identical_across_shard_counts():
    """Topology may change speed, never answers -- on any core count."""
    assert shard_results()["verdicts_identical"], (
        "1-shard and 2-shard services returned different verdicts"
    )


def test_two_schema_traffic_spreads_across_shards():
    routing = shard_results()["shard_counts"]["2"]["shard_routing"]
    busy = sum(1 for routed in routing.values() if routed > 0)
    assert busy == 2, (
        f"two-schema workload reached only {busy} shard(s): {routing}"
    )


@pytest.mark.skipif(
    available_cores() < 2,
    reason="shard throughput gate needs >= 2 cores "
           f"(this runner has {available_cores()})",
)
def test_two_shards_one_point_six_x_over_single_shard():
    sharding = shard_results()
    print("\n" + json.dumps(
        {count: round(row["throughput_rps"], 1)
         for count, row in sharding["shard_counts"].items()}
    ) + f"  shard speedup {sharding['shard_speedup']:.2f}x "
        f"on {sharding['cores']} cores")
    assert sharding["shard_speedup"] >= REQUIRED_SHARD_SPEEDUP, (
        f"2-shard service reached only {sharding['shard_speedup']:.2f}x "
        f"single-shard throughput (gate: {REQUIRED_SHARD_SPEEDUP}x)"
    )
