"""Figure 3.c -- view re-materialization time saved by the analysis.

The paper reports, per engine and document size, the average time to
refresh all 36 views after an update (``full``) against refreshing only
the views not proven independent by [6] (``types``) and by the chain
analysis (``chains``); chains save 75-85%, types 31-37%, stable across
1/10/100 MB.  Here one Python-evaluator "engine" replaces the three
commercial engines (see DESIGN.md section 5) at reduced scales; the
shape to reproduce is full > types > chains with scale-stable ratios.
"""

import io

import pytest

from repro.bench.harness import compute_grid, run_fig3c
from repro.bench.views import parsed_views
from repro.schema import xmark_dtd
from repro.xmldm.generator import generate_document
from repro.xquery.ast import ROOT_VAR
from repro.xquery.evaluator import evaluate_query


@pytest.fixture(scope="module")
def grid():
    return compute_grid()


def test_refresh_all_views_small_document(benchmark):
    """The ``full`` bar: evaluate all 36 views on one document."""
    tree = generate_document(xmark_dtd(), 30_000, seed=42)
    views = parsed_views()
    env = {ROOT_VAR: [tree.root]}

    def refresh_all():
        return [
            len(evaluate_query(view, tree.store, env))
            for view in views.values()
        ]

    counts = benchmark.pedantic(refresh_all, rounds=3, iterations=1)
    assert len(counts) == 36


def test_maintenance_savings_shape(grid):
    out = io.StringIO()
    results = run_fig3c(
        grid, scales=(("S", 30_000), ("M", 90_000)), out=out
    )
    print(out.getvalue())
    for label, averages in results.items():
        assert averages["full"] > averages["types"] > averages["chains"], \
            label
        save_chains = 1 - averages["chains"] / averages["full"]
        save_types = 1 - averages["types"] / averages["full"]
        # Chains must save substantially more than types (paper: ~80% vs
        # ~35%); exact ratios depend on the generated documents.
        assert save_chains > save_types
        assert save_chains > 0.5

    # Savings are roughly scale-stable (the paper: "essentially the same
    # percentages" at 1, 10 and 100 MB).
    ratios = [
        1 - averages["chains"] / averages["full"]
        for averages in results.values()
    ]
    assert max(ratios) - min(ratios) < 0.25
