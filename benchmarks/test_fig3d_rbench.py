"""Figure 3.d -- scalability on the R-benchmark.

Parametric schemas ``dn`` (n fully mutually recursive types) and paths
``em`` (m descendant::node() steps), with k ranging over
{|em|, |em|+5, |em|+10}.  The paper reports sub-second inference up to
d5/e5 and seconds for d10/e10-class configurations; the shape to
reproduce is inference time growing with n, m and k while staying
practical for realistic recursion (and XMark remaining fast even at
m=10).
"""

import pytest

from repro.bench.rbench import descendant_path, infer_time, recursive_schema
from repro.schema import xmark_dtd
from repro.analysis.independence import build_universe
from repro.analysis.infer_query import QueryInference
from repro.xquery.ast import ROOT_VAR

#: Reduced grid for the benchmark suite; the harness CLI runs the full
#: paper grid (n up to 20, m up to 10, k up to m+10).
GRID = [
    (1, 1, 1), (1, 5, 5), (1, 5, 15),
    (3, 5, 5), (3, 5, 15),
    (5, 5, 5), (5, 5, 15),
    (10, 5, 5),
]


@pytest.mark.parametrize("n,m,k", GRID)
def test_rbench_inference(benchmark, n, m, k):
    schema = recursive_schema(n)
    query = descendant_path(m)

    def run():
        engine = QueryInference(build_universe(schema, k))
        return engine.infer_root(query, ROOT_VAR)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.returns  # descendant::node() always selects something


@pytest.mark.parametrize("m,k", [(1, 11), (5, 15), (10, 20)])
def test_xmark_inference(benchmark, m, k):
    """The XMark column of Figure 3.d."""
    schema = xmark_dtd()
    query = descendant_path(m)

    def run():
        engine = QueryInference(build_universe(schema, k))
        return engine.infer_root(query, ROOT_VAR)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    assert result.returns


def test_growth_shape():
    """Inference time grows with n at fixed (m, k) -- the figure's trend."""
    times = {
        n: infer_time(recursive_schema(n), 5, 10) for n in (1, 5, 10)
    }
    assert times[10] > times[1]
