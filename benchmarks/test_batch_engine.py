"""Batch engine amortization -- the acceptance gate for the engine PR.

On a 10-query x 10-update XMark workload, one ``analyze_matrix`` call on
a cold engine must produce identical verdicts at >= 3x lower amortized
per-pair time than 100 one-shot ``analyze()`` calls (each of which
re-derives the universe and both chain inferences, the seed behavior).
Typical observed margin is 3.5-4.5x; the parallel path is checked for
verdict agreement, not speed (pool startup dominates at this scale).
"""

import pytest

from repro.analysis.engine import AnalysisEngine
from repro.bench.batch import batch_workload, run_batch, run_one_shot
from repro.schema import xmark_dtd

#: The acceptance threshold from the issue.
REQUIRED_SPEEDUP = 3.0

VIEWS, UPDATES = batch_workload(10, 10)


def _best_of(runner, repeats=2):
    """Best-of-n wall time (both sides get the same noise protection)."""
    best_verdicts, best_seconds = runner()
    for _ in range(repeats - 1):
        verdicts, seconds = runner()
        assert verdicts == best_verdicts
        best_seconds = min(best_seconds, seconds)
    return best_verdicts, best_seconds


def test_matrix_amortizes_three_x_over_one_shot():
    one_shot_verdicts, one_shot_seconds = _best_of(
        lambda: run_one_shot(VIEWS, UPDATES)
    )
    # A fresh engine per run: the measured quantity includes universe
    # construction and all cold chain inferences.
    batch_verdicts, batch_seconds = _best_of(
        lambda: run_batch(VIEWS, UPDATES)
    )

    assert batch_verdicts == one_shot_verdicts, (
        "batch and one-shot verdicts must be identical"
    )
    pairs = len(VIEWS) * len(UPDATES)
    speedup = one_shot_seconds / batch_seconds
    print(f"\none-shot {one_shot_seconds / pairs * 1e3:.2f} ms/pair, "
          f"batch {batch_seconds / pairs * 1e3:.2f} ms/pair, "
          f"speedup {speedup:.1f}x")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"amortized speedup {speedup:.2f}x below the "
        f"{REQUIRED_SPEEDUP}x acceptance threshold"
    )


def test_warm_matrix_is_pure_cache():
    engine = AnalysisEngine(xmark_dtd())
    first = engine.analyze_matrix(
        [v for _, v in VIEWS], [u for _, u in UPDATES]
    )
    warm = engine.analyze_matrix(
        [v for _, v in VIEWS], [u for _, u in UPDATES]
    )
    assert warm.verdict_rows() == first.verdict_rows()
    assert engine.stats.pair_hits == warm.pairs
    # Warm verdicts are dictionary lookups: orders of magnitude faster.
    assert warm.wall_seconds < first.wall_seconds / 10


def test_parallel_matrix_matches_sequential():
    engine = AnalysisEngine(xmark_dtd())
    sequential = engine.analyze_matrix(
        [v for _, v in VIEWS[:4]], [u for _, u in UPDATES[:4]]
    )
    pooled = AnalysisEngine(xmark_dtd()).analyze_matrix(
        [v for _, v in VIEWS[:4]], [u for _, u in UPDATES[:4]],
        processes=2,
    )
    assert pooled.processes == 2
    assert pooled.verdict_rows() == sequential.verdict_rows()


@pytest.mark.parametrize("shape", [(1, 10), (10, 1)])
def test_skinny_matrices_match_one_shot(shape):
    rows, cols = shape
    views, updates = VIEWS[:rows], UPDATES[:cols]
    one_shot_verdicts, _ = run_one_shot(views, updates)
    batch_verdicts, _ = run_batch(views, updates)
    assert batch_verdicts == one_shot_verdicts
