"""Acceptance gate for the indexed document store (ISSUE 5).

On a generated ~100k-node XMark document:

* indexed and indexed+projected evaluation answers are byte-identical
  to dict-store evaluation for the whole bench query pool;
* projected loads keep <= 25% of nodes for the chain-selective
  queries (projection pushdown actually pays);
* accelerated descendant-axis queries beat the dict-store walk by
  >= 3x;
* cold start on the persisted corpus (ISSUE 7): first-query latency
  via SQL pushdown beats materialize-then-evaluate by >= 5x, with
  byte-identical answers and no materialization.

The committed ``BENCH_docstore.json`` trajectory records the same
numbers over time (``repro docstore-bench --json BENCH_docstore.json``).
"""

import json
from pathlib import Path

import pytest

from repro.bench.docstore_bench import run_docstore_bench

ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def results():
    return run_docstore_bench(target_bytes=4_500_000, seed=7,
                              repeats=3, out=None)


def test_document_is_benchmark_scale(results):
    assert results["nodes"] >= 80_000, (
        f"bench document shrank to {results['nodes']} nodes"
    )


def test_answers_byte_identical(results):
    differing = [q["name"] for q in results["queries"]
                 if not q["answers_identical"]]
    assert results["answers_identical"], (
        f"indexed/projected answers differ from dict store: {differing}"
    )


def test_projection_keeps_at_most_quarter(results):
    ratios = {q["name"]: round(q["kept_ratio"], 4)
              for q in results["queries"] if "selective" in q["kinds"]}
    assert results["max_selective_kept_ratio"] <= 0.25, ratios


def test_descendant_axis_at_least_3x(results):
    speedups = {q["name"]: round(q["speedup"], 1)
                for q in results["queries"]
                if "descendant" in q["kinds"]}
    assert results["min_descendant_speedup"] >= 3.0, speedups


def test_cold_start_pushdown_at_least_5x(results):
    cold = results["cold_start"]
    assert cold["answers_identical"], cold
    assert cold["speedup"] >= 5.0, cold


def test_trajectory_point_committed():
    path = ROOT / "BENCH_docstore.json"
    assert path.is_file(), "BENCH_docstore.json not committed"
    data = json.loads(path.read_text())
    assert data["points"], "trajectory has no points"
    first = data["points"][0]
    assert first["answers_identical"] is True
    assert first["min_descendant_speedup"] >= 3.0
    assert first["max_selective_kept_ratio"] <= 0.25
    # The latest point must carry the cold-start pushdown leg.
    latest = data["points"][-1]
    cold = latest["cold_start"]
    assert cold["answers_identical"] is True
    assert cold["speedup"] >= 5.0
