"""Figure 3.a -- static-analysis time per update against all 36 views.

The paper reports <40 ms per update (avg ~15 ms) for the chain analysis
on the XMark benchmark in Java; the shape to reproduce is millisecond-
scale per-update analysis with mild variation driven by k and by how much
of the recursive schema component an expression unfolds.
"""

import pytest

from repro.analysis.baseline import baseline_analyze
from repro.analysis.engine import AnalysisEngine
from repro.analysis.independence import check_conflicts
from repro.bench.updates import parsed_updates
from repro.bench.views import parsed_views
from repro.schema import xmark_dtd

VIEWS = parsed_views()
UPDATES = parsed_updates()
SCHEMA = xmark_dtd()

#: One representative per update group (full grid in the harness).
REPRESENTATIVES = ("UA1", "UB2", "UI3", "UN1", "UP4")


def _analyze_update_against_all_views(update_name, engine):
    """Chain verdicts for one update against all 36 views, composed from
    the engine's cacheable steps (inference is warm across rounds, the
    conflict check is the measured per-pair work -- the steady state of
    the paper's averaged runs)."""
    update = UPDATES[update_name]
    update_k = engine.update_multiplicity(update)
    verdicts = []
    for view in VIEWS.values():
        k = max(1, engine.query_multiplicity(view) + update_k)
        query_chains = engine.query_chains(view, k)
        update_chains = engine.update_chains(update, k)
        verdicts.append(
            not check_conflicts(query_chains, update_chains, False)
        )
    return verdicts


@pytest.mark.parametrize("update_name", REPRESENTATIVES)
def test_chain_analysis_time(benchmark, update_name):
    engine = AnalysisEngine(SCHEMA)
    # Warm the per-(schema, k) universes and chain inferences once: the
    # measured quantity is the steady-state analysis time.
    _analyze_update_against_all_views(update_name, engine)
    verdicts = benchmark(
        _analyze_update_against_all_views, update_name, engine
    )
    assert len(verdicts) == 36


@pytest.mark.parametrize("update_name", REPRESENTATIVES)
def test_type_baseline_time(benchmark, update_name):
    update = UPDATES[update_name]

    def run():
        return [
            baseline_analyze(view, update, SCHEMA).independent
            for view in VIEWS.values()
        ]

    verdicts = benchmark(run)
    assert len(verdicts) == 36
