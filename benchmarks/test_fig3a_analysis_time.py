"""Figure 3.a -- static-analysis time per update against all 36 views.

The paper reports <40 ms per update (avg ~15 ms) for the chain analysis
on the XMark benchmark in Java; the shape to reproduce is millisecond-
scale per-update analysis with mild variation driven by k and by how much
of the recursive schema component an expression unfolds.
"""

import pytest

from repro.analysis.baseline import baseline_analyze
from repro.analysis.independence import AnalysisEngine, analyze
from repro.analysis.kbound import multiplicity
from repro.bench.updates import parsed_updates
from repro.bench.views import parsed_views
from repro.schema import xmark_dtd

VIEWS = parsed_views()
UPDATES = parsed_updates()
SCHEMA = xmark_dtd()
VIEW_K = {name: multiplicity(q) for name, q in VIEWS.items()}

#: One representative per update group (full grid in the harness).
REPRESENTATIVES = ("UA1", "UB2", "UI3", "UN1", "UP4")


def _analyze_update_against_all_views(update_name, engines):
    update = UPDATES[update_name]
    update_k = multiplicity(update)
    verdicts = []
    for view_name, view in VIEWS.items():
        k = max(1, VIEW_K[view_name] + update_k)
        engine = engines.setdefault(k, AnalysisEngine(SCHEMA, k))
        report = analyze(view, update, SCHEMA, k=k, engine=engine,
                         collect_witnesses=False)
        verdicts.append(report.independent)
    return verdicts


@pytest.mark.parametrize("update_name", REPRESENTATIVES)
def test_chain_analysis_time(benchmark, update_name):
    engines = {}
    # Warm the per-(schema, k) engines once: the measured quantity is the
    # steady-state analysis time, as in the paper's averaged runs.
    _analyze_update_against_all_views(update_name, engines)
    verdicts = benchmark(
        _analyze_update_against_all_views, update_name, engines
    )
    assert len(verdicts) == 36


@pytest.mark.parametrize("update_name", REPRESENTATIVES)
def test_type_baseline_time(benchmark, update_name):
    update = UPDATES[update_name]

    def run():
        return [
            baseline_analyze(view, update, SCHEMA).independent
            for view in VIEWS.values()
        ]

    verdicts = benchmark(run)
    assert len(verdicts) == 36
