"""Schema-aware random query and update generation.

Both generators emit *surface syntax* strings in the supported fragment
(all nine axes plus the ``//`` and predicate sugar; for/let/if forms;
element construction; insert/delete/replace/rename updates), steered by
the schema so paths are usually satisfiable: each step's node test is
drawn from the types actually reachable from the current context via the
chosen axis, with occasional deliberately-unsatisfiable or wildcard
steps to keep the unsat corner exercised.

Insertion/replacement sources are built by shortest-word expansion of
the target's content model (:func:`minimal_element_source`), which makes
a useful fraction of generated write operations schema-preserving --
those are the executions the soundness theorem covers, so the dynamic
oracle would otherwise rarely get to vote on insert/replace scenarios.
"""

from __future__ import annotations

import random

from ..analysis.baseline import TypeAnalysis
from ..schema.dtd import DTD
from ..schema.regex import TEXT_SYMBOL
from ..xquery.ast import Axis

TypeSet = frozenset[str]

#: Axes with the surface weight each gets when satisfiable.
_AXIS_WEIGHTS = (
    (Axis.CHILD, 10),
    (Axis.DESCENDANT, 6),
    (Axis.DESCENDANT_OR_SELF, 3),
    (Axis.SELF, 1),
    (Axis.PARENT, 3),
    (Axis.ANCESTOR, 2),
    (Axis.ANCESTOR_OR_SELF, 1),
    (Axis.FOLLOWING_SIBLING, 2),
    (Axis.PRECEDING_SIBLING, 2),
)


class _PathBuilder:
    """Shared context-typed path machinery for both generators."""

    def __init__(self, rng: random.Random, dtd: DTD):
        self.rng = rng
        self.dtd = dtd
        self.types = TypeAnalysis(dtd)
        self._fresh = 0

    def fresh_var(self) -> str:
        self._fresh += 1
        return f"$v{self._fresh}"

    # -- steps ---------------------------------------------------------------

    def _pick_axis(self, context: TypeSet) -> tuple[Axis, TypeSet]:
        """A weighted satisfiable axis and its element result type-set.

        An axis qualifies when it can reach element types *or* a text
        node (an element whose content is text-only still admits a
        satisfiable ``child::text()`` step).
        """
        candidates: list[tuple[Axis, TypeSet, int]] = []
        for axis, weight in _AXIS_WEIGHTS:
            result = self.types.axis_types(context, axis) - {TEXT_SYMBOL}
            if result or self._text_possible(context, axis):
                candidates.append((axis, result, weight))
        if not candidates:
            return Axis.SELF, context
        total = sum(w for _, _, w in candidates)
        roll = self.rng.randrange(total)
        for axis, result, weight in candidates:
            roll -= weight
            if roll < 0:
                return axis, result
        return candidates[-1][0], candidates[-1][1]

    def _text_possible(self, context: TypeSet, axis: Axis) -> bool:
        """Can ``axis`` from ``context`` reach a text node?  (The
        baseline's ``axis_types`` strips the text symbol, so this needs
        its own per-axis check; self/parent/ancestor always land on
        elements.)"""
        if axis is Axis.CHILD:
            base = context
        elif axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            base = context | self.types.descendants_closure(context)
        elif axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
            base = self.types.axis_types(context, Axis.PARENT)
        else:
            return False
        return any(
            TEXT_SYMBOL in self.dtd.children_of(t)
            for t in base if t != TEXT_SYMBOL
        )

    def _step_source(self, context: TypeSet, axis: Axis, result: TypeSet
                     ) -> tuple[str, TypeSet]:
        """Surface text + narrowed context for one step on ``axis``."""
        rng = self.rng
        roll = rng.random()
        text_ok = self._text_possible(context, axis)
        if not result or (roll < 0.18 and text_ok):
            # Terminal: further steps from a text node select nothing.
            # (result empty means the axis qualified through text only.)
            return f"{axis.value}::text()", frozenset()
        if roll < 0.08:
            return f"{axis.value}::node()", result
        if roll < 0.14:
            return f"{axis.value}::*", result
        if roll < 0.21:
            # Deliberately unsatisfiable name: the analyses must agree
            # that nothing is traversed.
            return f"{axis.value}::zz", frozenset()
        name = rng.choice(sorted(result))
        return f"{axis.value}::{name}", frozenset((name,))

    def steps(self, context: TypeSet, max_steps: int,
              allow_predicates: bool = True) -> tuple[list[str], TypeSet]:
        """A chain of rendered steps starting from ``context``."""
        rng = self.rng
        count = rng.randint(1, max_steps)
        parts: list[str] = []
        for _ in range(count):
            if not context:
                break
            axis, result = self._pick_axis(context)
            text, context = self._step_source(context, axis, result)
            if allow_predicates and context and rng.random() < 0.2:
                text += self._predicate(context)
            parts.append(text)
        if not parts:
            parts = ["self::node()"]
        return parts, context

    def _predicate(self, context: TypeSet) -> str:
        """A ``[...]`` filter relative to ``context``."""
        rng = self.rng
        inner_steps, _ = self.steps(context, 2, allow_predicates=False)
        inner = "/".join(inner_steps)
        if rng.random() < 0.25:
            return f"[not({inner})]"
        return f"[{inner}]"

    def path(self, head: str, context: TypeSet, max_steps: int = 3
             ) -> tuple[str, TypeSet]:
        """A full path expression rooted at variable ``head``."""
        parts, out = self.steps(context, max_steps)
        return head + "/" + "/".join(parts), out

    def absolute_path(self, max_steps: int = 3) -> tuple[str, TypeSet]:
        """A path from the document root (``//`` or ``/start`` shaped)."""
        rng = self.rng
        start = self.dtd.start
        if rng.random() < 0.5:
            # ``//tag`` over any reachable type.
            reachable = sorted(
                (self.dtd.descendants_of(start) | {start}) - {TEXT_SYMBOL}
            )
            tag = rng.choice(reachable)
            base = f"//{tag}"
            context: TypeSet = frozenset((tag,))
            if rng.random() < 0.5:
                return base, context
            extra, out = self.steps(context, max_steps - 1)
            return base + "/" + "/".join(extra), out
        return self.path("$doc", frozenset((start,)), max_steps)


class QueryGenerator:
    """Random queries in the supported fragment for one schema."""

    def __init__(self, rng: random.Random, dtd: DTD, max_depth: int = 2):
        self.rng = rng
        self.dtd = dtd
        self.max_depth = max_depth
        self._paths = _PathBuilder(rng, dtd)

    def generate(self) -> str:
        return self._query(self.max_depth, {})

    # ``env`` maps in-scope variables to their context type-sets.
    def _query(self, depth: int, env: dict[str, TypeSet]) -> str:
        rng = self.rng
        roll = rng.random()
        if depth <= 0 or roll < 0.45:
            return self._path(env)[0]
        if roll < 0.6:
            var = self._paths.fresh_var()
            source, context = self._path(env)
            body_env = dict(env)
            body_env[var] = context
            body = self._query(depth - 1, body_env)
            return f"for {var} in {source} return {body}"
        if roll < 0.7:
            var = self._paths.fresh_var()
            source, context = self._path(env)
            body_env = dict(env)
            body_env[var] = context
            body = self._query(depth - 1, body_env)
            return f"let {var} := {source} return {body}"
        if roll < 0.82:
            cond = self._path(env)[0]
            then = self._query(depth - 1, env)
            orelse = "()" if rng.random() < 0.5 \
                else self._query(depth - 1, env)
            return f"if ({cond}) then {then} else {orelse}"
        if roll < 0.92:
            left = self._query(depth - 1, env)
            right = self._query(depth - 1, env)
            return f"({left}, {right})"
        tag = rng.choice(sorted(self.dtd.alphabet))
        inner = self._query(depth - 1, env)
        return f"<{tag}>{{ {inner} }}</{tag}>"

    def _path(self, env: dict[str, TypeSet]) -> tuple[str, TypeSet]:
        rng = self.rng
        bound = [v for v, ctx in env.items() if ctx]
        if bound and rng.random() < 0.5:
            var = rng.choice(sorted(bound))
            return self._paths.path(var, env[var])
        return self._paths.absolute_path()


class UpdateGenerator:
    """Random updates in the supported fragment for one schema.

    ``kinds`` restricts the primitive forms, e.g. ``("delete",)`` for
    the pure-delete sublanguage the soundness theorem covers without a
    schema-preservation side condition.
    """

    ALL_KINDS = ("delete", "insert", "rename", "replace")

    def __init__(self, rng: random.Random, dtd: DTD, max_depth: int = 2,
                 kinds: tuple[str, ...] = ALL_KINDS):
        self.rng = rng
        self.dtd = dtd
        self.max_depth = max_depth
        self.kinds = kinds
        self._paths = _PathBuilder(rng, dtd)

    def generate(self) -> str:
        return self._update(self.max_depth, {})

    def _update(self, depth: int, env: dict[str, TypeSet]) -> str:
        rng = self.rng
        roll = rng.random()
        if depth <= 0 or roll < 0.55:
            return self._primitive(env)
        if roll < 0.7:
            var = self._paths.fresh_var()
            source, context = self._source_path(env)
            body_env = dict(env)
            body_env[var] = context
            return (f"for {var} in {source} return "
                    f"{self._update(depth - 1, body_env)}")
        if roll < 0.78:
            var = self._paths.fresh_var()
            source, context = self._source_path(env)
            body_env = dict(env)
            body_env[var] = context
            return (f"let {var} := {source} return "
                    f"{self._update(depth - 1, body_env)}")
        if roll < 0.9:
            cond = self._source_path(env)[0]
            then = self._update(depth - 1, env)
            orelse = "()" if rng.random() < 0.5 \
                else self._update(depth - 1, env)
            return f"if ({cond}) then {then} else {orelse}"
        left = self._update(depth - 1, env)
        right = self._update(depth - 1, env)
        return f"({left}, {right})"

    def _source_path(self, env: dict[str, TypeSet]) -> tuple[str, TypeSet]:
        rng = self.rng
        bound = [v for v, ctx in env.items() if ctx]
        if bound and rng.random() < 0.5:
            var = rng.choice(sorted(bound))
            return self._paths.path(var, env[var])
        return self._paths.absolute_path()

    def _primitive(self, env: dict[str, TypeSet]) -> str:
        rng = self.rng
        kind = rng.choice(self.kinds)
        target, context = self._source_path(env)
        if kind == "delete":
            return f"delete {target}"
        if kind == "rename":
            return f"rename {target} as {self._rename_tag(context)}"
        if kind == "insert":
            source = self._insert_source(context)
            pos = rng.choice(("into", "as first into", "as last into",
                              "before", "after"))
            return f"insert {source} {pos} {target}"
        source = self._insert_source(context, for_replace=True)
        return f"replace {target} with {source}"

    def _rename_tag(self, context: TypeSet) -> str:
        """A rename label, biased toward schema-compatible choices."""
        rng = self.rng
        parents = self._paths.types.axis_types(context, Axis.PARENT)
        siblings = sorted(
            s
            for p in parents
            for s in self.dtd.children_of(p)
            if s != TEXT_SYMBOL
        )
        if siblings and rng.random() < 0.6:
            return rng.choice(siblings)
        return rng.choice(sorted(self.dtd.alphabet))

    def _insert_source(self, context: TypeSet,
                       for_replace: bool = False) -> str:
        """Element content to write: minimal valid literal or a query."""
        rng = self.rng
        roll = rng.random()
        if roll < 0.2:
            # Copy existing nodes.
            return self._paths.absolute_path(max_steps=2)[0]
        if for_replace or roll < 0.8:
            # A literal whose tag can legally appear below/beside the
            # target, expanded to its minimal valid subtree.
            candidates = sorted(
                c
                for t in context
                for c in self.dtd.children_of(t)
                if c != TEXT_SYMBOL
            ) or sorted(context - {TEXT_SYMBOL}) \
                or sorted(self.dtd.alphabet)
            return minimal_element_source(self.dtd, rng.choice(candidates))
        tag = rng.choice(sorted(self.dtd.alphabet))
        return minimal_element_source(self.dtd, tag)


def minimal_element_source(dtd: DTD, tag: str, _depth: int = 0) -> str:
    """A literal element constructor for ``tag`` with shortest-word
    content, hence valid wherever a ``tag`` element is allowed.

    Recursion is bounded by the terminating-recursion invariant of
    generated schemas (shortest words never take a recursive branch);
    the depth fuse merely guards against hand-written pathological DTDs.
    """
    if _depth > 24:
        return f"<{tag}/>"
    word = dtd.shortest_content(tag)
    if not word:
        return f"<{tag}/>"
    inner = "".join(
        "txt" if symbol == TEXT_SYMBOL
        else minimal_element_source(dtd, symbol, _depth + 1)
        for symbol in word
    )
    return f"<{tag}>{inner}</{tag}>"


def random_query(rng: random.Random, dtd: DTD, max_depth: int = 2) -> str:
    """One random query for ``dtd``."""
    return QueryGenerator(rng, dtd, max_depth=max_depth).generate()


def random_update(rng: random.Random, dtd: DTD, max_depth: int = 2,
                  kinds: tuple[str, ...] = UpdateGenerator.ALL_KINDS) -> str:
    """One random update for ``dtd``."""
    return UpdateGenerator(rng, dtd, max_depth=max_depth,
                           kinds=kinds).generate()
