"""The ``repro fuzz`` campaign driver.

Generates seeded scenarios -- a random schema, a small grid of random
queries and updates, a generated document corpus -- runs each through
:func:`~repro.testkit.differential.run_scenario`, aggregates soundness
and precision statistics, and shrinks + records every violation.

Determinism: the campaign is a pure function of
:attr:`FuzzConfig.seed`; scenario ``i`` draws from
``random.Random((seed, i))`` regardless of how many scenarios run, so a
violating scenario index reproduces standalone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .differential import (
    KIND_BASELINE_UNSOUND,
    KIND_DOMINANCE,
    KIND_STATIC_UNSOUND,
    Counterexample,
    Scenario,
    run_scenario,
)
from .dtdgen import SchemaGenerator
from .exprgen import QueryGenerator, UpdateGenerator
from .shrink import shrink_counterexample


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzz campaign."""

    count: int = 500            # total query x update pairs to examine
    seed: int = 0
    queries_per_schema: int = 4
    updates_per_schema: int = 4
    min_tags: int = 3
    max_tags: int = 7
    recursion_probability: float = 0.4
    expr_depth: int = 2
    corpus_docs: int = 4
    corpus_bytes: int = 700
    processes: int | None = None
    shrink_budget: int = 250
    corpus_dir: str | None = None   # where shrunk counterexamples land


@dataclass
class FuzzReport:
    """Aggregated campaign outcome (JSON-serializable via to_json)."""

    config: FuzzConfig
    scenarios: int = 0
    pairs: int = 0
    in_scope_pairs: int = 0
    static_independent: int = 0
    baseline_independent: int = 0
    dynamic_independent: int = 0
    static_proved_of_dynamic: int = 0
    baseline_proved_of_dynamic: int = 0
    static_only_of_dynamic: int = 0
    baseline_only_of_dynamic: int = 0
    static_seconds: float = 0.0
    baseline_seconds: float = 0.0
    dynamic_seconds: float = 0.0
    wall_seconds: float = 0.0
    counterexamples: list[Counterexample] = field(default_factory=list)

    @property
    def soundness_violations(self) -> int:
        return sum(
            1 for cx in self.counterexamples
            if cx.kind in (KIND_STATIC_UNSOUND, KIND_BASELINE_UNSOUND)
        )

    @property
    def dominance_violations(self) -> int:
        return sum(
            1 for cx in self.counterexamples if cx.kind == KIND_DOMINANCE
        )

    @property
    def static_precision(self) -> float:
        """Share of dynamically-independent pairs the chain analysis
        proves (the Figure 3.b-style headline)."""
        if not self.dynamic_independent:
            return 0.0
        return self.static_proved_of_dynamic / self.dynamic_independent

    @property
    def baseline_precision(self) -> float:
        if not self.dynamic_independent:
            return 0.0
        return self.baseline_proved_of_dynamic / self.dynamic_independent

    def to_json(self) -> dict:
        return {
            "config": asdict(self.config),
            "scenarios": self.scenarios,
            "pairs": self.pairs,
            "in_scope_pairs": self.in_scope_pairs,
            "static_independent": self.static_independent,
            "baseline_independent": self.baseline_independent,
            "dynamic_independent": self.dynamic_independent,
            "precision": {
                "static_proved_of_dynamic": self.static_proved_of_dynamic,
                "baseline_proved_of_dynamic": self.baseline_proved_of_dynamic,
                "static_only_of_dynamic": self.static_only_of_dynamic,
                "baseline_only_of_dynamic": self.baseline_only_of_dynamic,
                "static_precision": round(self.static_precision, 4),
                "baseline_precision": round(self.baseline_precision, 4),
            },
            "violations": {
                "soundness": self.soundness_violations,
                "dominance": self.dominance_violations,
            },
            "seconds": {
                "static": round(self.static_seconds, 3),
                "baseline": round(self.baseline_seconds, 3),
                "dynamic": round(self.dynamic_seconds, 3),
                "wall": round(self.wall_seconds, 3),
            },
            "counterexamples": [cx.to_json() for cx in self.counterexamples],
        }


def scenario_rng(seed: int, index: int) -> random.Random:
    """The deterministic per-scenario RNG (independent of campaign size)."""
    return random.Random(f"{seed}:{index}")


def generate_scenario(config: FuzzConfig, index: int) -> Scenario:
    """Scenario ``index`` of the campaign ``config`` describes."""
    rng = scenario_rng(config.seed, index)
    spec = SchemaGenerator(
        rng,
        min_tags=config.min_tags,
        max_tags=config.max_tags,
        recursion_probability=config.recursion_probability,
    ).generate()
    dtd = spec.to_dtd()
    queries = QueryGenerator(rng, dtd, max_depth=config.expr_depth)
    updates = UpdateGenerator(rng, dtd, max_depth=config.expr_depth)
    return Scenario(
        schema=spec,
        queries=tuple(
            queries.generate() for _ in range(config.queries_per_schema)
        ),
        updates=tuple(
            updates.generate() for _ in range(config.updates_per_schema)
        ),
        corpus_docs=config.corpus_docs,
        corpus_bytes=config.corpus_bytes,
        corpus_seed=rng.randrange(2 ** 31),
    )


def counterexample_path(directory: str | Path, cx: Counterexample) -> Path:
    """Stable corpus filename: kind + content digest.

    Provenance is excluded from the digest (it is not part of a
    counterexample's identity -- ``compare=False`` on the dataclass),
    so the same minimal scenario found by two campaigns dedups to one
    corpus file.
    """
    content = {k: v for k, v in cx.to_json().items() if k != "provenance"}
    digest = hashlib.sha256(
        json.dumps(content, sort_keys=True).encode()
    ).hexdigest()[:12]
    return Path(directory) / f"{cx.kind}-{digest}.json"


def save_counterexample(directory: str | Path, cx: Counterexample) -> Path:
    path = counterexample_path(directory, cx)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(cx.to_json(), indent=2, sort_keys=True)
                    + "\n", encoding="utf-8")
    return path


def run_fuzz(config: FuzzConfig, out=None,
             progress: bool = False) -> FuzzReport:
    """Run one campaign; prints a summary table to ``out`` (stdout
    when omitted -- resolved at call time, not import time)."""
    if out is None:
        out = sys.stdout
    if config.queries_per_schema < 1 or config.updates_per_schema < 1:
        raise ValueError(
            "queries_per_schema and updates_per_schema must be >= 1 "
            "(a scenario with an empty grid examines no pairs)"
        )
    if not 1 <= config.min_tags <= config.max_tags:
        raise ValueError("need 1 <= min_tags <= max_tags")
    report = FuzzReport(config=config)
    started = time.perf_counter()
    index = 0
    while report.pairs < config.count:
        scenario = generate_scenario(config, index)
        result = run_scenario(scenario, processes=config.processes)
        _aggregate(report, result, index)
        index += 1
        if progress and index % 10 == 0:
            done = min(report.pairs, config.count)
            print(f"  ... {done}/{config.count} pairs "
                  f"({index} scenarios)", file=out)
    report.scenarios = index
    report.wall_seconds = time.perf_counter() - started
    _print_summary(report, out)
    return report


def _aggregate(report: FuzzReport, result, scenario_index: int) -> None:
    config = report.config
    report.static_seconds += result.static_seconds
    report.baseline_seconds += result.baseline_seconds
    report.dynamic_seconds += result.dynamic_seconds
    for record in result.records:
        report.pairs += 1
        if record.in_scope_docs:
            report.in_scope_pairs += 1
        if record.static_independent:
            report.static_independent += 1
        if record.baseline_independent:
            report.baseline_independent += 1
        # Precision is judged only where the oracle had evidence.
        if record.in_scope_docs and record.dynamic_independent:
            report.dynamic_independent += 1
            if record.static_independent:
                report.static_proved_of_dynamic += 1
                if not record.baseline_independent:
                    report.static_only_of_dynamic += 1
            if record.baseline_independent:
                report.baseline_proved_of_dynamic += 1
                if not record.static_independent:
                    report.baseline_only_of_dynamic += 1
    for cx in result.counterexamples:
        shrunk = dataclasses.replace(
            shrink_counterexample(cx, budget=config.shrink_budget),
            provenance={
                "fuzz_seed": config.seed,
                "scenario": scenario_index,
                "original_query": cx.query,
                "original_update": cx.update,
            },
        )
        report.counterexamples.append(shrunk)
        if config.corpus_dir:
            save_counterexample(config.corpus_dir, shrunk)


def _print_summary(report: FuzzReport, out) -> None:
    config = report.config
    print(f"fuzz campaign -- seed {config.seed}, {report.scenarios} "
          f"scenarios, {report.pairs} pairs "
          f"({report.wall_seconds:.1f}s)", file=out)
    print(f"  in-scope pairs:        {report.in_scope_pairs}", file=out)
    print(f"  static  independent:   {report.static_independent}", file=out)
    print(f"  baseline independent:  {report.baseline_independent}",
          file=out)
    print(f"  dynamic independent:   {report.dynamic_independent} "
          f"(oracle-labeled, in scope)", file=out)
    print(f"  precision vs oracle:   chain "
          f"{report.static_precision:.1%} vs baseline "
          f"{report.baseline_precision:.1%}", file=out)
    print(f"  proved by chain only:  {report.static_only_of_dynamic}",
          file=out)
    print(f"  proved by [6] only:    {report.baseline_only_of_dynamic}",
          file=out)
    print(f"  analysis seconds:      static {report.static_seconds:.2f} / "
          f"baseline {report.baseline_seconds:.2f} / "
          f"dynamic {report.dynamic_seconds:.2f}", file=out)
    if report.counterexamples:
        print(f"  VIOLATIONS: {report.soundness_violations} soundness, "
              f"{report.dominance_violations} dominance", file=out)
        for cx in report.counterexamples:
            print(f"    [{cx.kind}] query={cx.query!r} "
                  f"update={cx.update!r} "
                  f"schema={dict(cx.schema.rules)!r}", file=out)
    else:
        print("  no soundness or dominance violations", file=out)
