"""Differential running of static vs. baseline vs. dynamic independence.

A :class:`Scenario` is one random workload: a schema plus small sets of
queries and updates and the parameters of a generated document corpus.
:func:`run_scenario` pushes the full query x update grid through

* the chain engine (:meth:`repro.analysis.engine.AnalysisEngine.analyze_matrix`),
* the type baseline [6] (:func:`repro.analysis.baseline.baseline_analyze`), and
* the dynamic oracle (:func:`repro.analysis.dynamic.differs_on` over the
  corpus),

and classifies every pair:

* **soundness** -- a static verdict of *independent* (from either
  analysis) must never coincide with an in-scope dynamic witness.  In
  scope means the witnessing execution is schema-preserving, or the
  update is delete-only (Section 4 covers those unconditionally);
* **precision** -- among pairs the oracle labels independent, which
  analyses managed to prove it; the chain-vs-baseline gap is the
  paper's Figure 3.b claim, and on delete-only updates chain dominance
  over the baseline is a theorem the fuzzer also enforces.

Violations become :class:`Counterexample` values, re-checkable via
:func:`still_violates` -- the contract the shrinker minimizes against
and the regression corpus replays.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.baseline import baseline_analyze
from ..analysis.engine import AnalysisEngine
from ..schema.dtd import DTD, DTDError
from ..schema.regex import RegexError
from ..xmldm.generator import generate_corpus
from ..xmldm.store import Tree, sequences_equivalent
from ..xmldm.validate import is_valid
from ..xquery.ast import ROOT_VAR
from ..xquery.evaluator import evaluate_query
from ..xquery.parser import QueryParseError, parse_query
from ..xupdate.ast import (
    Delete,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
)
from ..xupdate.evaluator import apply_update
from ..xupdate.parser import parse_update
from ..xupdate.pul import UpdateError
from .dtdgen import SchemaSpec

#: Violation kinds a pair can exhibit.
KIND_STATIC_UNSOUND = "static-unsound"
KIND_BASELINE_UNSOUND = "baseline-unsound"
KIND_DOMINANCE = "delete-dominance"


def is_pure_delete(update: Update) -> bool:
    """Updates built only from deletes never create new chains; the
    soundness theorem covers them even on validity-breaking documents
    (Section 4)."""
    if isinstance(update, (UEmpty, Delete)):
        return True
    if isinstance(update, UConcat):
        return is_pure_delete(update.left) and is_pure_delete(update.right)
    if isinstance(update, (UFor, ULet)):
        return is_pure_delete(update.body)
    if isinstance(update, UIf):
        return is_pure_delete(update.then) and is_pure_delete(update.orelse)
    return False


def schema_preserving_on(update: Update, tree: Tree, schema: DTD) -> bool:
    """Does applying ``update`` to ``tree`` keep it schema-valid?

    The analysis assumes schema-preserving updates (Section 2); write
    executions that break validity create chains outside ``Cd`` and are
    outside the soundness theorem's scope.  A failed execution
    (:class:`UpdateError`) is the W3C no-op, which trivially preserves.
    """
    updated = tree.clone()
    try:
        apply_update(update, updated.store, {ROOT_VAR: [updated.root]})
    except UpdateError:
        return True
    return is_valid(updated, schema)


# ---------------------------------------------------------------------------
# Scenario data model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One differential workload: schema, expressions, corpus knobs."""

    schema: SchemaSpec
    queries: tuple[str, ...]
    updates: tuple[str, ...]
    corpus_docs: int = 4
    corpus_bytes: int = 700
    corpus_seed: int = 0


@dataclass(frozen=True)
class PairRecord:
    """Differential outcome for one (query, update) pair."""

    query: str
    update: str
    static_independent: bool
    baseline_independent: bool
    pure_delete: bool
    in_scope_docs: int          # corpus docs the soundness theorem covers
    witness_doc: int | None     # corpus index of the first in-scope witness

    @property
    def dynamic_independent(self) -> bool:
        """No in-scope execution changed the query result (the label the
        paper's authors assigned by hand for their testbed)."""
        return self.witness_doc is None

    @property
    def violations(self) -> tuple[str, ...]:
        found = []
        if self.static_independent and self.witness_doc is not None:
            found.append(KIND_STATIC_UNSOUND)
        if self.baseline_independent and self.witness_doc is not None:
            found.append(KIND_BASELINE_UNSOUND)
        if (self.pure_delete and self.baseline_independent
                and not self.static_independent):
            found.append(KIND_DOMINANCE)
        return tuple(found)


@dataclass
class ScenarioResult:
    """All pair records of one scenario plus wall-clock accounting."""

    scenario: Scenario
    records: list[PairRecord]
    static_seconds: float
    baseline_seconds: float
    dynamic_seconds: float

    @property
    def counterexamples(self) -> list["Counterexample"]:
        return [
            Counterexample(
                kind=kind,
                schema=self.scenario.schema,
                query=record.query,
                update=record.update,
                corpus_docs=self.scenario.corpus_docs,
                corpus_bytes=self.scenario.corpus_bytes,
                corpus_seed=self.scenario.corpus_seed,
            )
            for record in self.records
            for kind in record.violations
        ]


def run_scenario(scenario: Scenario, processes: int | None = None,
                 engine: AnalysisEngine | None = None) -> ScenarioResult:
    """Differentially test every query x update pair of ``scenario``."""
    dtd = scenario.schema.to_dtd()
    if engine is None or not engine.matches(dtd):
        engine = AnalysisEngine(dtd)

    started = time.perf_counter()
    matrix = engine.analyze_matrix(
        list(scenario.queries), list(scenario.updates), processes=processes
    )
    static_seconds = time.perf_counter() - started

    started = time.perf_counter()
    baseline_grid = [
        [
            baseline_analyze(query, update, dtd).independent
            for update in scenario.updates
        ]
        for query in scenario.queries
    ]
    baseline_seconds = time.perf_counter() - started

    started = time.perf_counter()
    corpus = generate_corpus(dtd, scenario.corpus_docs,
                             target_bytes=scenario.corpus_bytes,
                             seed=scenario.corpus_seed)
    parsed_queries = [parse_query(q) for q in scenario.queries]
    parsed_updates = [parse_update(u) for u in scenario.updates]
    # Per document: one snapshot and every query's pre-update result
    # (query evaluation only ever adds disconnected constructor nodes
    # to the store, so one snapshot serves all queries).
    before: list[tuple[Tree, list]] = []
    for tree in corpus:
        snap = tree.clone()
        env = {ROOT_VAR: [snap.root]}
        before.append((snap, [
            evaluate_query(query_ast, snap.store, env)
            for query_ast in parsed_queries
        ]))
    # Per update: apply once per document; keep the updated tree for
    # the in-scope executions (the soundness theorem covers pure
    # deletes everywhere and schema-preserving executions elsewhere; a
    # failed execution is the W3C no-op -- in scope, never a witness).
    scope: list[tuple[bool, list[tuple[int, Tree | None]]]] = []
    for update_ast in parsed_updates:
        pure = is_pure_delete(update_ast)
        docs: list[tuple[int, Tree | None]] = []
        for index, tree in enumerate(corpus):
            updated = tree.clone()
            try:
                apply_update(update_ast, updated.store,
                             {ROOT_VAR: [updated.root]})
            except UpdateError:
                docs.append((index, None))
                continue
            if pure or is_valid(updated, dtd):
                docs.append((index, updated))
        scope.append((pure, docs))

    records: list[PairRecord] = []
    for qi, query_ast in enumerate(parsed_queries):
        for ui in range(len(parsed_updates)):
            pure, docs = scope[ui]
            witness = None
            for index, updated in docs:
                if updated is None:
                    continue
                snap, before_results = before[index]
                after = evaluate_query(query_ast, updated.store,
                                       {ROOT_VAR: [updated.root]})
                if not sequences_equivalent(snap.store,
                                            before_results[qi],
                                            updated.store, after):
                    witness = index
                    break
            records.append(PairRecord(
                query=scenario.queries[qi],
                update=scenario.updates[ui],
                static_independent=matrix.independent(qi, ui),
                baseline_independent=baseline_grid[qi][ui],
                pure_delete=pure,
                in_scope_docs=len(docs),
                witness_doc=witness,
            ))
    dynamic_seconds = time.perf_counter() - started

    return ScenarioResult(
        scenario=scenario,
        records=records,
        static_seconds=static_seconds,
        baseline_seconds=baseline_seconds,
        dynamic_seconds=dynamic_seconds,
    )


# ---------------------------------------------------------------------------
# Counterexamples
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Counterexample:
    """A minimal falsifying (schema, query, update, corpus) quadruple."""

    kind: str
    schema: SchemaSpec
    query: str
    update: str
    corpus_docs: int
    corpus_bytes: int
    corpus_seed: int
    provenance: dict = field(default_factory=dict, compare=False)

    def to_json(self) -> dict:
        data = {
            "kind": self.kind,
            "schema": self.schema.to_json(),
            "query": self.query,
            "update": self.update,
            "corpus": {
                "documents": self.corpus_docs,
                "target_bytes": self.corpus_bytes,
                "seed": self.corpus_seed,
            },
        }
        if self.provenance:
            data["provenance"] = self.provenance
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Counterexample":
        corpus = data.get("corpus", {})
        return cls(
            kind=data["kind"],
            schema=SchemaSpec.from_json(data["schema"]),
            query=data["query"],
            update=data["update"],
            corpus_docs=corpus.get("documents", 4),
            corpus_bytes=corpus.get("target_bytes", 700),
            corpus_seed=corpus.get("seed", 0),
            provenance=data.get("provenance", {}),
        )

    def size(self) -> int:
        """The shrinker's cost metric (strictly decreasing per step)."""
        return (len(self.query) + len(self.update) + self.schema.size()
                + self.corpus_docs)


def still_violates(cx: Counterexample) -> bool:
    """Does ``cx`` still exhibit its recorded violation kind?

    Malformed candidates (schema or expression no longer parses, or the
    update's scoped executions vanish) simply report ``False`` -- the
    shrinker uses this as its keep-shrinking predicate, and the
    regression corpus asserts it stays ``False`` once a bug is fixed.
    """
    try:
        cx.schema.to_dtd()
        parse_query(cx.query)
        parse_update(cx.update)
    except (DTDError, RegexError, QueryParseError):
        return False
    scenario = Scenario(
        schema=cx.schema,
        queries=(cx.query,),
        updates=(cx.update,),
        corpus_docs=cx.corpus_docs,
        corpus_bytes=cx.corpus_bytes,
        corpus_seed=cx.corpus_seed,
    )
    result = run_scenario(scenario)
    return cx.kind in result.records[0].violations
