"""Greedy counterexample minimization.

Any scenario the differential runner flags is shrunk before being
reported so the regression corpus stores the *essence* of the bug, not
fuzzer noise.  The shrinker repeatedly tries size-reducing candidate
edits, keeping an edit whenever :func:`~repro.testkit.differential.
still_violates` confirms the violation survives, until a fixpoint (or
the evaluation budget runs out -- each probe re-runs the full
differential check, which is the dominating cost):

1. **corpus**: pin the single witnessing document, then halve its byte
   budget;
2. **expressions**: structural shrinks over the parsed ASTs -- replace
   any composite node by one of its children, drop steps, drop
   predicates -- with candidates re-rendered to surface syntax via
   :mod:`~repro.testkit.render` (only candidates whose free variables
   stay inside ``{$doc}`` are legal scenarios);
3. **schema**: replace rules with simpler content models, erase symbols
   from models, and drop rules that became unreachable.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator

from ..schema.dtd import DTDError
from ..schema.regex import (
    EPSILON,
    Alt,
    Epsilon,
    Opt,
    Plus,
    Regex,
    RegexError,
    Seq,
    Star,
    Sym,
    parse_content_model,
)
from ..xquery.ast import (
    ROOT_VAR,
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    Query,
    Step,
    StringLit,
    free_variables,
)
from ..xquery.parser import parse_query
from ..xupdate.ast import (
    Delete,
    Insert,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
    update_free_variables,
)
from ..xupdate.parser import parse_update
from .differential import Counterexample, Scenario, run_scenario, still_violates
from .dtdgen import SchemaSpec
from .render import model_to_source, query_to_source, update_to_source


class _Budget:
    """Counts predicate evaluations; exhaustion stops the shrink."""

    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    def charge(self) -> bool:
        self.spent += 1
        return self.spent <= self.limit


def shrink_counterexample(cx: Counterexample, budget: int = 250,
                          predicate=still_violates) -> Counterexample:
    """Greedily minimize ``cx`` while ``predicate`` keeps holding.

    The input is assumed to satisfy ``predicate`` (callers get it from a
    :class:`~repro.testkit.differential.ScenarioResult`, whose
    counterexamples satisfy the default
    :func:`~repro.testkit.differential.still_violates`); the result is a
    counterexample of less-or-equal :meth:`size` with the same kind.
    Tests may swap ``predicate`` to exercise the shrinker without a
    genuine analysis bug.
    """
    fuel = _Budget(budget)
    current = _shrink_corpus(cx, fuel, predicate)
    improved = True
    while improved and fuel.spent < fuel.limit:
        improved = False
        for candidate in _candidates(current):
            if candidate.size() >= current.size():
                continue
            if not fuel.charge():
                return current
            if predicate(candidate):
                current = candidate
                improved = True
                break
    return current


# ---------------------------------------------------------------------------
# Corpus shrinking
# ---------------------------------------------------------------------------


def _shrink_corpus(cx: Counterexample, fuel: _Budget,
                   predicate) -> Counterexample:
    """Pin the witnessing document, then shrink its byte budget."""
    current = cx
    if current.corpus_docs > 1 and predicate is still_violates:
        scenario = Scenario(
            schema=current.schema,
            queries=(current.query,),
            updates=(current.update,),
            corpus_docs=current.corpus_docs,
            corpus_bytes=current.corpus_bytes,
            corpus_seed=current.corpus_seed,
        )
        if fuel.charge():
            record = run_scenario(scenario).records[0]
            if record.witness_doc is not None:
                # generate_corpus seeds document i with seed + i, so one
                # document at seed+witness reproduces the witness alone.
                pinned = _with(current,
                               corpus_docs=1,
                               corpus_seed=current.corpus_seed
                               + record.witness_doc)
                if fuel.charge() and predicate(pinned):
                    current = pinned
    size = current.corpus_bytes
    while size > 120:
        size //= 2
        candidate = _with(current, corpus_bytes=max(size, 120))
        if not fuel.charge():
            return current
        if not predicate(candidate):
            break
        current = candidate
    return current


def _with(cx: Counterexample, **changes) -> Counterexample:
    return dataclasses.replace(cx, **changes)


# ---------------------------------------------------------------------------
# Candidate enumeration
# ---------------------------------------------------------------------------


def _candidates(cx: Counterexample) -> Iterator[Counterexample]:
    """Size-reducing edits, most aggressive first.

    Candidates that cannot be rendered back to surface syntax (e.g. a
    string literal mixing both quote kinds) are skipped -- a shrink
    step must always yield a replayable scenario.
    """
    query = parse_query(cx.query)
    update = parse_update(cx.update)
    for shrunk in query_shrinks(query):
        if free_variables(shrunk) <= {ROOT_VAR}:
            try:
                yield _with(cx, query=query_to_source(shrunk))
            except ValueError:
                continue
    for shrunk in update_shrinks(update):
        if update_free_variables(shrunk) <= {ROOT_VAR}:
            try:
                yield _with(cx, update=update_to_source(shrunk))
            except ValueError:
                continue
    yield from _schema_candidates(cx)


def query_shrinks(query: Query) -> Iterator[Query]:
    """Structurally smaller queries (children first, then recursion)."""
    if isinstance(query, (Empty, StringLit, Step)):
        return
    if isinstance(query, Concat):
        yield query.left
        yield query.right
        for left in query_shrinks(query.left):
            yield Concat(left, query.right)
        for right in query_shrinks(query.right):
            yield Concat(query.left, right)
    elif isinstance(query, Element):
        yield query.content
        yield Element(query.tag, Empty())
        for content in query_shrinks(query.content):
            yield Element(query.tag, content)
    elif isinstance(query, For):
        yield query.source
        if query.var not in free_variables(query.body):
            yield query.body
        for source in query_shrinks(query.source):
            yield For(query.var, source, query.body)
        for body in query_shrinks(query.body):
            yield For(query.var, query.source, body)
    elif isinstance(query, Let):
        yield query.source
        if query.var not in free_variables(query.body):
            yield query.body
        for source in query_shrinks(query.source):
            yield Let(query.var, source, query.body)
        for body in query_shrinks(query.body):
            yield Let(query.var, query.source, body)
    elif isinstance(query, If):
        yield query.then
        yield query.orelse
        yield query.cond
        for cond in query_shrinks(query.cond):
            yield If(cond, query.then, query.orelse)
        for then in query_shrinks(query.then):
            yield If(query.cond, then, query.orelse)
        for orelse in query_shrinks(query.orelse):
            yield If(query.cond, query.then, orelse)
    else:
        raise TypeError(f"unknown query node {query!r}")


def update_shrinks(update: Update) -> Iterator[Update]:
    """Structurally smaller updates."""
    if isinstance(update, UEmpty):
        return
    if isinstance(update, UConcat):
        yield update.left
        yield update.right
        for left in update_shrinks(update.left):
            yield UConcat(left, update.right)
        for right in update_shrinks(update.right):
            yield UConcat(update.left, right)
    elif isinstance(update, UFor):
        if update.var not in update_free_variables(update.body):
            yield update.body
        for source in query_shrinks(update.source):
            yield UFor(update.var, source, update.body)
        for body in update_shrinks(update.body):
            yield UFor(update.var, update.source, body)
    elif isinstance(update, ULet):
        if update.var not in update_free_variables(update.body):
            yield update.body
        for source in query_shrinks(update.source):
            yield ULet(update.var, source, update.body)
        for body in update_shrinks(update.body):
            yield ULet(update.var, update.source, body)
    elif isinstance(update, UIf):
        yield update.then
        yield update.orelse
        for cond in query_shrinks(update.cond):
            yield UIf(cond, update.then, update.orelse)
        for then in update_shrinks(update.then):
            yield UIf(update.cond, then, update.orelse)
        for orelse in update_shrinks(update.orelse):
            yield UIf(update.cond, update.then, orelse)
    elif isinstance(update, Delete):
        for target in query_shrinks(update.target):
            yield Delete(target)
    elif isinstance(update, Rename):
        for target in query_shrinks(update.target):
            yield Rename(target, update.tag)
    elif isinstance(update, Insert):
        yield Delete(update.target)
        for source in query_shrinks(update.source):
            yield Insert(source, update.pos, update.target)
        for target in query_shrinks(update.target):
            yield Insert(update.source, update.pos, target)
    elif isinstance(update, Replace):
        yield Delete(update.target)
        for target in query_shrinks(update.target):
            yield Replace(target, update.source)
        for source in query_shrinks(update.source):
            yield Replace(update.target, source)
    else:
        raise TypeError(f"unknown update node {update!r}")


# ---------------------------------------------------------------------------
# Schema shrinking
# ---------------------------------------------------------------------------


def _schema_candidates(cx: Counterexample) -> Iterator[Counterexample]:
    rules = dict(cx.schema.rules)
    for tag, model_text in sorted(rules.items()):
        model = parse_content_model(model_text)
        for simpler in _model_shrinks(model):
            text = model_to_source(simpler)
            if len(text) >= len(model_text):
                continue
            candidate_rules = dict(rules)
            candidate_rules[tag] = text
            spec = _pruned(cx.schema.start, candidate_rules)
            if spec is not None:
                yield _with(cx, schema=spec)


def _model_shrinks(model: Regex) -> Iterator[Regex]:
    """Language-shrinking (or at least source-shrinking) model edits."""
    if isinstance(model, (Epsilon, Sym)):
        if isinstance(model, Sym):
            yield EPSILON
        return
    yield EPSILON
    for symbol in sorted({s for s in _symbols(model)}):
        yield Sym(symbol)
    if isinstance(model, (Seq, Alt)):
        yield model.left
        yield model.right
        for left in _model_shrinks(model.left):
            yield _simplify(type(model)(left, model.right))
        for right in _model_shrinks(model.right):
            yield _simplify(type(model)(model.left, right))
    if isinstance(model, (Star, Plus, Opt)):
        yield model.inner
        for inner in _model_shrinks(model.inner):
            yield _simplify(type(model)(inner))


def _symbols(model: Regex) -> Iterator[str]:
    if isinstance(model, Sym):
        yield model.name
    elif isinstance(model, (Seq, Alt)):
        yield from _symbols(model.left)
        yield from _symbols(model.right)
    elif isinstance(model, (Star, Plus, Opt)):
        yield from _symbols(model.inner)


def _simplify(model: Regex) -> Regex:
    """Collapse epsilon subterms so rendering stays expressible."""
    if isinstance(model, Seq):
        if isinstance(model.left, Epsilon):
            return model.right
        if isinstance(model.right, Epsilon):
            return model.left
        return model
    if isinstance(model, Alt):
        if isinstance(model.left, Epsilon):
            return _simplify(Opt(model.right))
        if isinstance(model.right, Epsilon):
            return _simplify(Opt(model.left))
        return model
    if isinstance(model, (Star, Plus, Opt)):
        if isinstance(model.inner, Epsilon):
            return EPSILON
        return model
    return model


def _pruned(start: str, rules: dict[str, str]) -> SchemaSpec | None:
    """Drop rules unreachable from ``start``; None if the DTD breaks."""
    try:
        dtd = SchemaSpec(start, tuple(sorted(rules.items()))).to_dtd()
    except (DTDError, RegexError):
        return None
    reachable = {start} | {
        s for s in dtd.descendants_of(start) if s in dtd.alphabet
    }
    kept = {tag: text for tag, text in rules.items() if tag in reachable}
    try:
        spec = SchemaSpec(start, tuple(sorted(kept.items())))
        spec.to_dtd()
    except (DTDError, RegexError):
        return None
    return spec
