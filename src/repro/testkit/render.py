"""Core-AST -> surface-syntax rendering.

The shrinker minimizes *parsed* expressions; reports and the regression
corpus store *source text*.  These renderers bridge the two: for every
core AST they emit surface syntax that the repo's parsers accept, and
parsing the rendered text yields the original AST back (modulo the
content-model promotion of a bare ``#PCDATA``, see
:func:`model_to_source`).
"""

from __future__ import annotations

from ..schema.regex import (
    TEXT_SYMBOL,
    Alt,
    Epsilon,
    Opt,
    Plus,
    Regex,
    Seq,
    Star,
    Sym,
)
from ..xquery.ast import (
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    NameTest,
    NodeKindTest,
    NodeTest,
    Query,
    Step,
    StringLit,
    TextTest,
    WildcardTest,
)
from ..xupdate.ast import (
    Delete,
    Insert,
    Rename,
    Replace,
    UConcat,
    UEmpty,
    UFor,
    UIf,
    ULet,
    Update,
)


def node_test_to_source(test: NodeTest) -> str:
    if isinstance(test, NameTest):
        return test.name
    if isinstance(test, TextTest):
        return "text()"
    if isinstance(test, NodeKindTest):
        return "node()"
    if isinstance(test, WildcardTest):
        return "*"
    raise TypeError(f"unknown node test {test!r}")


def query_to_source(query: Query) -> str:
    """Parseable surface text for a core query AST.

    >>> from repro.xquery.parser import parse_query
    >>> src = query_to_source(parse_query("//a//c"))
    >>> parse_query(src) == parse_query("//a//c")
    True
    """
    if isinstance(query, Empty):
        return "()"
    if isinstance(query, StringLit):
        if '"' not in query.value:
            return f'"{query.value}"'
        if "'" not in query.value:
            return f"'{query.value}'"
        # The surface grammar has no escape sequences, so a literal
        # holding both quote kinds cannot be written back faithfully.
        raise ValueError(
            f"string literal {query.value!r} mixes both quote kinds and "
            "has no surface rendering"
        )
    if isinstance(query, Concat):
        return (f"({query_to_source(query.left)}, "
                f"{query_to_source(query.right)})")
    if isinstance(query, Element):
        if isinstance(query.content, Empty):
            return f"<{query.tag}/>"
        return (f"<{query.tag}>{{ {query_to_source(query.content)} }}"
                f"</{query.tag}>")
    if isinstance(query, Step):
        return (f"{query.var}/{query.axis.value}::"
                f"{node_test_to_source(query.test)}")
    if isinstance(query, For):
        return (f"for {query.var} in {query_to_source(query.source)} "
                f"return {query_to_source(query.body)}")
    if isinstance(query, Let):
        return (f"let {query.var} := {query_to_source(query.source)} "
                f"return {query_to_source(query.body)}")
    if isinstance(query, If):
        return (f"if ({query_to_source(query.cond)}) "
                f"then {query_to_source(query.then)} "
                f"else {query_to_source(query.orelse)}")
    raise TypeError(f"unknown query node {query!r}")


def update_to_source(update: Update) -> str:
    """Parseable surface text for a core update AST."""
    if isinstance(update, UEmpty):
        return "()"
    if isinstance(update, UConcat):
        return (f"({update_to_source(update.left)}, "
                f"{update_to_source(update.right)})")
    if isinstance(update, UFor):
        return (f"for {update.var} in {query_to_source(update.source)} "
                f"return {update_to_source(update.body)}")
    if isinstance(update, ULet):
        return (f"let {update.var} := {query_to_source(update.source)} "
                f"return {update_to_source(update.body)}")
    if isinstance(update, UIf):
        return (f"if ({query_to_source(update.cond)}) "
                f"then {update_to_source(update.then)} "
                f"else {update_to_source(update.orelse)}")
    if isinstance(update, Delete):
        return f"delete {query_to_source(update.target)}"
    if isinstance(update, Rename):
        return f"rename {query_to_source(update.target)} as {update.tag}"
    if isinstance(update, Insert):
        return (f"insert {query_to_source(update.source)} "
                f"{update.pos.value} {query_to_source(update.target)}")
    if isinstance(update, Replace):
        return (f"replace {query_to_source(update.target)} "
                f"with {query_to_source(update.source)}")
    raise TypeError(f"unknown update node {update!r}")


def model_to_source(model: Regex) -> str:
    """Content-model string for a regex (for schema (re)serialization).

    The one asymmetry of the content-model syntax: a whole-model bare
    text symbol has no exact rendering (``(#PCDATA)`` parses to ``#S*``
    by DTD convention), so it is rendered as the star form -- shrink
    candidates that hit this corner merely over-approximate and must
    still pass the shrinker's re-validation.
    """
    if isinstance(model, Epsilon):
        return "EMPTY"
    return _model_inner(model)


def _model_inner(model: Regex) -> str:
    if isinstance(model, Sym):
        return "#PCDATA" if model.name == TEXT_SYMBOL else model.name
    if isinstance(model, Seq):
        return f"({_model_inner(model.left)}, {_model_inner(model.right)})"
    if isinstance(model, Alt):
        return f"({_model_inner(model.left)} | {_model_inner(model.right)})"
    if isinstance(model, Star):
        return f"{_decorable(model.inner)}*"
    if isinstance(model, Plus):
        return f"{_decorable(model.inner)}+"
    if isinstance(model, Opt):
        return f"{_decorable(model.inner)}?"
    if isinstance(model, Epsilon):
        raise ValueError(
            "nested epsilon has no content-model syntax; simplify the "
            "regex before rendering"
        )
    raise TypeError(f"unknown regex node {model!r}")


def _decorable(inner: Regex) -> str:
    """Render ``inner`` so a postfix ``*``/``+``/``?`` can attach: the
    grammar allows one decoration per atom, so stacked repetitions need
    an explicit group (``(a?)*``, not ``a?*``)."""
    text = _model_inner(inner)
    if isinstance(inner, (Star, Plus, Opt)):
        return f"({text})"
    return text
