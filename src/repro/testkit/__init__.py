"""Schema-aware scenario fuzzing and differential testing.

The testkit turns the repo's three independence analyses into their own
test harness:

* :mod:`~repro.testkit.dtdgen` -- seeded random DTDs (recursive and
  non-recursive, mixed content models) whose generated documents always
  terminate;
* :mod:`~repro.testkit.exprgen` -- schema-aware random queries and
  updates in the supported fragment (all axes, predicates, for/let/if
  forms; insert/delete/replace/rename);
* :mod:`~repro.testkit.render` -- core-AST -> surface-syntax rendering,
  so every shrunk counterexample stays a parseable scenario;
* :mod:`~repro.testkit.differential` -- pushes (schema, query, update)
  scenarios through the chain engine, the type baseline [6], and the
  dynamic oracle, classifying each pair as sound/unsound and
  precise/imprecise;
* :mod:`~repro.testkit.shrink` -- greedy minimization of any violating
  scenario (drop steps, shrink expressions, shrink schema, shrink the
  document corpus) before it is reported;
* :mod:`~repro.testkit.fuzz` -- the ``repro fuzz`` campaign driver with
  seed/count/size knobs and JSON reporting.
"""

from .differential import (
    Counterexample,
    PairRecord,
    Scenario,
    ScenarioResult,
    is_pure_delete,
    run_scenario,
    schema_preserving_on,
    still_violates,
)
from .dtdgen import SchemaGenerator, SchemaSpec, random_schema
from .exprgen import QueryGenerator, UpdateGenerator, random_query, random_update
from .fuzz import FuzzConfig, FuzzReport, run_fuzz
from .render import query_to_source, update_to_source
from .shrink import shrink_counterexample

__all__ = [
    "Counterexample",
    "FuzzConfig",
    "FuzzReport",
    "PairRecord",
    "QueryGenerator",
    "Scenario",
    "ScenarioResult",
    "SchemaGenerator",
    "SchemaSpec",
    "UpdateGenerator",
    "is_pure_delete",
    "query_to_source",
    "random_query",
    "random_schema",
    "random_update",
    "run_fuzz",
    "run_scenario",
    "schema_preserving_on",
    "shrink_counterexample",
    "still_violates",
    "update_to_source",
]
