"""Seeded random DTD generation for the scenario fuzzer.

Schemas are produced as :class:`SchemaSpec` -- a start symbol plus
``{tag: content-model-string}`` -- so every generated scenario is
trivially JSON-serializable and rebuilds through the ordinary
:meth:`repro.schema.dtd.DTD.from_dict` entry point.

Two structural invariants keep downstream machinery total:

* **reachability** -- every tag is assigned a parent earlier in the tag
  order whose content model mentions it, so the whole alphabet is
  reachable from the start symbol and no rule is dead weight;
* **terminating recursion** -- content models may only reference earlier
  tags (recursive back-edges, including self-loops) inside ``?``/``*``
  guarded positions.  Stripping all nullable positions therefore leaves
  a forward-only DAG, so every tag has a finite shortest document and
  :class:`~repro.xmldm.generator.DocumentGenerator`'s shortest-word
  cutoff always terminates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..schema.dtd import DTD


@dataclass(frozen=True)
class SchemaSpec:
    """A JSON-friendly schema description (start symbol + model strings)."""

    start: str
    rules: tuple[tuple[str, str], ...]

    def to_dtd(self) -> DTD:
        return DTD.from_dict(self.start, dict(self.rules))

    def to_json(self) -> dict:
        return {"start": self.start, "rules": dict(self.rules)}

    @classmethod
    def from_json(cls, data: dict) -> "SchemaSpec":
        return cls(
            start=data["start"],
            rules=tuple(sorted(data["rules"].items())),
        )

    @classmethod
    def from_dtd(cls, dtd: DTD) -> "SchemaSpec":
        from .render import model_to_source

        return cls(
            start=dtd.start,
            rules=tuple(sorted(
                (tag, model_to_source(model))
                for tag, model in dtd.rules.items()
            )),
        )

    def size(self) -> int:
        """Total source length, the shrinker's schema cost metric."""
        return sum(len(tag) + len(model) for tag, model in self.rules)


@dataclass
class SchemaGenerator:
    """Generates random DTDs from a caller-owned RNG.

    Parameters bound the alphabet size and tune how often models are
    recursive, mixed (text-bearing), or alternation-shaped.
    """

    rng: random.Random
    min_tags: int = 3
    max_tags: int = 7
    recursion_probability: float = 0.4
    text_probability: float = 0.3
    extra_edge_probability: float = 0.35

    #: Decorations for an ordinary forward child reference.
    _FORWARD_DECOR = ("", "", "*", "+", "?")
    #: Decorations for a recursive back-reference (must be nullable).
    _RECURSIVE_DECOR = ("*", "?")

    def generate(self) -> SchemaSpec:
        rng = self.rng
        n = rng.randint(self.min_tags, self.max_tags)
        tags = [f"t{i}" for i in range(n)]
        # Reachability spine: every non-start tag gets a parent earlier
        # in the order; that parent's model must mention it.
        required: dict[int, list[str]] = {i: [] for i in range(n)}
        for j in range(1, n):
            required[rng.randrange(j)].append(tags[j])
        recursive_schema = rng.random() < self.recursion_probability
        rules: dict[str, str] = {}
        for i, tag in enumerate(tags):
            rules[tag] = self._model(i, tags, required[i], recursive_schema)
        return SchemaSpec(start=tags[0], rules=tuple(sorted(rules.items())))

    # -- model construction --------------------------------------------------

    def _model(self, index: int, tags: list[str], required: list[str],
               recursive_schema: bool) -> str:
        rng = self.rng
        items = [s + rng.choice(self._FORWARD_DECOR) for s in required]
        # Extra forward references beyond the reachability spine.
        for j in range(index + 1, len(tags)):
            if tags[j] not in required and \
                    rng.random() < self.extra_edge_probability:
                items.append(tags[j] + rng.choice(self._FORWARD_DECOR))
        # Recursive back-references (self-loops allowed), always guarded
        # by a nullable decoration so shortest words stay finite.
        if recursive_schema and rng.random() < 0.5:
            target = tags[rng.randint(0, index)]
            items.append(target + rng.choice(self._RECURSIVE_DECOR))
        if rng.random() < self.text_probability:
            items.append("#PCDATA" + rng.choice(("", "*")))
        if not items:
            return "(#PCDATA)" if rng.random() < 0.5 else "EMPTY"
        rng.shuffle(items)
        return self._combine(items)

    def _combine(self, items: list[str]) -> str:
        """Assemble item strings into one content-model string."""
        rng = self.rng
        if len(items) == 1:
            return f"({items[0]})"
        shape = rng.random()
        if shape < 0.25:
            # Alternation under a star: every item stays reachable.
            bases = [self._strip(item) for item in items]
            return "(" + " | ".join(bases) + ")*"
        if shape < 0.45 and len(items) >= 3:
            # A sequence with one embedded starred alternation group.
            cut = rng.randint(1, len(items) - 1)
            group = "(" + " | ".join(
                self._strip(item) for item in items[:cut]
            ) + ")*"
            return "(" + ", ".join([group] + items[cut:]) + ")"
        return "(" + ", ".join(items) + ")"

    @staticmethod
    def _strip(item: str) -> str:
        return item.rstrip("*+?")


def random_schema(rng: random.Random, **kwargs) -> SchemaSpec:
    """One random schema from ``rng`` (see :class:`SchemaGenerator`)."""
    return SchemaGenerator(rng, **kwargs).generate()
