"""Micro-batching admission queue for ``analyze`` requests.

Concurrent ``analyze`` requests for the same ``(schema_digest, k)``
that arrive within a small window (default 2 ms) are coalesced into one
:meth:`~repro.analysis.engine.AnalysisEngine.analyze_matrix` call over
the batch's distinct queries x distinct updates, executed on a single
analysis worker thread with the verdict store in group-commit mode.
Service throughput then scales with the engine's *amortized* batch
speed -- one executor hand-off, one store commit, and shared chain
inference per flush -- instead of paying per-request latency (executor
round-trip + per-verdict commit) on every call, which is precisely the
serving-layer shape the paper's "analyze every update against every
view" pitch assumes.

The first request of a group opens the window; followers join until the
window closes or the batch hits ``max_batch``, whichever is first.  A
flush failure (e.g. one unparsable expression) degrades that batch to
per-request analysis so only the offending request sees the error.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..analysis.engine import AnalysisEngine, normalize_source
from ..obs.metrics import BATCH_FLUSH_SECONDS, BATCH_QUEUE_WAIT, BATCH_SIZE
from ..obs.plan import (
    PlanContext,
    clip,
    count_decision,
    current_plan,
    using_plan,
)
from ..obs.plan import decision as plan_decision
from ..obs.tracing import TraceContext, current_trace


@dataclass(frozen=True)
class WireVerdict:
    """The response payload of one ``analyze`` call.

    Deliberately excludes timing so verdicts are byte-identical across
    batched, unbatched, memo-served, and store-served execution.
    """

    independent: bool
    k: int
    k_query: int
    k_update: int

    def as_dict(self) -> dict:
        """The JSON-ready ``analyze`` response payload."""
        return {
            "independent": self.independent,
            "k": self.k,
            "k_query": self.k_query,
            "k_update": self.k_update,
        }


@dataclass
class _Group:
    """One open admission window for a ``(digest, k)`` key.

    Each entry is ``(query, update, future, trace, plan, enqueued)``:
    the request's trace context (or None), its plan context (or None),
    and its perf_counter enqueue time so the flush can attribute
    queue-wait and engine spans -- and plan decisions -- per request.
    """

    engine: AnalysisEngine
    k: int | None
    entries: list[
        tuple[str, str, asyncio.Future, TraceContext | None,
              PlanContext | None, float]
    ] = field(default_factory=list)
    full: asyncio.Event = field(default_factory=asyncio.Event)


class MicroBatcher:
    """Coalesces concurrent analyze requests into matrix flushes."""

    def __init__(self, registry, window: float = 0.002,
                 max_batch: int = 512, enabled: bool = True):
        self.registry = registry
        self.window = window
        self.max_batch = max_batch
        self.enabled = enabled
        # One worker serializes all engine access: engine caches are not
        # thread-safe, and chain inference is GIL-bound anyway.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-analysis"
        )
        self._groups: dict[tuple, _Group] = {}
        self._flushes: set[asyncio.Task] = set()
        self.requests = 0
        self.batches = 0
        self.coalesced_requests = 0
        self.max_batch_size = 0
        self.matrix_pairs = 0
        self.sparse_batches = 0
        self.fallback_singles = 0

    # -- public API ----------------------------------------------------------

    async def submit(self, schema_ref: str, query: str, update: str,
                     k: int | None = None) -> WireVerdict:
        """One verdict, via the admission queue (or directly when
        batching is disabled)."""
        self.requests += 1
        engine = self.registry.engine(schema_ref)
        loop = asyncio.get_running_loop()
        trace = current_trace()
        plan = current_plan()
        if not self.enabled:
            # Attaches to the request's own plan: submit runs in the
            # request context, and the context copy carries it onto the
            # analysis thread so engine decisions land there too.
            plan_decision("batcher", "direct")
            ctx = contextvars.copy_context()
            t0 = time.perf_counter()
            verdict = await loop.run_in_executor(
                self._executor, ctx.run, self._analyze_one,
                engine, query, update, k
            )
            if trace is not None:
                trace.add_span("engine", time.perf_counter() - t0)
            return verdict
        key = (engine.digest, k)
        group = self._groups.get(key)
        if group is None:
            group = _Group(engine=engine, k=k)
            self._groups[key] = group
            task = loop.create_task(self._window_flush(key, group))
            self._flushes.add(task)
            task.add_done_callback(self._flushes.discard)
        else:
            self.coalesced_requests += 1
        future: asyncio.Future = loop.create_future()
        group.entries.append(
            (query, update, future, trace, plan, time.perf_counter())
        )
        if len(group.entries) >= self.max_batch:
            # Close the window immediately: removing the group here (not
            # just waking the flush task) is what actually enforces
            # max_batch under a same-cycle burst -- later submits must
            # open a fresh group instead of piling onto this one.
            if self._groups.get(key) is group:
                del self._groups[key]
            group.full.set()
        return await future

    async def drain(self) -> None:
        """Flush every open window (tests, shutdown)."""
        while self._flushes:
            for group in list(self._groups.values()):
                group.full.set()
            tasks = list(self._flushes)
            await asyncio.gather(*tasks, return_exceptions=True)
            self._flushes.difference_update(tasks)

    def close(self) -> None:
        """Stop the analysis worker thread (after :meth:`drain`)."""
        self._executor.shutdown(wait=True)

    def stats(self) -> dict:
        """Admission-queue counters (the ``/stats`` batcher section)."""
        return {
            "enabled": self.enabled,
            "window_seconds": self.window,
            "max_batch": self.max_batch,
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "max_batch_size": self.max_batch_size,
            "matrix_pairs": self.matrix_pairs,
            "sparse_batches": self.sparse_batches,
            "fallback_singles": self.fallback_singles,
        }

    # -- flush machinery -----------------------------------------------------

    async def _window_flush(self, key: tuple, group: _Group) -> None:
        try:
            await asyncio.wait_for(group.full.wait(), timeout=self.window)
        except TimeoutError:
            pass
        # Close the window: later arrivals open a fresh group.
        if self._groups.get(key) is group:
            del self._groups[key]
        loop = asyncio.get_running_loop()
        entries = group.entries
        self.batches += 1
        flush_id = self.batches
        self.max_batch_size = max(self.max_batch_size, len(entries))
        flush_started = time.perf_counter()
        BATCH_SIZE.observe(len(entries))
        for _, _, _, trace, _, enqueued in entries:
            wait = flush_started - enqueued
            BATCH_QUEUE_WAIT.observe(wait)
            if trace is not None:
                trace.add_span("queue_wait", wait)
        try:
            verdicts, engine_seconds, store_seconds, batch_plan, shape = \
                await loop.run_in_executor(
                    self._executor, self._analyze_batch,
                    group.engine, entries, group.k,
                )
            BATCH_FLUSH_SECONDS.observe(
                time.perf_counter() - flush_started
            )
            # Per-pair engine decisions were recorded on the shared
            # batch plan (the flush runs once); index them by clipped
            # normalized source so each explained entry gets its own
            # pair's verdict-source record copied in.
            engine_records: dict[tuple, dict] = {}
            if batch_plan is not None:
                for record in batch_plan.decisions:
                    detail = record.get("detail") or {}
                    engine_records[(detail.get("query"),
                                    detail.get("update"))] = record
            for (query, update, future, trace, plan, _), verdict \
                    in zip(entries, verdicts):
                if trace is not None:
                    # The flush is shared: every coalesced request
                    # reports the batch's engine/commit time as its own
                    # span (documented in docs/OBSERVABILITY.md).
                    trace.add_span("engine", engine_seconds)
                    if store_seconds > 0.0:
                        trace.add_span("store", store_seconds)
                if plan is None:
                    count_decision("batcher", shape["mode"])
                else:
                    plan_decision(
                        "batcher", shape["mode"], plan,
                        flush=flush_id, requests=len(entries),
                        queries=shape["queries"],
                        updates=shape["updates"], pairs=shape["pairs"],
                    )
                    record = engine_records.get(
                        (clip(normalize_source(query)),
                         clip(normalize_source(update)))
                    )
                    if record is not None:
                        plan.add(record["layer"], record["decision"],
                                 **(record.get("detail") or {}))
                if not future.done():
                    future.set_result(verdict)
        except Exception:
            # Batch-level failure: isolate it per request so only the
            # offending expression's caller sees the error.
            for query, update, future, trace, plan, _ in entries:
                if future.done():
                    continue
                self.fallback_singles += 1
                if plan is None:
                    count_decision("batcher", "fallback")
                else:
                    plan_decision("batcher", "fallback", plan,
                                  flush=flush_id)
                try:
                    t0 = time.perf_counter()
                    verdict = await loop.run_in_executor(
                        self._executor, self._analyze_single,
                        group.engine, query, update, group.k, plan,
                    )
                except Exception as error:
                    future.set_exception(error)
                else:
                    if trace is not None:
                        trace.add_span("engine",
                                       time.perf_counter() - t0)
                    future.set_result(verdict)

    #: A flush uses the full queries x updates matrix only while the
    #: grid is at most this many times the deduplicated request count.
    #: Dense batches (the view-set x update-stream shape the paper
    #: targets) profit from the speculative grid -- the extra verdicts
    #: land in the memo and the store for later requests -- but a batch
    #: of mostly-distinct expressions would otherwise pay O(n^2)
    #: analyses for n answers, so sparse batches run ``analyze_many``
    #: over exactly the requested pairs (same chain amortization, same
    #: group commit).
    MATRIX_DENSITY_LIMIT = 4

    def _analyze_batch(
        self, engine: AnalysisEngine, entries, k: int | None
    ) -> tuple[list[WireVerdict], float, float, PlanContext | None, dict]:
        """Worker-thread body of one flush: one deduplicated batch call
        under a single store commit, then per-entry verdict lookup.

        Returns ``(verdicts, engine_seconds, store_seconds, batch_plan,
        shape)``: the timing split lets the flush attribute analysis
        versus group-commit time to every coalesced request's trace;
        ``batch_plan`` (created only when at least one entry asked for
        an explanation) collects the engine's per-pair verdict-source
        decisions for per-entry attribution; ``shape`` describes the
        flush (``mode``/``queries``/``updates``/``pairs``) for the
        per-entry batcher decision.
        """
        queries = list(dict.fromkeys(entry[0] for entry in entries))
        updates = list(dict.fromkeys(entry[1] for entry in entries))
        pairs = list(dict.fromkeys(
            (entry[0], entry[1]) for entry in entries
        ))
        dense = (len(queries) * len(updates)
                 <= self.MATRIX_DENSITY_LIMIT * len(pairs))
        shape = {
            "mode": "matrix" if dense else "sparse",
            "queries": len(queries),
            "updates": len(updates),
            "pairs": len(pairs),
        }
        batch_plan = PlanContext() if any(
            entry[4] is not None for entry in entries
        ) else None
        store = engine.store

        def run() -> dict[tuple[str, str], WireVerdict]:
            if dense:
                matrix = engine.analyze_matrix(queries, updates, k=k)
                self.matrix_pairs += matrix.pairs
                rows = {query: i for i, query in enumerate(queries)}
                cols = {update: j for j, update in enumerate(updates)}
                return {
                    (query, update): wire_verdict(matrix.verdict(rows[query],
                                                          cols[update]))
                    for query, update in pairs
                }
            self.sparse_batches += 1
            reports = engine.analyze_many(pairs, k=k)
            self.matrix_pairs += len(reports)
            return {
                pair: wire_verdict(report)
                for pair, report in zip(pairs, reports)
            }

        def run_planned() -> dict[tuple[str, str], WireVerdict]:
            if batch_plan is None:
                return run()
            with using_plan(batch_plan):
                return run()

        t0 = time.perf_counter()
        if store is not None:
            with store.deferred():
                verdicts = run_planned()
                engine_seconds = time.perf_counter() - t0
            # deferred() commits on exit: everything past the run is
            # the group-commit cost.
            store_seconds = time.perf_counter() - t0 - engine_seconds
        else:
            verdicts = run_planned()
            engine_seconds = time.perf_counter() - t0
            store_seconds = 0.0
        return (
            [verdicts[(entry[0], entry[1])] for entry in entries],
            engine_seconds,
            store_seconds,
            batch_plan,
            shape,
        )

    def _analyze_one(self, engine: AnalysisEngine, query: str, update: str,
                     k: int | None) -> WireVerdict:
        return wire_verdict(engine.analyze_pair(query, update, k=k,
                                         collect_witnesses=False))

    def _analyze_single(self, engine: AnalysisEngine, query: str,
                        update: str, k: int | None,
                        plan: PlanContext | None) -> WireVerdict:
        """Worker-thread body of one fallback single: install the
        request's own plan (when it has one) so engine decisions attach
        to the right context despite running from the flush task."""
        if plan is None:
            return self._analyze_one(engine, query, update, k)
        with using_plan(plan):
            return self._analyze_one(engine, query, update, k)


def wire_verdict(report) -> WireVerdict:
    """Strip a report/verdict down to the wire fields."""
    return WireVerdict(
        independent=report.independent,
        k=report.k,
        k_query=report.k_query,
        k_update=report.k_update,
    )
