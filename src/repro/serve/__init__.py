"""Concurrent independence service: the serving layer over the engine.

``repro.serve`` turns the per-schema batch analysis engine into a
long-running, multi-tenant network service: a JSON-lines-over-TCP
asyncio server (:mod:`.server`) whose ``analyze`` endpoint funnels
concurrent requests through a micro-batching admission queue
(:mod:`.batching`) into coalesced ``analyze_matrix`` calls, with every
verdict written through to a restart-surviving SQLite store
(:mod:`.store`) and schemas hosted in an LRU-bounded registry
(:mod:`.registry`).  :mod:`.loadgen` is the closed-loop traffic
generator used by the benchmark gate and the CI smoke job.
"""

from .batching import MicroBatcher, WireVerdict
from .loadgen import LoadgenConfig, run_loadgen, run_loadgen_sync, workload_pool
from .protocol import ProtocolError, decode_request, encode
from .registry import BUILTIN_SCHEMAS, SchemaRegistry, UnknownSchemaError
from .server import (
    ANALYSIS_MODES,
    IndependenceService,
    ServeConfig,
    run_service,
)
from .store import VerdictStore

__all__ = [
    "ANALYSIS_MODES",
    "BUILTIN_SCHEMAS",
    "IndependenceService",
    "LoadgenConfig",
    "MicroBatcher",
    "ProtocolError",
    "SchemaRegistry",
    "ServeConfig",
    "UnknownSchemaError",
    "VerdictStore",
    "WireVerdict",
    "decode_request",
    "encode",
    "run_loadgen",
    "run_loadgen_sync",
    "run_service",
    "workload_pool",
]
