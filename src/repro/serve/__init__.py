"""Concurrent independence service: the serving layer over the engine.

``repro.serve`` turns the per-schema batch analysis engine into a
long-running, multi-tenant network service: a JSON-lines-over-TCP
asyncio server (:mod:`.server`) whose ``analyze`` endpoint funnels
concurrent requests through a micro-batching admission queue
(:mod:`.batching`) into coalesced ``analyze_matrix`` calls, with every
verdict written through to a restart-surviving SQLite store
(:mod:`.store`) and schemas hosted in an LRU-bounded registry
(:mod:`.registry`).

With ``shards > 1`` the service becomes a schema-affinity **router**
over a pool of shard worker processes (:mod:`.sharding`): each shard
owns a partition of the schema space (its own engines, admission
queue, and registry), all shards share one persistent verdict store,
and distinct schemas analyze truly in parallel on separate cores.

:mod:`.loadgen` is the closed-loop traffic generator used by the
benchmark gate and the CI smoke job.  See ``docs/ARCHITECTURE.md`` for
the layer map and ``docs/PROTOCOL.md`` for the wire reference.
"""

from .batching import MicroBatcher, WireVerdict
from .loadgen import (
    LoadgenConfig,
    dtd_text,
    generated_schema,
    run_loadgen,
    run_loadgen_sync,
    workload_pool,
    workload_pools,
)
from .protocol import ERROR_CODES, OPS, ProtocolError, decode_request, encode
from .registry import BUILTIN_SCHEMAS, SchemaRegistry, UnknownSchemaError
from .server import (
    ANALYSIS_MODES,
    IndependenceService,
    ServeConfig,
    ShardedService,
    make_service,
    run_service,
)
from .sharding import ShardLink, builtin_digest, shard_for
from .store import VerdictStore

__all__ = [
    "ANALYSIS_MODES",
    "BUILTIN_SCHEMAS",
    "ERROR_CODES",
    "IndependenceService",
    "LoadgenConfig",
    "MicroBatcher",
    "OPS",
    "ProtocolError",
    "SchemaRegistry",
    "ServeConfig",
    "ShardLink",
    "ShardedService",
    "UnknownSchemaError",
    "VerdictStore",
    "WireVerdict",
    "builtin_digest",
    "decode_request",
    "dtd_text",
    "encode",
    "generated_schema",
    "make_service",
    "run_loadgen",
    "run_loadgen_sync",
    "run_service",
    "shard_for",
    "workload_pool",
    "workload_pools",
]
