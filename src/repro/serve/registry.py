"""Multi-tenant schema registry: bounded LRU of per-schema engines.

The service hosts many tenants' schemas at once; each registered schema
gets its own :class:`~repro.analysis.engine.AnalysisEngine` (with a
service-sized pair memo and the shared persistent verdict store
attached).  The registry is an LRU bounded by ``max_schemas``: the
least-recently-used engine is dropped when a new registration
overflows the bound.  Eviction only costs warm RAM -- every verdict the
evicted engine computed is still in the store, so a re-registered
schema (same digest) warm-starts from disk.

Schemas are addressed by content digest, or by an optional
client-chosen alias (``name``) mapping to the digest; the digest is
returned on registration so clients can use either.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..analysis.engine import AnalysisEngine
from ..schema.catalog import (
    bib_dtd,
    paper_d1_dtd,
    paper_doc_dtd,
    xmark_dtd,
)
from ..schema.dtd import DTD

BUILTIN_SCHEMAS = {
    "xmark": xmark_dtd,
    "bib": bib_dtd,
    "paper-doc": paper_doc_dtd,
    "paper-d1": paper_d1_dtd,
}


class UnknownSchemaError(KeyError):
    """Lookup of a digest or alias the registry does not hold."""


@dataclass
class _Entry:
    schema: DTD
    engine: AnalysisEngine
    names: set[str] = field(default_factory=set)


class SchemaRegistry:
    """LRU-bounded map ``digest -> (schema, engine)`` with aliases."""

    def __init__(self, store=None, max_schemas: int = 256,
                 pair_cache_size: int | None = None):
        if max_schemas < 1:
            raise ValueError("max_schemas must be >= 1")
        self.store = store
        self.max_schemas = max_schemas
        self.pair_cache_size = pair_cache_size
        self.registrations = 0
        self.evictions = 0            # capacity (LRU) evictions only
        self.explicit_evictions = 0   # client-requested schema.evict
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._aliases: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- registration --------------------------------------------------------

    def register(self, schema: DTD, name: str | None = None) -> str:
        """Add (or touch) a schema; returns its digest."""
        engine = AnalysisEngine(schema,
                                pair_cache_size=self.pair_cache_size)
        digest = engine.digest
        entry = self._entries.get(digest)
        if entry is None:
            if self.store is not None:
                engine.attach_store(self.store)
            entry = _Entry(schema=schema, engine=engine)
            self._entries[digest] = entry
            self.registrations += 1
            while len(self._entries) > self.max_schemas:
                evicted_digest, evicted = self._entries.popitem(last=False)
                for alias in evicted.names:
                    self._aliases.pop(alias, None)
                self.evictions += 1
        else:
            self._entries.move_to_end(digest)
        if name:
            previous = self._aliases.get(name)
            if previous is not None and previous != digest:
                stale = self._entries.get(previous)
                if stale is not None:
                    stale.names.discard(name)
            self._aliases[name] = digest
            entry.names.add(name)
        return digest

    def register_builtin(self, name: str) -> str:
        """Register one of the catalog schemas under its builtin name."""
        factory = BUILTIN_SCHEMAS.get(name)
        if factory is None:
            raise UnknownSchemaError(name)
        return self.register(factory(), name=name)

    def register_text(self, root: str, dtd_text: str,
                      name: str | None = None) -> str:
        """Register a schema from ``<!ELEMENT ...>`` declarations."""
        return self.register(DTD.from_dtd_text(root, dtd_text), name=name)

    # -- lookup --------------------------------------------------------------

    def _lookup(self, ref: str) -> str | None:
        """Side-effect-free alias/digest lookup (no lazy registration)."""
        if ref in self._entries:
            return ref
        digest = self._aliases.get(ref)
        if digest is not None and digest in self._entries:
            return digest
        return None

    def resolve(self, ref: str) -> str:
        """Alias or digest -> digest (raises :class:`UnknownSchemaError`)."""
        digest = self._lookup(ref)
        if digest is not None:
            return digest
        # Lazily materialize builtins so a fresh service accepts
        # ``"xmark"`` without an explicit registration round-trip.
        if ref in BUILTIN_SCHEMAS:
            return self.register_builtin(ref)
        raise UnknownSchemaError(ref)

    def engine(self, ref: str) -> AnalysisEngine:
        """The analysis engine for a ref (LRU touch on access)."""
        digest = self.resolve(ref)
        self._entries.move_to_end(digest)
        return self._entries[digest].engine

    def schema(self, ref: str) -> DTD:
        """The schema object behind a ref (LRU touch on access)."""
        digest = self.resolve(ref)
        self._entries.move_to_end(digest)
        return self._entries[digest].schema

    def evict(self, ref: str) -> bool:
        """Drop a schema's engine (verdicts stay in the store).

        Pure lookup, never `resolve`: evicting a not-yet-materialized
        builtin must not lazily register it first (which could push an
        unrelated tenant out of the LRU) -- it is simply not present.
        """
        digest = self._lookup(ref)
        if digest is None:
            return False
        entry = self._entries.pop(digest)
        for alias in entry.names:
            self._aliases.pop(alias, None)
        self.explicit_evictions += 1
        return True

    # -- introspection -------------------------------------------------------

    def describe(self) -> list[dict]:
        """One row per registered schema (``schema.list`` payload)."""
        return [
            {
                "digest": digest,
                "names": sorted(entry.names),
                "tags": len(entry.schema.alphabet),
                "start": entry.schema.start,
            }
            for digest, entry in self._entries.items()
        ]

    def stats(self) -> dict:
        """Occupancy plus per-engine counters (``/stats`` payload)."""
        return {
            "schemas": len(self._entries),
            "max_schemas": self.max_schemas,
            "registrations": self.registrations,
            "evictions": self.evictions,
            "explicit_evictions": self.explicit_evictions,
            "engines": {
                digest: entry.engine.stats.as_dict()
                for digest, entry in self._entries.items()
            },
        }
