"""Closed-loop load generator for the independence service.

``clients`` concurrent connections each run a send-one/await-one loop
drawing ``(query, update)`` pairs from a seeded workload pool, so
offered load is bounded by service latency (closed loop), and the
report contains both sides of that coin: throughput and latency
percentiles.  The pool comes either from the XMark benchmark workload
(``source="bench"``: the paper's views and updates, the 20x20 default
of the serve benchmark gate) or from the schema-aware random expression
generators (``source="exprgen"``: any registered schema, seeded).

The generator also snapshots the service's ``stats`` endpoint before
and after the run, so a report shows how many admission batches the
traffic coalesced into -- the CI smoke job asserts this is nonzero --
and it cross-checks that every verdict for one pair is identical across
clients and repeats (any divergence counts as an error).
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass

from ..schema.dtd import DTD
from ..testkit.exprgen import random_query, random_update
from .protocol import MAX_LINE_BYTES, encode
from .registry import BUILTIN_SCHEMAS


@dataclass
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 8765
    schema: str = "xmark"
    source: str = "bench"          # "bench" | "exprgen"
    n_queries: int = 20
    n_updates: int = 20
    clients: int = 16
    requests: int = 2000           # total, split across clients
    seed: int = 0
    expr_depth: int = 2


def workload_pool(config: LoadgenConfig) -> tuple[list[str], list[str]]:
    """The seeded query/update pools the clients draw pairs from."""
    if config.source == "bench":
        from ..bench.updates import ALL_UPDATES
        from ..bench.views import ALL_VIEWS
        queries = list(ALL_VIEWS.values())[:config.n_queries]
        updates = list(ALL_UPDATES.values())[:config.n_updates]
        if len(queries) < config.n_queries or \
                len(updates) < config.n_updates:
            raise ValueError(
                f"bench workload has only {len(ALL_VIEWS)} views / "
                f"{len(ALL_UPDATES)} updates"
            )
        return queries, updates
    if config.source == "exprgen":
        factory = BUILTIN_SCHEMAS.get(config.schema)
        if factory is None:
            raise ValueError(
                "exprgen workload needs a builtin schema, "
                f"not {config.schema!r}"
            )
        dtd: DTD = factory()
        rng = random.Random(config.seed)
        queries = [random_query(rng, dtd, max_depth=config.expr_depth)
                   for _ in range(config.n_queries)]
        updates = [random_update(rng, dtd, max_depth=config.expr_depth)
                   for _ in range(config.n_updates)]
        return queries, updates
    raise ValueError(f"unknown workload source {config.source!r}")


async def _request(reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter, payload: dict) -> dict:
    writer.write(encode(payload))
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("service closed the connection")
    return json.loads(line)


async def _client(config: LoadgenConfig, index: int, count: int,
                  queries: list[str], updates: list[str],
                  latencies: list[float], verdicts: dict,
                  errors: list[str]) -> None:
    rng = random.Random(f"{config.seed}/{index}")
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=MAX_LINE_BYTES
    )
    try:
        for sequence in range(count):
            qi = rng.randrange(len(queries))
            ui = rng.randrange(len(updates))
            started = time.perf_counter()
            response = await _request(reader, writer, {
                "id": f"c{index}-{sequence}",
                "op": "analyze",
                "schema": config.schema,
                "query": queries[qi],
                "update": updates[ui],
            })
            if not response.get("ok"):
                # Failed requests count as errors only: their latency
                # must not pollute the percentiles or the completed
                # count the throughput figure is computed from.
                errors.append(str(response.get("error")))
                continue
            latencies.append(time.perf_counter() - started)
            verdict = {key: response[key] for key in
                       ("independent", "k", "k_query", "k_update")}
            previous = verdicts.setdefault((qi, ui), verdict)
            if previous != verdict:
                errors.append(
                    f"verdict divergence on pair ({qi}, {ui}): "
                    f"{previous} vs {verdict}"
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _stats(config: LoadgenConfig) -> dict:
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=MAX_LINE_BYTES
    )
    try:
        response = await _request(
            reader, writer, {"op": "stats", "id": "loadgen-stats"}
        )
        return response if response.get("ok") else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


async def run_loadgen(config: LoadgenConfig) -> dict:
    """Drive the service; returns the JSON-ready report."""
    queries, updates = workload_pool(config)
    before = await _stats(config)
    latencies: list[float] = []
    verdicts: dict = {}
    errors: list[str] = []
    per_client = [config.requests // config.clients] * config.clients
    for index in range(config.requests % config.clients):
        per_client[index] += 1
    started = time.perf_counter()
    await asyncio.gather(*(
        _client(config, index, count, queries, updates,
                latencies, verdicts, errors)
        for index, count in enumerate(per_client) if count
    ))
    wall_seconds = time.perf_counter() - started
    after = await _stats(config)

    ordered = sorted(latencies)
    batcher_before = before.get("batcher", {})
    batcher_after = after.get("batcher", {})
    coalesced = (batcher_after.get("coalesced_requests", 0)
                 - batcher_before.get("coalesced_requests", 0))
    batches = (batcher_after.get("batches", 0)
               - batcher_before.get("batches", 0))
    return {
        "workload": {
            "schema": config.schema,
            "source": config.source,
            "n_queries": len(queries),
            "n_updates": len(updates),
            "clients": config.clients,
            "requests": config.requests,
            "seed": config.seed,
        },
        "completed": len(latencies),
        "errors": len(errors),
        "error_samples": errors[:10],
        "wall_seconds": wall_seconds,
        "throughput_rps": (len(latencies) / wall_seconds
                           if wall_seconds else 0.0),
        "latency_ms": {
            "mean": (sum(ordered) / len(ordered) * 1e3
                     if ordered else 0.0),
            "p50": _percentile(ordered, 0.50) * 1e3,
            "p90": _percentile(ordered, 0.90) * 1e3,
            "p99": _percentile(ordered, 0.99) * 1e3,
            "max": ordered[-1] * 1e3 if ordered else 0.0,
        },
        "distinct_pairs": len(verdicts),
        "independent_pairs": sum(
            1 for verdict in verdicts.values() if verdict["independent"]
        ),
        "verdicts": {
            f"q{qi}|u{ui}": verdict
            for (qi, ui), verdict in sorted(verdicts.items())
        },
        "service": {
            "analysis_mode": after.get("analysis_mode"),
            "coalesced_requests": coalesced,
            "batches": batches,
            "store_verdicts": after.get("store", {}).get("verdicts"),
            "engine_stats_after": after.get("registry", {})
            .get("engines", {}),
        },
    }


def run_loadgen_sync(config: LoadgenConfig) -> dict:
    return asyncio.run(run_loadgen(config))
