"""Closed-loop load generator for the independence service.

``clients`` concurrent connections each run a send-one/await-one loop
drawing ``(schema, query, update)`` triples from seeded workload pools,
so offered load is bounded by service latency (closed loop), and the
report contains both sides of that coin: throughput and latency
percentiles.

The workload may span **several schemas** (the shape that exercises a
sharded service: distinct schema digests route to distinct shard
processes and analyze in parallel).  Each schema ref in
:attr:`LoadgenConfig.schema` gets its own query/update pool:

* ``"xmark"`` with ``source="bench"`` -- the paper's benchmark views
  and updates (the 20x20 default of the serve benchmark gate);
* ``"gen:<seed>"`` -- a deterministic random DTD from the testkit
  schema generator, registered over the wire before the run starts,
  with schema-aware random expressions drawn for it;
* any other builtin (or any ref with ``source="exprgen"``) -- seeded
  schema-aware random expressions.

The generator also snapshots the service's ``stats`` endpoint before
and after the run, so a report shows how many admission batches the
traffic coalesced into -- the CI smoke job asserts this is nonzero --
plus, against a sharded service, how requests spread across shards.
It cross-checks that every verdict for one ``(schema, pair)`` is
identical across clients and repeats (any divergence counts as an
error).
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from collections.abc import Sequence
from dataclasses import dataclass

from ..obs.metrics import histogram_quantile
from ..schema.dtd import DTD
from ..testkit.dtdgen import SchemaGenerator, SchemaSpec
from ..testkit.exprgen import random_query, random_update
from .protocol import MAX_LINE_BYTES, encode
from .registry import BUILTIN_SCHEMAS


@dataclass
class LoadgenConfig:
    """One load-generation run (CLI flags map 1:1).

    ``schema`` is one ref or a sequence of refs; multi-schema runs
    interleave requests across all of them (uniformly at random, per
    client, seeded).  ``requests`` is the total across all clients.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    schema: str | Sequence[str] = "xmark"
    source: str = "bench"          # "bench" | "exprgen"
    n_queries: int = 20
    n_updates: int = 20
    clients: int = 16
    requests: int = 2000           # total, split across clients
    seed: int = 0
    expr_depth: int = 2
    #: Scrape the ``metrics`` op before and after the run, cross-check
    #: the server-side per-op histogram counts against the client-side
    #: request counts, and report server percentiles next to the
    #: client-side ones (``--scrape-metrics``).
    scrape_metrics: bool = False
    #: Send ``timing: true`` on every Nth request per client (0 = never)
    #: and aggregate the per-layer span breakdown into the report.
    timing_sample: int = 0
    #: Extra ``doc.query`` requests per client (against one generated
    #: document loaded before the run) so traced runs cover the
    #: document path as well as ``analyze``.
    doc_queries: int = 0

    @property
    def schemas(self) -> tuple[str, ...]:
        """The workload's schema refs as a tuple (order preserved)."""
        if isinstance(self.schema, str):
            return (self.schema,)
        return tuple(self.schema)


def generated_schema(seed: int) -> SchemaSpec:
    """The deterministic ``gen:<seed>`` workload schema.

    A pure function of ``seed``: the router, the loadgen process, and
    any test all derive the same spec (and therefore the same content
    digest, and the same owning shard).
    """
    return SchemaGenerator(
        random.Random(seed), min_tags=5, max_tags=7,
        recursion_probability=0.5,
    ).generate()


def dtd_text(spec: SchemaSpec) -> str:
    """Render a :class:`SchemaSpec` as ``<!ELEMENT ...>`` declarations
    (the ``schema.register`` wire format)."""
    return "\n".join(
        f"<!ELEMENT {tag} {model}>" for tag, model in spec.rules
    )


def _schema_dtd(ref: str) -> tuple[DTD, SchemaSpec | None]:
    """The DTD behind a workload schema ref (and its spec if generated)."""
    if ref.startswith("gen:"):
        spec = generated_schema(int(ref[4:]))
        return spec.to_dtd(), spec
    factory = BUILTIN_SCHEMAS.get(ref)
    if factory is None:
        raise ValueError(
            f"workload schema must be a builtin or 'gen:<seed>', "
            f"not {ref!r}"
        )
    return factory(), None


def workload_pool(config: LoadgenConfig,
                  ref: str | None = None) -> tuple[list[str], list[str]]:
    """The seeded query/update pools clients draw pairs from.

    ``ref`` defaults to the first workload schema.  The XMark benchmark
    pool is used for ``"xmark"`` under ``source="bench"``; every other
    ref gets schema-aware random expressions seeded per ``(seed, ref)``
    so multi-schema pools are independent but reproducible.
    """
    if ref is None:
        ref = config.schemas[0]
    if config.source == "bench" and ref == "xmark":
        from ..bench.updates import ALL_UPDATES
        from ..bench.views import ALL_VIEWS
        queries = list(ALL_VIEWS.values())[:config.n_queries]
        updates = list(ALL_UPDATES.values())[:config.n_updates]
        if len(queries) < config.n_queries or \
                len(updates) < config.n_updates:
            raise ValueError(
                f"bench workload has only {len(ALL_VIEWS)} views / "
                f"{len(ALL_UPDATES)} updates"
            )
        return queries, updates
    if config.source not in ("bench", "exprgen"):
        raise ValueError(f"unknown workload source {config.source!r}")
    dtd, _ = _schema_dtd(ref)
    rng = random.Random(f"{config.seed}/{ref}")
    queries = [random_query(rng, dtd, max_depth=config.expr_depth)
               for _ in range(config.n_queries)]
    updates = [random_update(rng, dtd, max_depth=config.expr_depth)
               for _ in range(config.n_updates)]
    return queries, updates


def workload_pools(
    config: LoadgenConfig,
) -> dict[str, tuple[list[str], list[str]]]:
    """One ``(queries, updates)`` pool per workload schema ref."""
    return {ref: workload_pool(config, ref) for ref in config.schemas}


async def _request(reader: asyncio.StreamReader,
                   writer: asyncio.StreamWriter, payload: dict) -> dict:
    """One send-one/await-one wire round trip."""
    writer.write(encode(payload))
    await writer.drain()
    line = await reader.readline()
    if not line:
        raise ConnectionError("service closed the connection")
    return json.loads(line)


async def _register_generated(config: LoadgenConfig) -> None:
    """Register every ``gen:<seed>`` workload schema over the wire.

    Registration is idempotent (content digests), so concurrent or
    repeated loadgen runs against one service are safe.  The generated
    ref itself becomes the schema's alias, so clients can use it
    directly in requests.
    """
    generated = [ref for ref in config.schemas if ref.startswith("gen:")]
    if not generated:
        return
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=MAX_LINE_BYTES
    )
    try:
        for ref in generated:
            _, spec = _schema_dtd(ref)
            assert spec is not None
            response = await _request(reader, writer, {
                "id": f"register-{ref}",
                "op": "schema.register",
                "root": spec.start,
                "dtd": dtd_text(spec),
                "name": ref,
            })
            if not response.get("ok"):
                raise RuntimeError(
                    f"registering {ref} failed: {response.get('error')}"
                )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def _record_spans(spans: dict, op: str, timing: dict | None) -> None:
    """Fold one response's ``timing`` breakdown into the span aggregate."""
    if not timing:
        return
    per_op = spans.setdefault(op, {})
    for entry in timing.get("spans", ()):
        per_op.setdefault(entry["name"], []).append(entry["ms"])
    per_op.setdefault("total", []).append(timing.get("total_ms", 0.0))


async def _client(config: LoadgenConfig, index: int, count: int,
                  pools: dict[str, tuple[list[str], list[str]]],
                  latencies: list[float], verdicts: dict,
                  errors: list[str], spans: dict,
                  doc_latencies: list[float], doc_name: str | None) -> None:
    """One closed-loop connection: draw, send, await, record."""
    rng = random.Random(f"{config.seed}/{index}")
    schemas = config.schemas
    sample = config.timing_sample
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=MAX_LINE_BYTES
    )
    try:
        for sequence in range(count):
            ref = schemas[rng.randrange(len(schemas))]
            queries, updates = pools[ref]
            qi = rng.randrange(len(queries))
            ui = rng.randrange(len(updates))
            payload = {
                "id": f"c{index}-{sequence}",
                "op": "analyze",
                "schema": ref,
                "query": queries[qi],
                "update": updates[ui],
            }
            if sample and sequence % sample == 0:
                payload["timing"] = True
            started = time.perf_counter()
            response = await _request(reader, writer, payload)
            if not response.get("ok"):
                # Failed requests count as errors only: their latency
                # must not pollute the percentiles or the completed
                # count the throughput figure is computed from.
                errors.append(str(response.get("error")))
                continue
            latencies.append(time.perf_counter() - started)
            _record_spans(spans, "analyze", response.get("timing"))
            verdict = {key: response[key] for key in
                       ("independent", "k", "k_query", "k_update")}
            previous = verdicts.setdefault((ref, qi, ui), verdict)
            if previous != verdict:
                errors.append(
                    f"verdict divergence on {ref} pair ({qi}, {ui}): "
                    f"{previous} vs {verdict}"
                )
        for sequence in range(config.doc_queries if doc_name else 0):
            ref = config.schemas[0]
            queries, _ = pools[ref]
            payload = {
                "id": f"c{index}-doc{sequence}",
                "op": "doc.query",
                "schema": ref,
                # The persistence key (unprefixed): doc.query routes by
                # schema affinity and resolves shard-locally.
                "doc": doc_name,
                "query": queries[sequence % len(queries)],
                "limit": 1,
            }
            if sample and sequence % sample == 0:
                payload["timing"] = True
            started = time.perf_counter()
            response = await _request(reader, writer, payload)
            if not response.get("ok"):
                errors.append(str(response.get("error")))
                continue
            doc_latencies.append(time.perf_counter() - started)
            _record_spans(spans, "doc.query", response.get("timing"))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _stats(config: LoadgenConfig) -> dict:
    """One ``stats`` snapshot (empty dict when the call fails)."""
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=MAX_LINE_BYTES
    )
    try:
        response = await _request(
            reader, writer, {"op": "stats", "id": "loadgen-stats"}
        )
        return response if response.get("ok") else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Percentile of an ascending list, interpolating linearly between
    the two nearest order statistics (0.0 when empty).

    This is the "linear" (R-7 / numpy default) definition: the rank
    ``fraction * (n - 1)`` is split into its integer part and remainder,
    and the value is the convex combination of the neighbors -- so
    ``p50`` of ``[1, 2, 3, 4]`` is 2.5, not a rounded pick of 2 or 3.

    >>> _percentile([1.0, 2.0, 3.0, 4.0], 0.5)
    2.5
    """
    if not sorted_values:
        return 0.0
    rank = fraction * (len(sorted_values) - 1)
    lower = int(rank)
    weight = rank - lower
    if weight == 0.0 or lower + 1 >= len(sorted_values):
        return sorted_values[lower]
    return (sorted_values[lower] * (1.0 - weight)
            + sorted_values[lower + 1] * weight)


async def _metrics(config: LoadgenConfig) -> dict:
    """One ``metrics`` snapshot (empty dict when the call fails)."""
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=MAX_LINE_BYTES
    )
    try:
        response = await _request(
            reader, writer, {"op": "metrics", "id": "loadgen-metrics"}
        )
        return response if response.get("ok") else {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def _load_document(config: LoadgenConfig) -> str:
    """Load the run's shared workload document; returns its doc name.

    The name is the *persistence key* (unprefixed): ``doc.query``
    requests pass it verbatim and the service's own ``doc_id_prefix``
    namespaces it per shard, so the same loadgen invocation works
    against sharded and unsharded services alike.
    """
    name = f"lg{config.seed}"
    reader, writer = await asyncio.open_connection(
        config.host, config.port, limit=MAX_LINE_BYTES
    )
    try:
        response = await _request(reader, writer, {
            "id": "loadgen-doc",
            "op": "doc.load",
            "schema": config.schemas[0],
            "doc": name,
            "bytes": 20_000,
            "seed": config.seed,
        })
        if not response.get("ok"):
            raise RuntimeError(
                f"loading workload document failed: "
                f"{response.get('error')}"
            )
        return name
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def _request_seconds_delta(before: dict, after: dict) -> tuple[str, dict]:
    """Per-op delta of the server's ``repro_request_seconds`` family.

    Returns ``(role, {op: histogram_child})`` where the deltas are the
    run's own observations (after minus before) and ``role`` is the
    client-facing series: ``"router"`` when router-role series moved
    during this run (a sharded service -- its service-role series count
    the same requests again, once per shard hop), else ``"service"``.
    The choice is made on the *delta*, not the raw snapshot, so stale
    router series from an earlier run against the same process cannot
    misattribute an unsharded run.
    """
    family_after = after.get("families", {}).get(
        "repro_request_seconds", {}
    )
    family_before = before.get("families", {}).get(
        "repro_request_seconds", {}
    )
    children_after = family_after.get("children", {})
    children_before = family_before.get("children", {})

    def deltas_for(role: str) -> dict[str, dict]:
        deltas: dict[str, dict] = {}
        for key, child in children_after.items():
            op, child_role = json.loads(key)
            if child_role != role:
                continue
            previous = children_before.get(key)
            counts = list(child["counts"])
            total = child["sum"]
            count = child["count"]
            if previous is not None:
                counts = [now - then for now, then
                          in zip(counts, previous["counts"])]
                total -= previous["sum"]
                count -= previous["count"]
            if count:
                deltas[op] = {"bounds": list(child["bounds"]),
                              "counts": counts, "sum": total,
                              "count": count}
        return deltas

    router_deltas = deltas_for("router")
    if router_deltas:
        return "router", router_deltas
    return "service", deltas_for("service")


def _span_breakdown(spans: dict) -> dict:
    """Aggregate sampled span timings into per-op count/mean rows."""
    return {
        op: {
            name: {
                "count": len(values),
                "mean_ms": sum(values) / len(values),
            }
            for name, values in sorted(per_op.items())
        }
        for op, per_op in sorted(spans.items())
    }


def _shard_routing(before: dict, after: dict) -> dict[str, int] | None:
    """Requests the router forwarded to each shard during the run."""
    shards_after = after.get("per_shard")
    if not shards_after:
        return None
    routed_before = {
        entry["shard"]: entry.get("routed", 0)
        for entry in before.get("per_shard", ())
    }
    return {
        str(entry["shard"]):
            entry.get("routed", 0) - routed_before.get(entry["shard"], 0)
        for entry in shards_after
    }


async def run_loadgen(config: LoadgenConfig) -> dict:
    """Drive the service; returns the JSON-ready report."""
    pools = workload_pools(config)
    await _register_generated(config)
    doc_name = (await _load_document(config)
                if config.doc_queries else None)
    before = await _stats(config)
    metrics_before = (await _metrics(config)
                      if config.scrape_metrics else {})
    latencies: list[float] = []
    doc_latencies: list[float] = []
    verdicts: dict = {}
    errors: list[str] = []
    spans: dict = {}
    per_client = [config.requests // config.clients] * config.clients
    for index in range(config.requests % config.clients):
        per_client[index] += 1
    started = time.perf_counter()
    await asyncio.gather(*(
        _client(config, index, count, pools, latencies, verdicts, errors,
                spans, doc_latencies, doc_name)
        for index, count in enumerate(per_client) if count
    ))
    wall_seconds = time.perf_counter() - started
    after = await _stats(config)
    metrics_after = (await _metrics(config)
                     if config.scrape_metrics else {})

    ordered = sorted(latencies)
    extras: dict = {}
    if config.scrape_metrics and metrics_after:
        role, deltas = _request_seconds_delta(
            metrics_before.get("snapshot", {}),
            metrics_after.get("snapshot", {}),
        )
        analyze_count = deltas.get("analyze", {}).get("count", 0)
        extras["server_metrics"] = {
            "role": role,
            "per_op": {
                op: {
                    "count": child["count"],
                    "p50_ms": histogram_quantile(child, 0.50) * 1e3,
                    "p99_ms": histogram_quantile(child, 0.99) * 1e3,
                }
                for op, child in sorted(deltas.items())
            },
            # The server saw exactly the requests the clients sent:
            # every attempted analyze lands in the histogram whether it
            # succeeded or errored.
            "counts_match": analyze_count == config.requests,
        }
    if spans:
        extras["span_breakdown"] = _span_breakdown(spans)
    if doc_name is not None:
        doc_ordered = sorted(doc_latencies)
        extras["doc_query"] = {
            "doc": doc_name,
            "completed": len(doc_ordered),
            "latency_ms": {
                "mean": (sum(doc_ordered) / len(doc_ordered) * 1e3
                         if doc_ordered else 0.0),
                "p50": _percentile(doc_ordered, 0.50) * 1e3,
                "p99": _percentile(doc_ordered, 0.99) * 1e3,
            },
        }
    batcher_before = before.get("batcher", {})
    batcher_after = after.get("batcher", {})
    coalesced = (batcher_after.get("coalesced_requests", 0)
                 - batcher_before.get("coalesced_requests", 0))
    batches = (batcher_after.get("batches", 0)
               - batcher_before.get("batches", 0))
    return {
        "workload": {
            "schema": ",".join(config.schemas),
            "schemas": list(config.schemas),
            "source": config.source,
            "n_queries": config.n_queries,
            "n_updates": config.n_updates,
            "clients": config.clients,
            "requests": config.requests,
            "seed": config.seed,
        },
        "completed": len(latencies),
        "errors": len(errors),
        "error_samples": errors[:10],
        "wall_seconds": wall_seconds,
        "throughput_rps": (len(latencies) / wall_seconds
                           if wall_seconds else 0.0),
        "latency_ms": {
            "mean": (sum(ordered) / len(ordered) * 1e3
                     if ordered else 0.0),
            "p50": _percentile(ordered, 0.50) * 1e3,
            "p90": _percentile(ordered, 0.90) * 1e3,
            "p99": _percentile(ordered, 0.99) * 1e3,
            "max": ordered[-1] * 1e3 if ordered else 0.0,
        },
        "distinct_pairs": len(verdicts),
        "independent_pairs": sum(
            1 for verdict in verdicts.values() if verdict["independent"]
        ),
        "verdicts": {
            f"{ref}|q{qi}|u{ui}": verdict
            for (ref, qi, ui), verdict in sorted(verdicts.items())
        },
        "service": {
            "analysis_mode": after.get("analysis_mode"),
            "shards": after.get("shards", 1),
            "shard_routing": _shard_routing(before, after),
            "coalesced_requests": coalesced,
            "batches": batches,
            "store_verdicts": after.get("store", {}).get("verdicts"),
            "engine_stats_after": after.get("registry", {})
            .get("engines", {}),
        },
        **extras,
    }


def run_loadgen_sync(config: LoadgenConfig) -> dict:
    """Blocking wrapper around :func:`run_loadgen` (CLI body)."""
    return asyncio.run(run_loadgen(config))
