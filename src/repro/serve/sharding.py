"""Process-pool shards: the worker side of the sharded serving layer.

The static verdicts of the paper are pure functions of ``(schema
digest, k, query, update)``, which makes the serving layer
embarrassingly shardable *by schema digest*: every request naming one
schema can be answered by whichever worker owns that digest, and two
workers never need to agree on anything beyond the shared persistent
verdict store.  This module provides the pieces the router
(:class:`repro.serve.server.ShardedService`) builds on:

* :func:`shard_for` -- the stable digest -> shard-index hash (a pure
  function of the digest text, identical in every process and across
  restarts, unlike the salted builtin ``hash``);
* :func:`spawn_shards` -- fork a pool of shard worker processes, each
  running a complete single-threaded
  :class:`~repro.serve.server.IndependenceService` (its own engines,
  micro-batching queue, and registry partition) on an ephemeral
  loopback port;
* :class:`ShardLink` -- one multiplexed JSON-lines connection from the
  router to a shard, pipelining concurrent requests by internal id.

Coalescing still happens per ``(schema, k)`` *inside* the owning shard
-- affinity routing guarantees all requests for one schema meet in one
admission queue -- while distinct schemas analyze truly in parallel on
separate cores.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import re
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..analysis.engine import schema_digest
from .protocol import MAX_LINE_BYTES, encode
from .registry import BUILTIN_SCHEMAS, UnknownSchemaError

if TYPE_CHECKING:  # pragma: no cover -- import cycle with server.py
    from .server import ServeConfig

#: How long the router waits for one shard worker to report its bound
#: port (covers interpreter start + ``import repro`` on a loaded box).
SHARD_START_TIMEOUT = 60.0

#: Matches a full schema content digest (SHA-256 hex).
DIGEST_RE = re.compile(r"[0-9a-f]{64}")


def shard_for(digest: str, shards: int) -> int:
    """The shard index owning ``digest`` in a pool of ``shards``.

    A pure function of the digest *text*, so every process (router,
    shard, client, test) computes the same owner and the assignment
    survives restarts.

    >>> shard_for("00ff" * 16, 1)
    0
    >>> 0 <= shard_for("00ff" * 16, 3) < 3
    True
    """
    return int(digest[:16], 16) % shards


_BUILTIN_DIGESTS: dict[str, str] = {}


def builtin_digest(name: str) -> str:
    """Content digest of a builtin schema (cached per process).

    Raises :class:`~repro.serve.registry.UnknownSchemaError` for a name
    outside the builtin catalog, mirroring
    :meth:`SchemaRegistry.register_builtin`.
    """
    digest = _BUILTIN_DIGESTS.get(name)
    if digest is None:
        factory = BUILTIN_SCHEMAS.get(name)
        if factory is None:
            raise UnknownSchemaError(name)
        digest = schema_digest(factory())
        _BUILTIN_DIGESTS[name] = digest
    return digest


# ---------------------------------------------------------------------------
# Shard worker processes
# ---------------------------------------------------------------------------


@dataclass
class ShardHandle:
    """One spawned shard worker: its process and bound address."""

    index: int
    process: multiprocessing.process.BaseProcess
    host: str
    port: int


def _shard_main(config: "ServeConfig", conn) -> None:
    """Entry point of one shard worker process.

    Runs a complete single-shard service and reports the bound
    ``(host, port)`` back through ``conn`` once accepting.  Must stay a
    module-level function: the ``spawn`` start method imports it by
    qualified name in the child.
    """
    import asyncio as aio

    from .server import run_service

    def ready(service, host, port):
        conn.send((host, port))
        conn.close()

    try:
        aio.run(run_service(config, ready=ready))
    except KeyboardInterrupt:  # pragma: no cover -- operator interrupt
        pass


def partition_preload(preload, shards: int) -> list[tuple[str, ...]]:
    """Split the preload list so each builtin lands only on its owner.

    Preloading a schema on a shard that can never receive its traffic
    would waste warm RAM and distort per-shard stats.
    """
    owned: list[list[str]] = [[] for _ in range(shards)]
    for name in preload:
        owned[shard_for(builtin_digest(name), shards)].append(name)
    return [tuple(names) for names in owned]


def spawn_shards(config: "ServeConfig", shards: int) -> list[ShardHandle]:
    """Start ``shards`` worker processes; blocks until all are bound.

    Each worker gets a copy of ``config`` specialized to one shard:
    ephemeral loopback port, ``shards=1`` (a worker is itself an
    ordinary unsharded service), a ``doc_id_prefix`` namespacing its
    document ids (``s<index>-``) so the router can route later document
    operations without any shared state, and only the builtins it owns
    preloaded.  All workers point at the *same* ``store_path``: SQLite
    WAL supports multi-process writers, so shards share one persistent
    verdict store (see the cross-shard warm-start test).

    Uses the ``spawn`` start method -- forking a process that may
    already run an event loop is unsafe -- and marks workers daemonic
    so an abnormal router death cannot leak them.
    """
    context = multiprocessing.get_context("spawn")
    preloads = partition_preload(config.preload, shards)
    started: list[tuple[int, multiprocessing.process.BaseProcess,
                        object]] = []
    try:
        for index in range(shards):
            shard_config = replace(
                config,
                host="127.0.0.1",
                port=0,
                shards=1,
                shard_index=index,
                doc_id_prefix=f"s{index}-",
                preload=preloads[index],
                # Observability is router-fronted: workers expose their
                # registries over the `metrics` wire op (the router
                # merges), so they bind no /metrics listener, and the
                # slow-log file stays single-writer (worker slow
                # requests still reach the router via the ring).
                metrics_port=0,
                slow_log_path="",
            )
            receiver, sender = context.Pipe(duplex=False)
            process = context.Process(
                target=_shard_main,
                args=(shard_config, sender),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            process.start()
            sender.close()
            started.append((index, process, receiver))
        handles = []
        for index, process, receiver in started:
            if not receiver.poll(SHARD_START_TIMEOUT):
                raise RuntimeError(
                    f"shard {index} did not report a port within "
                    f"{SHARD_START_TIMEOUT:.0f}s"
                )
            try:
                host, port = receiver.recv()
            except EOFError:
                raise RuntimeError(
                    f"shard {index} exited during startup "
                    f"(exitcode {process.exitcode})"
                ) from None
            finally:
                receiver.close()
            handles.append(ShardHandle(index=index, process=process,
                                       host=host, port=port))
        return handles
    except BaseException:
        for _, process, _ in started:
            if process.is_alive():
                process.terminate()
        raise


def join_shards(handles: list[ShardHandle], timeout: float = 10.0) -> None:
    """Wait for shard processes to exit; terminate stragglers."""
    for handle in handles:
        handle.process.join(timeout=timeout)
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Router-side shard connections
# ---------------------------------------------------------------------------


class ShardLink:
    """One multiplexed JSON-lines connection from the router to a shard.

    All router traffic for one shard flows over a single pipelined
    connection: requests are tagged with an internal integer id and the
    responses (which the shard may emit out of order) are matched back
    to their awaiting futures.  Funneling every routed request through
    one connection is deliberate -- it is what lets concurrent client
    requests for one schema meet in the shard's admission window and
    coalesce, exactly as if they had arrived on one pipelined client
    connection.
    """

    def __init__(self, index: int, host: str, port: int):
        self.index = index
        self.host = host
        self.port = port
        #: Requests forwarded over this link (the router's per-shard
        #: routing counter, surfaced in aggregated ``/stats``).
        self.routed = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._write_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._read_task: asyncio.Task | None = None
        self._dead = False

    async def connect(self) -> None:
        """Open the connection and start the response dispatcher."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._read_task = asyncio.create_task(self._read_loop())

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError, ValueError):
            pass
        finally:
            # The link is dead (EOF, cancelled, or an unframeable
            # response, e.g. a shard line overrunning the read limit).
            # Mark it so later call()s fail fast instead of awaiting a
            # future nothing will ever resolve, and fail everything
            # already in flight.
            self._dead = True
            error = ConnectionError(
                f"shard {self.index} connection lost"
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(error)
            self._pending.clear()

    async def call(self, op: str, params: dict) -> dict:
        """Forward one request; returns the shard's decoded response.

        Raises :class:`ConnectionError` when the link has died -- the
        caller's request is answered with an ``internal`` error rather
        than hanging on a response that can never arrive.
        """
        assert self._writer is not None, "link not connected"
        if self._dead:
            raise ConnectionError(
                f"shard {self.index} connection lost"
            )
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self.routed += 1
        async with self._write_lock:
            self._writer.write(encode({"op": op, "id": request_id,
                                       **params}))
            await self._writer.drain()
        return await future

    async def aclose(self) -> None:
        """Stop the dispatcher and close the connection."""
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
