"""Wire protocol of the independence service: JSON lines over TCP.

One request per line, one response line per request, UTF-8, compact
JSON.  Requests carry an ``op`` naming the endpoint, an optional ``id``
echoed verbatim in the response (clients pipeline by tagging), and
op-specific parameters at the top level::

    {"id": 1, "op": "analyze", "schema": "xmark", "query": "//title",
     "update": "delete //price"}

Responses are ``{"id": ..., "ok": true, ...result}`` on success and
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}`` on
failure.  A malformed line is answered with a ``bad-json`` /
``bad-request`` error and the connection stays open -- one broken
client request must not tear down a pipelined stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Maximum accepted request line (guards the reader against a client
#: streaming an unbounded line; generous enough for large matrix grids).
MAX_LINE_BYTES = 4 * 1024 * 1024

# Error codes (stable strings, part of the wire contract).
BAD_JSON = "bad-json"
BAD_REQUEST = "bad-request"
BAD_PARAMS = "bad-params"
UNKNOWN_OP = "unknown-op"
UNKNOWN_SCHEMA = "unknown-schema"
UNKNOWN_DOC = "unknown-doc"
UNKNOWN_VIEW = "unknown-view"
INTERNAL = "internal"

#: Every error code a response may carry, in documentation order.
#: ``docs/PROTOCOL.md`` must mention each one
#: (``tests/docs/test_protocol_doc.py`` enforces it).
ERROR_CODES = (
    BAD_JSON,
    BAD_REQUEST,
    BAD_PARAMS,
    UNKNOWN_OP,
    UNKNOWN_SCHEMA,
    UNKNOWN_DOC,
    UNKNOWN_VIEW,
    INTERNAL,
)

#: Every operation the service understands, in documentation order.
#: This tuple is the single source of truth for the op list: the
#: server's dispatch table, the sharded router's routing table, and the
#: op sections of ``docs/PROTOCOL.md`` are all diffed against it by
#: ``tests/docs/test_protocol_doc.py`` -- the documentation cannot
#: drift from the wire without a test failure.
OPS = (
    "ping",
    "analyze",
    "matrix",
    "schedule",
    "schema.register",
    "schema.evict",
    "schema.list",
    "doc.load",
    "doc.query",
    "doc.unload",
    "view.register",
    "view.result",
    "update.apply",
    "stats",
    "metrics",
    "shutdown",
)


class ProtocolError(Exception):
    """A request the service can answer only with an error response."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A decoded request line.

    ``trace``, ``timing``, and ``explain`` are the observability
    envelope fields (stripped from ``params`` like ``op``/``id``):
    ``trace`` is a client-supplied trace id propagated through the
    request's spans, ``timing=true`` asks for the per-layer span
    breakdown in the response, and ``explain=true`` asks for the
    request's query plan (the structured decision records of
    :mod:`repro.obs.plan`) in a ``plan`` response field.
    """

    op: str
    params: dict
    id: object = None
    trace: str | None = None
    timing: bool = False
    explain: bool = False


def encode(payload: dict) -> bytes:
    """One compact JSON line, ready for the socket.

    Keys are sorted, so equal payloads encode byte-identically -- the
    property the benchmark gate's cross-mode (and cross-shard-count)
    verdict comparison rests on.

    >>> encode({"op": "ping", "id": 1})
    b'{"id":1,"op":"ping"}\\n'
    """
    return (json.dumps(payload, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_request(line: bytes) -> Request:
    """Parse one request line (raises :class:`ProtocolError`)."""
    try:
        payload = json.loads(line)
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError(BAD_JSON, f"request is not JSON: {error}") \
            from error
    if not isinstance(payload, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError(BAD_REQUEST, 'request needs a string "op"')
    trace = payload.get("trace")
    if trace is not None and not isinstance(trace, str):
        raise ProtocolError(BAD_REQUEST, '"trace" must be a string')
    timing = payload.get("timing", False)
    if not isinstance(timing, bool):
        raise ProtocolError(BAD_REQUEST, '"timing" must be a boolean')
    explain = payload.get("explain", False)
    if not isinstance(explain, bool):
        raise ProtocolError(BAD_REQUEST, '"explain" must be a boolean')
    params = {key: value for key, value in payload.items()
              if key not in ("op", "id", "trace", "timing", "explain")}
    return Request(op=op, params=params, id=payload.get("id"),
                   trace=trace, timing=timing, explain=explain)


def ok_response(request_id: object, result: dict) -> bytes:
    """A success line: ``{"id": ..., "ok": true, ...result}``.

    ``result`` keys override the envelope, so a forwarded response
    that already carries ``ok`` passes through unchanged.
    """
    return encode({"id": request_id, "ok": True, **result})


def error_response(request_id: object, code: str, message: str) -> bytes:
    """An error line with the stable ``{code, message}`` shape."""
    return encode({
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    })


def require(params: dict, key: str, kind: type | tuple = str):
    """Fetch a required, typed parameter (raises ``bad-params``)."""
    value = params.get(key)
    if value is None:
        raise ProtocolError(BAD_PARAMS, f"missing parameter {key!r}")
    if not isinstance(value, kind):
        wanted = getattr(kind, "__name__", str(kind))
        raise ProtocolError(
            BAD_PARAMS, f"parameter {key!r} must be {wanted}"
        )
    return value
