"""The independence service: an asyncio JSON-lines-over-TCP server.

Architecture (top to bottom)::

    connections (asyncio streams, one task per connection,
                 concurrent per-request dispatch, responses tagged by id)
      -> MicroBatcher admission queue        (analyze)
      -> SchemaRegistry (LRU of per-schema AnalysisEngines)
      -> VerdictStore   (SQLite, write-through, group commit)

plus direct endpoints over the same engines for ``matrix``,
``schedule`` (:class:`~repro.viewmaint.scheduler.IsolationScheduler`
waves), and materialized-view maintenance
(:class:`~repro.viewmaint.cache.ViewCache`) over documents loaded per
connection-independent doc ids.  All engine work runs on the batcher's
single analysis worker thread; the event loop only parses, dispatches,
and writes.

``analysis_mode`` selects how ``analyze`` requests are served:

* ``"batched"`` (default) -- through the micro-batching admission
  queue: coalesced ``analyze_matrix`` flushes, group-committed store
  writes;
* ``"engine"`` -- batching disabled, but each request still served by
  the shared per-schema engine (per-request executor hand-off and
  per-verdict commit);
* ``"oneshot"`` -- batching and the engine layer disabled: every
  request pays the full one-shot :func:`repro.analysis.analyze` cost
  (universe + inference tables rebuilt per call).  This is the naive
  stateless request handler the benchmark gate compares against.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..analysis.independence import analyze as oneshot_analyze
from ..viewmaint.cache import ViewCache
from ..viewmaint.scheduler import IsolationScheduler
from ..xmldm.generator import generate_document
from ..xmldm.parse import parse_xml
from .batching import MicroBatcher, wire_verdict
from .protocol import (
    BAD_PARAMS,
    INTERNAL,
    MAX_LINE_BYTES,
    UNKNOWN_DOC,
    UNKNOWN_OP,
    UNKNOWN_SCHEMA,
    UNKNOWN_VIEW,
    ProtocolError,
    Request,
    decode_request,
    error_response,
    ok_response,
    require,
)
from .registry import SchemaRegistry, UnknownSchemaError
from .store import VerdictStore

ANALYSIS_MODES = ("batched", "engine", "oneshot")


@dataclass
class ServeConfig:
    """Knobs of one service instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 8765
    store_path: str = ":memory:"
    batch_window: float = 0.002
    max_batch: int = 512
    analysis_mode: str = "batched"
    max_schemas: int = 256
    max_documents: int = 64
    pair_cache_size: int | None = None
    preload: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.analysis_mode not in ANALYSIS_MODES:
            raise ValueError(
                f"analysis_mode must be one of {ANALYSIS_MODES}"
            )


@dataclass
class _ServiceStats:
    started: float = field(default_factory=time.perf_counter)
    connections: int = 0
    requests: int = 0
    errors: int = 0
    ops: dict[str, int] = field(default_factory=dict)


class IndependenceService:
    """One service instance: registry + store + batcher + TCP front."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.store = VerdictStore(self.config.store_path)
        self.registry = SchemaRegistry(
            store=self.store,
            max_schemas=self.config.max_schemas,
            pair_cache_size=self.config.pair_cache_size,
        )
        self.batcher = MicroBatcher(
            self.registry,
            window=self.config.batch_window,
            max_batch=self.config.max_batch,
            enabled=self.config.analysis_mode == "batched",
        )
        self.stats = _ServiceStats()
        # LRU like the schema registry: loaded documents (tree + view
        # materializations) are the service's largest per-tenant state
        # and must not accumulate for its lifetime.
        self._documents: OrderedDict[str, ViewCache] = OrderedDict()
        self._next_doc = 0
        self.document_evictions = 0
        self._server: asyncio.Server | None = None
        self._stopping = asyncio.Event()
        self._connections: set[asyncio.Task] = set()
        self._ops = {
            "ping": self._op_ping,
            "schema.register": self._op_schema_register,
            "schema.evict": self._op_schema_evict,
            "schema.list": self._op_schema_list,
            "analyze": self._op_analyze,
            "matrix": self._op_matrix,
            "schedule": self._op_schedule,
            "doc.load": self._op_doc_load,
            "doc.unload": self._op_doc_unload,
            "view.register": self._op_view_register,
            "view.result": self._op_view_result,
            "update.apply": self._op_update_apply,
            "stats": self._op_stats,
            "shutdown": self._op_shutdown,
        }
        for name in self.config.preload:
            self.registry.register_builtin(name)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def port(self) -> int:
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    def stop(self) -> None:
        """Request shutdown (what the ``shutdown`` op calls)."""
        self._stopping.set()

    async def serve_until_stopped(self) -> None:
        assert self._server is not None, "service not started"
        async with self._server:
            await self._stopping.wait()
        await self.aclose()

    async def aclose(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Connections idling in readline never observe _stopping on
        # their own; cancel them so shutdown is prompt and quiet.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        await self.batcher.drain()
        self.batcher.close()
        self.store.close()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        self._connections.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: the stream cannot be resynced
                    # reliably, so answer and drop the connection.
                    async with write_lock:
                        writer.write(error_response(
                            None, BAD_PARAMS, "request line too long"))
                        await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Concurrent dispatch: requests on one connection may be
                # answered out of order (clients match on "id"), which
                # lets pipelined analyze calls coalesce in the batcher.
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(asyncio.current_task())
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        self.stats.requests += 1
        request_id = None
        try:
            request = decode_request(line)
            request_id = request.id
            response = ok_response(
                request_id, await self._dispatch(request)
            )
        except ProtocolError as error:
            self.stats.errors += 1
            response = error_response(request_id, error.code, error.message)
        except UnknownSchemaError as error:
            self.stats.errors += 1
            response = error_response(
                request_id, UNKNOWN_SCHEMA,
                f"schema not registered: {error.args[0]!r}",
            )
        except Exception as error:  # noqa: BLE001 -- wire boundary
            self.stats.errors += 1
            response = error_response(
                request_id, INTERNAL, f"{type(error).__name__}: {error}"
            )
        try:
            async with write_lock:
                writer.write(response)
                await writer.drain()
        except ConnectionError:
            pass

    async def _dispatch(self, request: Request) -> dict:
        handler = self._ops.get(request.op)
        if handler is None:
            raise ProtocolError(UNKNOWN_OP, f"unknown op {request.op!r}")
        self.stats.ops[request.op] = self.stats.ops.get(request.op, 0) + 1
        return await handler(request.params)

    async def _in_analysis_thread(self, fn, *args):
        """Run engine-touching work on the single analysis worker."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self.batcher._executor, fn, *args
        )

    # -- ops: basics ---------------------------------------------------------

    async def _op_ping(self, params: dict) -> dict:
        return {"pong": True}

    async def _op_stats(self, params: dict) -> dict:
        # store.stats() scans the verdicts table; keep that off the
        # event loop so a monitoring poller can't stall live traffic.
        store_stats = await self._in_analysis_thread(self.store.stats)
        return {
            "uptime_seconds": time.perf_counter() - self.stats.started,
            "analysis_mode": self.config.analysis_mode,
            "connections": self.stats.connections,
            "requests": self.stats.requests,
            "errors": self.stats.errors,
            "ops": dict(self.stats.ops),
            "documents": len(self._documents),
            "document_evictions": self.document_evictions,
            "registry": self.registry.stats(),
            "batcher": self.batcher.stats(),
            "store": store_stats,
        }

    async def _op_shutdown(self, params: dict) -> dict:
        # Respond first; serve_until_stopped tears the service down.
        asyncio.get_running_loop().call_soon(self.stop)
        return {"stopping": True}

    # -- ops: schema registry ------------------------------------------------

    async def _op_schema_register(self, params: dict) -> dict:
        name = params.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError(BAD_PARAMS, 'parameter "name" must be str')
        if "builtin" in params:
            digest = self.registry.register_builtin(
                require(params, "builtin")
            )
        else:
            try:
                digest = self.registry.register_text(
                    require(params, "root"),
                    require(params, "dtd"),
                    name=name,
                )
            except ProtocolError:
                raise
            except Exception as error:
                raise ProtocolError(
                    BAD_PARAMS, f"unparsable DTD: {error}"
                ) from error
        schema = self.registry.schema(digest)
        return {
            "schema": digest,
            "tags": len(schema.alphabet),
            "start": schema.start,
        }

    async def _op_schema_evict(self, params: dict) -> dict:
        return {
            "evicted": self.registry.evict(require(params, "schema"))
        }

    async def _op_schema_list(self, params: dict) -> dict:
        return {"schemas": self.registry.describe()}

    # -- ops: analysis -------------------------------------------------------

    @staticmethod
    def _optional_k(params: dict) -> int | None:
        k = params.get("k")
        if k is not None and not isinstance(k, int):
            raise ProtocolError(BAD_PARAMS, 'parameter "k" must be int')
        return k

    async def _op_analyze(self, params: dict) -> dict:
        schema_ref = require(params, "schema")
        query = require(params, "query")
        update = require(params, "update")
        k = self._optional_k(params)
        if self.config.analysis_mode == "oneshot":
            schema = self.registry.schema(schema_ref)
            report = await self._in_analysis_thread(
                lambda: oneshot_analyze(query, update, schema, k=k,
                                        collect_witnesses=False)
            )
            verdict = wire_verdict(report)
        else:
            verdict = await self.batcher.submit(
                schema_ref, query, update, k=k
            )
        return verdict.as_dict()

    async def _op_matrix(self, params: dict) -> dict:
        engine = self.registry.engine(require(params, "schema"))
        queries = require(params, "queries", list)
        updates = require(params, "updates", list)
        k = self._optional_k(params)
        if not all(isinstance(q, str) for q in queries) or \
                not all(isinstance(u, str) for u in updates):
            raise ProtocolError(
                BAD_PARAMS, "queries/updates must be lists of strings"
            )

        def run():
            with self.store.deferred():
                return engine.analyze_matrix(queries, updates, k=k)

        matrix = await self._in_analysis_thread(run)
        return {
            "independent": [list(row) for row in matrix.verdict_rows()],
            "pairs": matrix.pairs,
            "independent_pairs": matrix.independent_pairs,
            "wall_seconds": matrix.wall_seconds,
        }

    async def _op_schedule(self, params: dict) -> dict:
        schema_ref = require(params, "schema")
        operations = require(params, "operations", list)
        schema = self.registry.schema(schema_ref)
        engine = self.registry.engine(schema_ref)
        scheduler = IsolationScheduler(schema, engine=engine)
        for index, operation in enumerate(operations):
            if not isinstance(operation, dict) or \
                    "name" not in operation or \
                    ("query" in operation) == ("update" in operation):
                raise ProtocolError(
                    BAD_PARAMS,
                    f"operation #{index} needs a name and exactly one "
                    'of "query"/"update"',
                )
            try:
                if "query" in operation:
                    scheduler.add_query(operation["name"],
                                        operation["query"])
                else:
                    scheduler.add_update(operation["name"],
                                         operation["update"])
            except Exception as error:
                raise ProtocolError(
                    BAD_PARAMS,
                    f"operation #{index} does not parse: {error}",
                ) from error
        waves = await self._in_analysis_thread(scheduler.schedule)
        return {"waves": waves}

    # -- ops: view maintenance -----------------------------------------------

    def _document(self, params: dict) -> ViewCache:
        doc_id = require(params, "doc")
        cache = self._documents.get(doc_id)
        if cache is None:
            raise ProtocolError(UNKNOWN_DOC,
                                f"document not loaded: {doc_id!r}")
        self._documents.move_to_end(doc_id)
        return cache

    async def _op_doc_load(self, params: dict) -> dict:
        schema_ref = require(params, "schema")
        schema = self.registry.schema(schema_ref)
        engine = self.registry.engine(schema_ref)
        if "xml" in params:
            xml = require(params, "xml")

            def parse():
                # Off the event loop: client XML may be megabytes.
                try:
                    return parse_xml(xml)
                except Exception as error:
                    raise ProtocolError(
                        BAD_PARAMS, f"unparsable document: {error}"
                    ) from error

            tree = await self._in_analysis_thread(parse)
        else:
            target = params.get("bytes", 10_000)
            seed = params.get("seed", 0)
            if not isinstance(target, int) or not isinstance(seed, int):
                raise ProtocolError(
                    BAD_PARAMS, '"bytes" and "seed" must be ints'
                )
            tree = await self._in_analysis_thread(
                lambda: generate_document(schema, target, seed=seed)
            )
        self._next_doc += 1
        doc_id = f"d{self._next_doc}"
        self._documents[doc_id] = ViewCache(schema, tree, engine=engine)
        while len(self._documents) > self.config.max_documents:
            self._documents.popitem(last=False)
            self.document_evictions += 1
        return {"doc": doc_id, "nodes": tree.size()}

    async def _op_doc_unload(self, params: dict) -> dict:
        doc_id = require(params, "doc")
        return {"unloaded": self._documents.pop(doc_id, None) is not None}

    async def _op_view_register(self, params: dict) -> dict:
        cache = self._document(params)
        name = require(params, "name")
        query = require(params, "query")

        def run():
            try:
                cache.register(name, query)
            except Exception as error:
                raise ProtocolError(
                    BAD_PARAMS, f"view does not parse: {error}"
                ) from error
            return len(cache.result(name))

        return {"count": await self._in_analysis_thread(run)}

    async def _op_view_result(self, params: dict) -> dict:
        cache = self._document(params)
        name = require(params, "name")
        if name not in cache.view_names():
            raise ProtocolError(UNKNOWN_VIEW,
                                f"view not registered: {name!r}")
        return {"count": len(cache.result(name))}

    async def _op_update_apply(self, params: dict) -> dict:
        cache = self._document(params)
        update = require(params, "update")

        def run():
            with self.store.deferred():
                try:
                    return cache.apply(update)
                except ProtocolError:
                    raise
                except Exception as error:
                    raise ProtocolError(
                        BAD_PARAMS, f"update failed: {error}"
                    ) from error

        refreshed = await self._in_analysis_thread(run)
        return {
            "refreshed": refreshed,
            "skipped": len(cache.view_names()) - len(refreshed),
            "skip_ratio": cache.stats.skip_ratio,
        }


async def run_service(config: ServeConfig, ready=None) -> None:
    """Start a service and block until a ``shutdown`` op (CLI body)."""
    service = IndependenceService(config)
    host, port = await service.start()
    if ready is not None:
        ready(service, host, port)
    await service.serve_until_stopped()
