"""The independence service: an asyncio JSON-lines-over-TCP server.

Architecture of one (unsharded) service instance, top to bottom::

    connections (asyncio streams, one task per connection,
                 concurrent per-request dispatch, responses tagged by id)
      -> MicroBatcher admission queue        (analyze)
      -> SchemaRegistry (LRU of per-schema AnalysisEngines)
      -> storage backend (verdict KV: write-through, group commit;
         memory / SQLite / PostgreSQL, picked by the store URL)

plus direct endpoints over the same engines for ``matrix``,
``schedule`` (:class:`~repro.viewmaint.scheduler.IsolationScheduler`
waves), and materialized-view maintenance
(:class:`~repro.viewmaint.cache.ViewCache`) over documents loaded per
connection-independent doc ids.  All engine work runs on the batcher's
single analysis worker thread; the event loop only parses, dispatches,
and writes.

With ``shards`` > 1 the admission path changes shape from "one queue,
one thread" to "router + shard pool": :class:`ShardedService` spawns a
pool of worker *processes* (each a complete single-shard service on a
loopback port, see :mod:`.sharding`) and becomes a thin router that
hashes each request's schema digest onto its owning shard::

    clients -> ShardedService (router: resolve ref -> digest,
               shard_for(digest, N), forward over one pipelined
               ShardLink per shard)
      -> shard 0..N-1 (each: its own MicroBatcher + SchemaRegistry
                       partition + AnalysisEngine instances)
      -> one shared storage backend (SQLite WAL with multi-process
         writers, or one PostgreSQL server shared across hosts)

Coalescing still happens per ``(schema, k)`` inside the owning shard --
affinity routing guarantees all traffic for one schema meets in one
admission queue -- while distinct schemas analyze truly in parallel on
separate cores, which is what lifts the single-core throughput cap of
the unsharded service.

``analysis_mode`` selects how ``analyze`` requests are served:

* ``"batched"`` (default) -- through the micro-batching admission
  queue: coalesced ``analyze_matrix`` flushes, group-committed store
  writes;
* ``"engine"`` -- batching disabled, but each request still served by
  the shared per-schema engine (per-request executor hand-off and
  per-verdict commit);
* ``"oneshot"`` -- batching and the engine layer disabled: every
  request pays the full one-shot :func:`repro.analysis.analyze` cost
  (universe + inference tables rebuilt per call).  This is the naive
  stateless request handler the benchmark gate compares against.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..analysis.engine import schema_digest
from ..analysis.independence import analyze as oneshot_analyze
from ..analysis.project import chain_keep_for_queries
from ..docstore.adapter import to_indexed
from ..docstore.pushdown import (
    compile_query_explain,
    serialize_answers,
    step_label,
)
from ..docstore.streamload import load_path, load_xml
from ..schema.dtd import DTD
from ..viewmaint.cache import ViewCache
from ..viewmaint.scheduler import IsolationScheduler
from ..xmldm.generator import generate_document
from ..xmldm.projection import keep_set_for_chains, project
from ..xmldm.serialize import serialize
from ..obs import metrics as obs_metrics
from ..obs.export import render, serve_metrics_http
from ..obs.metrics import REGISTRY, merge_snapshots
from ..obs.plan import (
    current_plan,
    finish_plan,
    start_plan,
)
from ..obs.plan import decision as plan_decision
from ..obs.tracing import (
    SlowRequestLog,
    current_trace,
    finish_trace,
    span,
    start_trace,
)
from ..xquery.ast import ROOT_VAR
from ..xquery.evaluator import evaluate_query
from ..xquery.parser import parse_query
from .batching import MicroBatcher, wire_verdict
from .protocol import (
    BAD_PARAMS,
    ERROR_CODES,
    INTERNAL,
    MAX_LINE_BYTES,
    OPS,
    UNKNOWN_DOC,
    UNKNOWN_OP,
    UNKNOWN_SCHEMA,
    UNKNOWN_VIEW,
    ProtocolError,
    Request,
    decode_request,
    error_response,
    ok_response,
    require,
)
from ..storage import open_storage_plan, serve_storage_plan
from .registry import BUILTIN_SCHEMAS, SchemaRegistry, UnknownSchemaError
from .sharding import (
    DIGEST_RE,
    ShardLink,
    builtin_digest,
    join_shards,
    shard_for,
    spawn_shards,
)

ANALYSIS_MODES = ("batched", "engine", "oneshot")


@dataclass
class ServeConfig:
    """Knobs of one service instance (CLI flags map 1:1).

    ``shards`` selects the serving topology: ``1`` (default) runs the
    classic in-process service; ``N > 1`` runs a router plus ``N``
    worker processes with schema-affinity request routing (see
    :class:`ShardedService`).  ``shard_index`` and ``doc_id_prefix``
    are set by the router on the worker copies of the config -- they
    label a worker's ``/stats`` payload and namespace its document ids
    so the router can route document operations statelessly.

    ``store_path`` accepts a **store URL** (``memory://``,
    ``sqlite:///path.db``, ``postgresql://host/db`` -- see
    :mod:`repro.storage` and ``docs/STORAGE.md``); a URL is *unified*:
    one backend persists verdicts and documents together, so
    ``doc_store_path`` becomes unnecessary.  The legacy spellings keep
    their historical semantics: ``":memory:"`` (default) is an
    ephemeral verdict store, a plain path is a verdicts-only SQLite
    file, and ``doc_store_path`` names a separate SQLite document
    store (one node-table database per registry) -- loaded documents
    persist there and are served from the table after a restart
    instead of being re-parsed; empty (the default) disables
    persistence.  With ``shards`` the backend, like the verdict store,
    is shared by all shard workers.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    store_path: str = ":memory:"
    doc_store_path: str = ""
    batch_window: float = 0.002
    max_batch: int = 512
    analysis_mode: str = "batched"
    max_schemas: int = 256
    max_documents: int = 64
    pair_cache_size: int | None = None
    preload: tuple[str, ...] = ()
    shards: int = 1
    shard_index: int | None = None
    doc_id_prefix: str = ""
    #: Requests at least this many milliseconds of wall time are
    #: recorded in the in-memory slow-request ring (surfaced by the
    #: ``metrics`` op) and, with ``slow_log_path``, appended as JSON
    #: lines to the slow log.  0 disables slow-request capture.
    slow_ms: float = 0.0
    slow_log_path: str = ""
    #: Extra HTTP listener answering ``GET /metrics`` with Prometheus
    #: text exposition (0 disables).  In the sharded topology only the
    #: router binds it; workers expose metrics over the wire op.
    metrics_port: int = 0

    def __post_init__(self) -> None:
        if self.analysis_mode not in ANALYSIS_MODES:
            raise ValueError(
                f"analysis_mode must be one of {ANALYSIS_MODES}"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")


@dataclass
class _ServiceStats:
    """Front-door counters shared by the plain service and the router."""

    started: float = field(default_factory=time.perf_counter)
    connections: int = 0
    requests: int = 0
    errors: int = 0
    ops: dict[str, int] = field(default_factory=dict)


class JsonLinesFront:
    """The shared TCP front: line framing, concurrent dispatch, errors.

    Both the unsharded :class:`IndependenceService` and the
    :class:`ShardedService` router serve the same wire surface; this
    base owns everything protocol-shaped -- accepting connections,
    reading one JSON request per line, dispatching requests
    concurrently (responses may be answered out of order; clients match
    on ``id``), mapping exceptions to error responses, and orderly
    shutdown -- while subclasses implement ``_dispatch`` only.
    """

    def __init__(self, host: str, port: int, *, role: str = "service",
                 slow_ms: float = 0.0, slow_log_path: str = "",
                 metrics_port: int = 0):
        self._host = host
        self._port = port
        self.stats = _ServiceStats()
        #: Metric ``role`` label: ``"router"`` on the sharded router,
        #: ``"service"`` on the unsharded service and shard workers.
        self.role = role
        self.slow = SlowRequestLog(slow_ms, slow_log_path)
        self._metrics_port = metrics_port
        self._metrics_server: asyncio.Server | None = None
        self._server: asyncio.Server | None = None
        self._stopping = asyncio.Event()
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        if self._metrics_port:
            self._metrics_server = await serve_metrics_http(
                self._host, self._metrics_port, self._metrics_text
            )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    @property
    def metrics_port(self) -> int:
        """The bound ``/metrics`` HTTP port (0 when not enabled)."""
        if self._metrics_server is None:
            return 0
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def port(self) -> int:
        """The bound TCP port (valid once :meth:`start` returned)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    def stop(self) -> None:
        """Request shutdown (what the ``shutdown`` op calls)."""
        self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Serve until :meth:`stop`, then tear everything down."""
        assert self._server is not None, "service not started"
        async with self._server:
            await self._stopping.wait()
        await self.aclose()

    async def aclose(self) -> None:
        """Close the front door, live connections, then backend state."""
        self._stopping.set()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Connections idling in readline never observe _stopping on
        # their own; cancel them so shutdown is prompt and quiet.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        self.slow.close()
        await self._close_backend()

    async def _close_backend(self) -> None:
        """Release subclass-owned resources (overridden)."""

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One task per client connection: frame lines, spawn dispatch."""
        self.stats.connections += 1
        obs_metrics.CONNECTIONS.labels(role=self.role).inc()
        self._connections.add(asyncio.current_task())
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: the stream cannot be resynced
                    # reliably, so answer and drop the connection.
                    async with write_lock:
                        writer.write(error_response(
                            None, BAD_PARAMS, "request line too long"))
                        await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Concurrent dispatch: requests on one connection may be
                # answered out of order (clients match on "id"), which
                # lets pipelined analyze calls coalesce in the batcher.
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(asyncio.current_task())
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter,
                          write_lock: asyncio.Lock) -> None:
        """Decode, dispatch, and answer one request line.

        Every request is timed into the per-op latency histogram
        (``op`` label clamped to the known op vocabulary so a hostile
        client cannot grow label cardinality) and runs under a
        :class:`~repro.obs.tracing.TraceContext` so downstream layers
        can attach spans.  ``timing: true`` requests get the span
        breakdown attached to the success response; ``explain: true``
        requests additionally run under a
        :class:`~repro.obs.plan.PlanContext` and get the decision plan
        attached (a forwarded shard's plan folds under the router's);
        requests over the ``--slow-ms`` threshold land in the slow
        ring/log, with their plan when one was captured.
        """
        self.stats.requests += 1
        request_id = None
        op_label = "unknown"
        trace = None
        plan = None
        plan_report = None
        error_code = None
        started = time.perf_counter()
        try:
            request = decode_request(line)
            request_id = request.id
            if request.op in _KNOWN_OPS:
                op_label = request.op
            trace = start_trace(request.trace)
            # Slow-request capture wants a plan even when the client did
            # not ask for one, so plans piggyback on the slow threshold.
            if request.explain or self.slow.enabled:
                plan = start_plan()
            result = await self._dispatch(request)
            if result.get("ok") is False:
                # A forwarded shard error: count it like a local one.
                self.stats.errors += 1
                forwarded = (result.get("error") or {}).get("code")
                error_code = forwarded if forwarded in ERROR_CODES \
                    else INTERNAL
            elif request.timing or request.explain:
                result = dict(result)
                if request.timing:
                    result["timing"] = trace.report(
                        inner=result.pop("timing", None)
                    )
                if request.explain and plan is not None:
                    plan_report = plan.report(
                        inner=result.pop("plan", None)
                    )
                    result["plan"] = plan_report
            response = ok_response(request_id, result)
        except ProtocolError as error:
            self.stats.errors += 1
            error_code = error.code
            response = error_response(request_id, error.code, error.message)
        except UnknownSchemaError as error:
            self.stats.errors += 1
            error_code = UNKNOWN_SCHEMA
            response = error_response(
                request_id, UNKNOWN_SCHEMA,
                f"schema not registered: {error.args[0]!r}",
            )
        except Exception as error:  # noqa: BLE001 -- wire boundary
            self.stats.errors += 1
            error_code = INTERNAL
            response = error_response(
                request_id, INTERNAL, f"{type(error).__name__}: {error}"
            )
        finally:
            if trace is not None:
                finish_trace(trace)
            if plan is not None:
                finish_plan(plan)
        elapsed = time.perf_counter() - started
        obs_metrics.REQUEST_SECONDS.labels(
            op=op_label, role=self.role
        ).observe(elapsed)
        if error_code is not None:
            obs_metrics.REQUEST_ERRORS.labels(
                op=op_label, code=error_code, role=self.role
            ).inc()
        if trace is not None and self.slow.enabled:
            if plan is not None and plan_report is None:
                plan_report = plan.report()
            if self.slow.record(op_label, trace, elapsed * 1000.0,
                                ok=error_code is None, plan=plan_report):
                obs_metrics.SLOW_REQUESTS.labels(
                    op=op_label, role=self.role
                ).inc()
        try:
            async with write_lock:
                writer.write(response)
                await writer.drain()
        except ConnectionError:
            pass

    async def _dispatch(self, request: Request) -> dict:
        """Serve one decoded request (implemented by subclasses)."""
        raise NotImplementedError

    # -- metrics surface -----------------------------------------------------

    async def _metrics_snapshot(self) -> dict:
        """The mergeable registry snapshot this front exposes.

        The unsharded service (and every shard worker) exposes its own
        process registry; the sharded router overrides this with the
        fan-out merge across its workers.
        """
        return REGISTRY.snapshot()

    async def _metrics_text(self) -> str:
        """Prometheus text exposition for the HTTP ``/metrics`` listener."""
        return render(await self._metrics_snapshot())


#: Known op names, for clamping the request histogram's ``op`` label.
_KNOWN_OPS = frozenset(OPS)


class IndependenceService(JsonLinesFront):
    """One unsharded service instance: registry + store + batcher + TCP.

    Also the body of every shard worker process in the sharded
    topology (a shard *is* an ordinary single-threaded service, plus a
    ``doc_id_prefix`` so the router can route document ops to it).
    """

    #: op name -> handler method name; the dispatch table is built from
    #: this mapping, and ``tests/docs/test_protocol_doc.py`` diffs its
    #: keys against :data:`repro.serve.protocol.OPS`.
    OP_HANDLERS = {
        "ping": "_op_ping",
        "schema.register": "_op_schema_register",
        "schema.evict": "_op_schema_evict",
        "schema.list": "_op_schema_list",
        "analyze": "_op_analyze",
        "matrix": "_op_matrix",
        "schedule": "_op_schedule",
        "doc.load": "_op_doc_load",
        "doc.query": "_op_doc_query",
        "doc.unload": "_op_doc_unload",
        "view.register": "_op_view_register",
        "view.result": "_op_view_result",
        "update.apply": "_op_update_apply",
        "stats": "_op_stats",
        "metrics": "_op_metrics",
        "shutdown": "_op_shutdown",
    }

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        super().__init__(
            self.config.host, self.config.port,
            role="service",
            slow_ms=self.config.slow_ms,
            slow_log_path=self.config.slow_log_path,
            metrics_port=self.config.metrics_port,
        )
        self.storage_plan = serve_storage_plan(
            self.config.store_path, self.config.doc_store_path
        )
        self._storage = open_storage_plan(self.storage_plan)
        self.store = self._storage.verdicts
        self.registry = SchemaRegistry(
            store=self.store,
            max_schemas=self.config.max_schemas,
            pair_cache_size=self.config.pair_cache_size,
        )
        self.batcher = MicroBatcher(
            self.registry,
            window=self.config.batch_window,
            max_batch=self.config.max_batch,
            enabled=self.config.analysis_mode == "batched",
        )
        # LRU like the schema registry: loaded documents (tree + view
        # materializations) are the service's largest per-tenant state
        # and must not accumulate for its lifetime.
        self._documents: OrderedDict[str, ViewCache] = OrderedDict()
        #: Per-document load accounting (kept vs skipped-by-projection,
        #: provenance), mirrored into ``/stats``.
        self._doc_meta: dict[str, dict] = {}
        self.docstore = self._storage.documents
        self._next_doc = 0
        self.document_evictions = 0
        #: ``doc.query`` answer-path counters (mirrored into
        #: ``/stats``): ``pushed_down`` answered inside the store via
        #: SQL pushdown, ``fallback`` materialized transiently because
        #: the query fell outside the pushdown fragment,
        #: ``materialized`` answered from an already-loaded tree.
        self.doc_queries = {
            "pushed_down": 0, "fallback": 0, "materialized": 0,
        }
        self._ops = {
            op: getattr(self, method)
            for op, method in self.OP_HANDLERS.items()
        }
        for name in self.config.preload:
            self.registry.register_builtin(name)

    # -- lifecycle -----------------------------------------------------------

    async def _close_backend(self) -> None:
        """Drain the admission queue, stop the worker, close the stores."""
        await self.batcher.drain()
        self.batcher.close()
        self._storage.close()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, request: Request) -> dict:
        handler = self._ops.get(request.op)
        if handler is None:
            raise ProtocolError(UNKNOWN_OP, f"unknown op {request.op!r}")
        self.stats.ops[request.op] = self.stats.ops.get(request.op, 0) + 1
        return await handler(request.params)

    async def _in_analysis_thread(self, fn, *args):
        """Run engine-touching work on the single analysis worker.

        The caller's context is copied into the worker (executors do
        not propagate contextvars on their own), so engine decisions
        recorded on the thread land on this request's plan.
        """
        loop = asyncio.get_running_loop()
        ctx = contextvars.copy_context()
        return await loop.run_in_executor(
            self.batcher._executor, ctx.run, fn, *args
        )

    # -- ops: basics ---------------------------------------------------------

    async def _op_ping(self, params: dict) -> dict:
        """Liveness probe; carries no state."""
        return {"pong": True}

    async def _op_stats(self, params: dict) -> dict:
        """Service counters: front door, registry, batcher, store."""
        # store.stats() scans the verdicts table; keep that off the
        # event loop so a monitoring poller can't stall live traffic.
        store_stats = await self._in_analysis_thread(self.store.stats)
        if self.docstore is not None:
            docstore_stats = await self._in_analysis_thread(
                self.docstore.stats
            )
            docstore_stats["enabled"] = True
        else:
            docstore_stats = {"enabled": False}
        payload = {
            "uptime_seconds": time.perf_counter() - self.stats.started,
            "analysis_mode": self.config.analysis_mode,
            "shards": 1,
            "connections": self.stats.connections,
            "requests": self.stats.requests,
            "errors": self.stats.errors,
            "ops": dict(self.stats.ops),
            "documents": len(self._documents),
            "document_evictions": self.document_evictions,
            "doc_queries": dict(self.doc_queries),
            "documents_detail": {
                doc: dict(meta) for doc, meta in self._doc_meta.items()
            },
            "docstore": docstore_stats,
            "registry": self.registry.stats(),
            "batcher": self.batcher.stats(),
            "store": store_stats,
        }
        if self.config.shard_index is not None:
            payload["shard_index"] = self.config.shard_index
        return payload

    async def _op_metrics(self, params: dict) -> dict:
        """The observability surface of this process.

        Returns the Prometheus ``text`` exposition, the mergeable
        ``snapshot`` it was rendered from (what the sharded router
        aggregates), and the ``slow`` request ring.
        """
        snapshot = await self._metrics_snapshot()
        return {
            "text": render(snapshot),
            "snapshot": snapshot,
            "slow": self.slow.entries(),
        }

    async def _op_shutdown(self, params: dict) -> dict:
        """Stop serving (the response is written before teardown)."""
        # Respond first; serve_until_stopped tears the service down.
        asyncio.get_running_loop().call_soon(self.stop)
        return {"stopping": True}

    # -- ops: schema registry ------------------------------------------------

    async def _op_schema_register(self, params: dict) -> dict:
        """Register a builtin or ``<!ELEMENT ...>`` schema; returns its
        digest (the canonical schema ref for later requests)."""
        name = params.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError(BAD_PARAMS, 'parameter "name" must be str')
        if "builtin" in params:
            digest = self.registry.register_builtin(
                require(params, "builtin")
            )
        else:
            try:
                digest = self.registry.register_text(
                    require(params, "root"),
                    require(params, "dtd"),
                    name=name,
                )
            except ProtocolError:
                raise
            except Exception as error:
                raise ProtocolError(
                    BAD_PARAMS, f"unparsable DTD: {error}"
                ) from error
        schema = self.registry.schema(digest)
        return {
            "schema": digest,
            "tags": len(schema.alphabet),
            "start": schema.start,
        }

    async def _op_schema_evict(self, params: dict) -> dict:
        """Drop a schema's warm engine (verdicts stay in the store)."""
        return {
            "evicted": self.registry.evict(require(params, "schema"))
        }

    async def _op_schema_list(self, params: dict) -> dict:
        """Describe every registered schema (digest, aliases, size)."""
        return {"schemas": self.registry.describe()}

    # -- ops: analysis -------------------------------------------------------

    @staticmethod
    def _optional_k(params: dict) -> int | None:
        """Validate the optional explicit ``k`` override."""
        k = params.get("k")
        if k is not None and not isinstance(k, int):
            raise ProtocolError(BAD_PARAMS, 'parameter "k" must be int')
        return k

    async def _op_analyze(self, params: dict) -> dict:
        """One independence verdict, via the admission queue."""
        schema_ref = require(params, "schema")
        query = require(params, "query")
        update = require(params, "update")
        k = self._optional_k(params)
        if self.config.analysis_mode == "oneshot":
            schema = self.registry.schema(schema_ref)
            plan_decision("batcher", "oneshot", schema=schema_ref)
            report = await self._in_analysis_thread(
                lambda: oneshot_analyze(query, update, schema, k=k,
                                        collect_witnesses=False)
            )
            verdict = wire_verdict(report)
        else:
            verdict = await self.batcher.submit(
                schema_ref, query, update, k=k
            )
        return verdict.as_dict()

    async def _op_matrix(self, params: dict) -> dict:
        """A full queries x updates verdict grid in one round trip."""
        engine = self.registry.engine(require(params, "schema"))
        queries = require(params, "queries", list)
        updates = require(params, "updates", list)
        k = self._optional_k(params)
        if not all(isinstance(q, str) for q in queries) or \
                not all(isinstance(u, str) for u in updates):
            raise ProtocolError(
                BAD_PARAMS, "queries/updates must be lists of strings"
            )

        def run():
            with self.store.deferred():
                return engine.analyze_matrix(queries, updates, k=k)

        matrix = await self._in_analysis_thread(run)
        return {
            "independent": [list(row) for row in matrix.verdict_rows()],
            "pairs": matrix.pairs,
            "independent_pairs": matrix.independent_pairs,
            "wall_seconds": matrix.wall_seconds,
        }

    async def _op_schedule(self, params: dict) -> dict:
        """Conflict-free execution waves for a mixed operation batch."""
        schema_ref = require(params, "schema")
        operations = require(params, "operations", list)
        schema = self.registry.schema(schema_ref)
        engine = self.registry.engine(schema_ref)
        scheduler = IsolationScheduler(schema, engine=engine)
        for index, operation in enumerate(operations):
            if not isinstance(operation, dict) or \
                    "name" not in operation or \
                    ("query" in operation) == ("update" in operation):
                raise ProtocolError(
                    BAD_PARAMS,
                    f"operation #{index} needs a name and exactly one "
                    'of "query"/"update"',
                )
            try:
                if "query" in operation:
                    scheduler.add_query(operation["name"],
                                        operation["query"])
                else:
                    scheduler.add_update(operation["name"],
                                         operation["update"])
            except Exception as error:
                raise ProtocolError(
                    BAD_PARAMS,
                    f"operation #{index} does not parse: {error}",
                ) from error
        waves = await self._in_analysis_thread(scheduler.schedule)
        return {"waves": waves}

    # -- ops: view maintenance -----------------------------------------------

    def _document(self, params: dict) -> ViewCache:
        """Resolve the ``doc`` param to a loaded document (LRU touch)."""
        doc_id = require(params, "doc")
        cache = self._documents.get(doc_id)
        if cache is None:
            raise ProtocolError(UNKNOWN_DOC,
                                f"document not loaded: {doc_id!r}")
        self._documents.move_to_end(doc_id)
        return cache

    @staticmethod
    def _validated_project_for(params: dict) -> list[str] | None:
        """The ``project_for`` parameter, shape-checked (every branch
        of ``doc.load`` consumes it, so every branch must reject a
        malformed value with ``bad-params``, not a stack trace)."""
        queries = params.get("project_for")
        if queries is None:
            return None
        if not isinstance(queries, list) or \
                not all(isinstance(q, str) for q in queries):
            raise ProtocolError(
                BAD_PARAMS, '"project_for" must be a list of query strings'
            )
        return queries

    def _projection_keep(self, engine, queries: list[str] | None):
        """The union :class:`ChainKeep` of the ``project_for`` queries.

        Returns None when no projection was requested *or* when some
        query's chain sets are too large to enumerate (the sound
        fallback is loading everything).  Runs chain inference, so it
        must be called on the analysis worker thread.
        """
        if queries is None:
            return None
        try:
            return chain_keep_for_queries(queries, engine=engine)
        except Exception as error:
            raise ProtocolError(
                BAD_PARAMS,
                f"project_for query does not parse: {error}",
            ) from error

    def _fresh_doc_name(self) -> str:
        """An anonymous doc name that cannot clobber an existing one.

        Skips names already loaded in this service or persisted in the
        document store (a client-supplied ``doc: "d1"`` must never be
        silently overwritten by a later anonymous load).  Sharded
        workers scope their anonymous names (``d<shard>x<n>``) so two
        shards sharing one document-store file cannot race each other
        to the same persistence key.
        """
        shard = self.config.shard_index
        stem = "d" if shard is None else f"d{shard}x"
        while True:
            self._next_doc += 1
            name = f"{stem}{self._next_doc}"
            if f"{self.config.doc_id_prefix}{name}" in self._documents:
                continue
            if self.docstore is not None and \
                    self.docstore.describe(name) is not None:
                continue
            return name

    async def _op_doc_load(self, params: dict) -> dict:
        """Load a document; returns its doc id and load accounting.

        Sources, in precedence order: inline ``xml`` text, a
        server-local file ``path`` (both streamed through the indexed
        bulk loader, with projection pushdown when ``project_for``
        names the queries that will run), the persisted node table
        (when ``doc`` names a previously persisted document and no
        source is given -- no re-parse), or schema-driven generation
        (``bytes``/``seed``).  With a document store configured, parsed
        and generated documents persist under their doc id.
        """
        schema_ref = require(params, "schema")
        schema = self.registry.schema(schema_ref)
        engine = self.registry.engine(schema_ref)
        name = params.get("doc")
        if name is not None and (not isinstance(name, str) or not name):
            raise ProtocolError(BAD_PARAMS,
                                'parameter "doc" must be a non-empty str')
        if name is None:
            name = await self._in_analysis_thread(self._fresh_doc_name)
        # The prefix namespaces ids per shard (``s<index>-<name>``) so
        # the sharded router can route later doc ops without shared
        # state; the *persistence* key is the unprefixed name, so a
        # persisted document survives topology changes (affinity
        # routing reloads it on whichever shard now owns its schema).
        doc_id = f"{self.config.doc_id_prefix}{name}"
        meta = {
            "projected": False,
            "from_store": False,
            "subtrees_skipped": 0,
        }
        provenance = "unprojected"
        depth_cap = None
        requested = self._validated_project_for(params)
        if "xml" in params or "path" in params:
            keep = await self._in_analysis_thread(
                self._projection_keep, engine, requested
            )
            meta["projected"] = keep is not None
            provenance = "projected" if keep is not None else "unprojected"
            depth_cap = keep.truncation if keep is not None else None
            if "xml" in params:
                xml = require(params, "xml")
                loader = lambda: load_xml(xml, keep=keep)  # noqa: E731
            else:
                path = require(params, "path")
                loader = lambda: load_path(path, keep=keep)  # noqa: E731

            def run():
                # Off the event loop: documents may be megabytes.
                try:
                    return loader()
                except OSError as error:
                    raise ProtocolError(
                        BAD_PARAMS, f"unreadable document: {error}"
                    ) from error
                except Exception as error:
                    raise ProtocolError(
                        BAD_PARAMS, f"unparsable document: {error}"
                    ) from error

            result = await self._in_analysis_thread(run)
            tree = result.tree
            meta["nodes_seen"] = result.nodes_seen
            meta["subtrees_skipped"] = result.subtrees_skipped
            persist = True
        else:
            reload_request = params.get("doc") is not None and \
                "bytes" not in params and "seed" not in params
            if reload_request and self.docstore is None:
                # Naming a document with no source reads as "reload
                # the persisted copy"; without a document store that
                # would silently generate a random document under the
                # client's name.
                raise ProtocolError(
                    BAD_PARAMS,
                    f"doc {name!r} given without a source, but the "
                    "service has no document store (--doc-store or a "
                    "--store URL); pass xml/path or explicit bytes/seed",
                )
            loaded = None
            # Only a reload request consults the store: explicit
            # bytes/seed is a generation request that must not be
            # shadowed by a stale persisted document, and anonymous
            # names were just invented (a lookup would only pollute
            # the miss counter).
            if reload_request and self.docstore is not None:
                # One load() call: a hit re-materializes the node
                # table with a range scan (no re-parse), a miss counts
                # in the docstore miss counter.
                loaded = await self._in_analysis_thread(
                    self.docstore.load, name
                )
            if loaded is None and reload_request:
                # A reload of a name the store does not hold is a
                # client error (likely a typo), not a license to
                # generate and persist a random document under it.
                raise ProtocolError(
                    BAD_PARAMS,
                    f"doc {name!r} is not persisted in the document "
                    "store; pass xml/path or explicit bytes/seed",
                )
            if loaded is not None:
                tree, stored = loaded
                if stored.schema_digest != schema_digest(schema):
                    raise ProtocolError(
                        BAD_PARAMS,
                        f"document {name!r} was persisted under a "
                        "different schema (digest "
                        f"{stored.schema_digest[:12]}...); pass the "
                        "matching schema or reload from a source",
                    )
                # A persisted *projection* only answers the queries it
                # was projected for (Theorem 3.2); a reload asking for
                # queries outside the recorded set must not silently
                # get the narrower tree.
                recorded = stored.meta.get("project_for")
                if stored.meta.get("projected") and \
                        requested is not None and recorded is not None \
                        and not set(requested) <= set(recorded):
                    raise ProtocolError(
                        BAD_PARAMS,
                        f"persisted document {name!r} is projected for "
                        f"{sorted(recorded)}, which does not cover "
                        "project_for; reload it from a source",
                    )
                meta.update(
                    from_store=True,
                    projected=stored.meta.get("projected", False),
                    nodes_seen=stored.nodes_seen,
                    subtrees_skipped=stored.subtrees_skipped,
                )
                provenance = "from_store"
                persist = False
            else:
                target = params.get("bytes", 10_000)
                seed = params.get("seed", 0)
                if not isinstance(target, int) or \
                        not isinstance(seed, int):
                    raise ProtocolError(
                        BAD_PARAMS, '"bytes" and "seed" must be ints'
                    )
                keep = await self._in_analysis_thread(
                    self._projection_keep, engine, requested
                )
                meta["projected"] = keep is not None
                provenance = "generated"
                depth_cap = keep.truncation if keep is not None else None

                def generate():
                    document = generate_document(schema, target,
                                                 seed=seed)
                    if keep is None:
                        return to_indexed(document), document.size()
                    # Generated documents project post-hoc (there is
                    # no parse stream to push the projection into).
                    projected = project(
                        document, keep_set_for_chains(document, keep)
                    )
                    return to_indexed(projected), document.size()

                tree, seen = await self._in_analysis_thread(generate)
                meta["nodes_seen"] = seen
                persist = True
        meta["nodes"] = tree.size()
        if persist and self.docstore is not None:
            with span("store"):
                await self._in_analysis_thread(
                    lambda: self.docstore.save(
                        name, tree, schema_digest(schema),
                        nodes_seen=meta["nodes_seen"],
                        subtrees_skipped=meta["subtrees_skipped"],
                        meta={
                            "projected": meta["projected"],
                            "project_for": requested
                            if meta["projected"] else None,
                        },
                    )
                )
        self._documents[doc_id] = ViewCache(schema, tree, engine=engine)
        # Reloads must count as a fresh touch, or a just-reloaded doc
        # keeps its old LRU position and can be evicted immediately.
        self._documents.move_to_end(doc_id)
        self._doc_meta[doc_id] = meta
        while len(self._documents) > self.config.max_documents:
            evicted, _ = self._documents.popitem(last=False)
            self._doc_meta.pop(evicted, None)
            self.document_evictions += 1
        obs_metrics.DOCUMENTS_LOADED.set(len(self._documents))
        detail = {
            "doc": doc_id,
            "nodes": meta["nodes"],
            "nodes_seen": meta["nodes_seen"],
            "subtrees_skipped": meta["subtrees_skipped"],
            "projected": meta["projected"],
        }
        if depth_cap is not None:
            detail["depth_cap"] = depth_cap
        plan_decision("docstore", provenance, **detail)
        return {"doc": doc_id, **meta}

    async def _op_doc_query(self, params: dict) -> dict:
        """Answer a query over a loaded *or persisted* document.

        The answer path is picked per request and reported back as
        ``mode`` (and counted in the ``doc_queries`` stats section):

        * ``"materialized"`` -- the document is already loaded in this
          service; evaluate on the in-memory tree.
        * ``"pushdown"`` -- the document is only persisted and the
          query compiles into the supported step fragment
          (:func:`repro.docstore.pushdown.compile_query`); the document
          store answers it *inside the database* and answers serialize
          straight from node-row range scans -- the document is never
          materialized.
        * ``"fallback"`` -- persisted only, but the query falls outside
          the fragment; the tree is materialized transiently (not
          admitted to the document LRU) and evaluated in memory.

        A persisted *projection* only answers the queries it was
        projected for (Theorem 3.2): a query outside the recorded
        ``project_for`` set is refused with ``bad-params`` instead of
        being silently answered from the narrower node table.
        """
        schema_ref = require(params, "schema")
        schema = self.registry.schema(schema_ref)
        name = require(params, "doc")
        query_text = require(params, "query")
        limit = params.get("limit")
        if limit is not None and \
                (not isinstance(limit, int) or limit < 0):
            raise ProtocolError(
                BAD_PARAMS, '"limit" must be a non-negative int'
            )
        try:
            query = parse_query(query_text)
        except Exception as error:
            raise ProtocolError(
                BAD_PARAMS, f"query does not parse: {error}"
            ) from error
        doc_id = f"{self.config.doc_id_prefix}{name}"
        cache = self._documents.get(doc_id)
        if cache is not None:
            self._documents.move_to_end(doc_id)
            tree = cache.tree

            def run_materialized():
                locs = evaluate_query(query, tree.store,
                                      {ROOT_VAR: [tree.root]})
                take = locs if limit is None else locs[:limit]
                return locs, [serialize(tree.store, loc)
                              for loc in take]

            t0 = time.perf_counter()
            with span("engine"):
                locs, answers = await self._in_analysis_thread(
                    run_materialized
                )
            obs_metrics.DOC_QUERY_SECONDS.labels(
                mode="materialized"
            ).observe(time.perf_counter() - t0)
            self.doc_queries["materialized"] += 1
            plan_decision("answer", "materialized",
                          doc=doc_id, count=len(locs))
            return {"doc": doc_id, "count": len(locs),
                    "answers": answers, "mode": "materialized",
                    "from_store": False}
        if self.docstore is None:
            raise ProtocolError(
                UNKNOWN_DOC,
                f"document not loaded: {doc_id!r} (and the service "
                "has no document store to answer from)",
            )
        stored = await self._in_analysis_thread(
            self.docstore.describe, name
        )
        if stored is None:
            raise ProtocolError(
                UNKNOWN_DOC,
                f"document not loaded or persisted: {name!r}",
            )
        if stored.schema_digest != schema_digest(schema):
            raise ProtocolError(
                BAD_PARAMS,
                f"document {name!r} was persisted under a different "
                f"schema (digest {stored.schema_digest[:12]}...); "
                "pass the matching schema",
            )
        recorded = stored.meta.get("project_for")
        if stored.meta.get("projected") and recorded is not None \
                and query_text not in set(recorded):
            raise ProtocolError(
                BAD_PARAMS,
                f"persisted document {name!r} is projected for "
                f"{sorted(recorded)}, which does not cover this "
                "query; reload it from a source",
            )
        steps, why = compile_query_explain(query)
        if steps is not None:
            if current_plan() is not None:
                # explain_steps only *compiles* (no table access), so
                # it is safe off the analysis thread.
                explained = self.docstore.explain_steps(name, steps)
                plan_decision(
                    "pushdown", "compiled",
                    steps=[step_label(spec) for spec in steps],
                    **explained,
                )
            else:
                plan_decision("pushdown", "compiled")

            def run_pushdown():
                locs = self.docstore.run_steps(name, steps)
                return locs, serialize_answers(
                    self.docstore, name, locs, limit
                )

            t0 = time.perf_counter()
            with span("store"):
                locs, answers = await self._in_analysis_thread(
                    run_pushdown
                )
            obs_metrics.DOC_QUERY_SECONDS.labels(
                mode="pushdown"
            ).observe(time.perf_counter() - t0)
            self.doc_queries["pushed_down"] += 1
            mode = "pushdown"
        else:
            plan_decision("pushdown", "ineligible", **(why or {}))

            def run_fallback():
                loaded = self.docstore.load(name)
                if loaded is None:
                    raise ProtocolError(
                        UNKNOWN_DOC,
                        f"document not persisted: {name!r}",
                    )
                tree, _ = loaded
                locs = evaluate_query(query, tree.store,
                                      {ROOT_VAR: [tree.root]})
                take = locs if limit is None else locs[:limit]
                return locs, [serialize(tree.store, loc)
                              for loc in take]

            t0 = time.perf_counter()
            with span("engine"):
                locs, answers = await self._in_analysis_thread(
                    run_fallback
                )
            obs_metrics.DOC_QUERY_SECONDS.labels(
                mode="fallback"
            ).observe(time.perf_counter() - t0)
            self.doc_queries["fallback"] += 1
            mode = "fallback"
        plan_decision("answer", mode, doc=doc_id, count=len(locs))
        return {"doc": doc_id, "count": len(locs),
                "answers": answers, "mode": mode, "from_store": True}

    async def _op_doc_unload(self, params: dict) -> dict:
        """Drop a loaded document (idempotent; the persisted node
        table, if any, keeps its copy)."""
        doc_id = require(params, "doc")
        self._doc_meta.pop(doc_id, None)
        unloaded = self._documents.pop(doc_id, None) is not None
        obs_metrics.DOCUMENTS_LOADED.set(len(self._documents))
        return {"unloaded": unloaded}

    async def _op_view_register(self, params: dict) -> dict:
        """Materialize a named view over a loaded document."""
        cache = self._document(params)
        name = require(params, "name")
        query = require(params, "query")

        def run():
            try:
                cache.register(name, query)
            except Exception as error:
                raise ProtocolError(
                    BAD_PARAMS, f"view does not parse: {error}"
                ) from error
            return len(cache.result(name))

        return {"count": await self._in_analysis_thread(run)}

    async def _op_view_result(self, params: dict) -> dict:
        """Current size of a materialized view."""
        cache = self._document(params)
        name = require(params, "name")
        if name not in cache.view_names():
            raise ProtocolError(UNKNOWN_VIEW,
                                f"view not registered: {name!r}")
        return {"count": len(cache.result(name))}

    async def _op_update_apply(self, params: dict) -> dict:
        """Apply an update; refresh only the views it may affect."""
        cache = self._document(params)
        update = require(params, "update")

        def run():
            with self.store.deferred():
                try:
                    return cache.apply(update)
                except ProtocolError:
                    raise
                except Exception as error:
                    raise ProtocolError(
                        BAD_PARAMS, f"update failed: {error}"
                    ) from error

        refreshed = await self._in_analysis_thread(run)
        return {
            "refreshed": refreshed,
            "skipped": len(cache.view_names()) - len(refreshed),
            "skip_ratio": cache.stats.skip_ratio,
        }


class ShardedService(JsonLinesFront):
    """Schema-affinity router over a pool of shard worker processes.

    The router owns no engines: it resolves each request's schema ref
    to a content digest, hashes the digest onto the owning shard
    (:func:`~repro.serve.sharding.shard_for`), and forwards the request
    over that shard's pipelined :class:`~repro.serve.sharding.ShardLink`.
    Verdicts are pure functions of ``(schema digest, k, query,
    update)``, so any topology answers byte-identically -- the shard
    count only decides how many cores analyze concurrently.

    Reference resolution is stateless where possible (a 64-hex ref *is*
    a digest; builtin names digest deterministically) plus a bounded
    alias table mirrored from successful ``schema.register`` calls.
    Document ids carry their shard (``s<index>-d<n>``), so document
    operations route without any router-side document state.
    """

    #: op name -> routing class.  Diffed against
    #: :data:`repro.serve.protocol.OPS` by the protocol-doc test so a
    #: new op cannot silently bypass the router.
    ROUTING = {
        "ping": "local",
        "analyze": "schema",
        "matrix": "schema",
        "schedule": "schema",
        "schema.register": "register",
        "schema.evict": "evict",
        "schema.list": "fanout",
        "doc.load": "schema",
        # doc.query names the *persistence* key (unprefixed), so it
        # routes like doc.load: by schema affinity, landing on the
        # shard that owns (and would have loaded) the document.
        "doc.query": "schema",
        "doc.unload": "doc",
        "view.register": "doc",
        "view.result": "doc",
        "update.apply": "doc",
        "stats": "fanout",
        "metrics": "fanout",
        "shutdown": "local",
    }

    #: Floor for the router's alias and registration-digest tables;
    #: the effective bound scales with the pool's registry capacity
    #: (``max_schemas`` per shard) so the router cannot forget names
    #: its shards still hold.
    MAX_ALIASES = 4096

    def __init__(self, config: ServeConfig):
        super().__init__(
            config.host, config.port,
            role="router",
            slow_ms=config.slow_ms,
            slow_log_path=config.slow_log_path,
            metrics_port=config.metrics_port,
        )
        self.config = config
        #: Resolved storage wiring (never opened router-side: the
        #: router owns no stores, but stats aggregation needs to know
        #: whether the shards share one backend or hold private ones).
        self.storage_plan = serve_storage_plan(
            config.store_path, config.doc_store_path
        )
        self.max_aliases = max(
            self.MAX_ALIASES, config.max_schemas * config.shards
        )
        self._handles: list = []
        self._links: list[ShardLink] = []
        self._shards_closed = False
        # name -> digest, mirrored from successful registrations (and
        # preloads); bounded so hostile clients cannot grow the router.
        self._aliases: OrderedDict[str, str] = OrderedDict()
        # (root, dtd text) digest memo so re-registrations skip the
        # router-side DTD parse.
        self._text_digests: OrderedDict[tuple[str, str], str] = (
            OrderedDict()
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Spawn and connect the shard pool, then open the front door."""
        loop = asyncio.get_running_loop()
        self._handles = await loop.run_in_executor(
            None, spawn_shards, self.config, self.config.shards
        )
        try:
            for handle in self._handles:
                link = ShardLink(handle.index, handle.host, handle.port)
                await link.connect()
                self._links.append(link)
            for name in self.config.preload:
                self._remember_alias(name, builtin_digest(name))
            return await super().start()
        except BaseException:
            await self._close_backend()
            raise

    async def _close_backend(self) -> None:
        """Shut down every shard worker and reap the processes."""
        if self._shards_closed:
            return
        self._shards_closed = True
        for link in self._links:
            try:
                await asyncio.wait_for(link.call("shutdown", {}),
                                       timeout=5.0)
            except (TimeoutError, ConnectionError, AssertionError):
                pass
            await link.aclose()
        if self._handles:
            await asyncio.get_running_loop().run_in_executor(
                None, join_shards, self._handles
            )

    # -- routing -------------------------------------------------------------

    def _remember_alias(self, name: str, digest: str) -> None:
        self._aliases[name] = digest
        self._aliases.move_to_end(name)
        while len(self._aliases) > self.max_aliases:
            self._aliases.popitem(last=False)

    def _route_digest(self, ref: str) -> str:
        """Schema ref -> content digest, without asking any shard.

        Raises :class:`UnknownSchemaError` when the ref is neither a
        known alias, a builtin name, nor a literal digest.
        """
        digest, _how = self._route_digest_explain(ref)
        return digest

    def _route_digest_explain(self, ref: str) -> tuple[str, str]:
        """:meth:`_route_digest` plus *how* the ref resolved.

        The second element is the router's plan-decision name:
        ``alias`` (router-side alias table hit), ``builtin`` (named
        builtin schema), or ``digest`` (the ref already was a literal
        content digest).
        """
        digest = self._aliases.get(ref)
        if digest is not None:
            self._aliases.move_to_end(ref)
            return digest, "alias"
        if ref in BUILTIN_SCHEMAS:
            return builtin_digest(ref), "builtin"
        if DIGEST_RE.fullmatch(ref):
            return ref, "digest"
        raise UnknownSchemaError(ref)

    def _link_for_digest(self, digest: str) -> ShardLink:
        return self._links[shard_for(digest, self.config.shards)]

    def _link_for_doc(self, doc_id: str) -> ShardLink:
        """Doc id -> owning shard, parsed from the ``s<index>-`` prefix."""
        if doc_id.startswith("s"):
            index, dash, _ = doc_id[1:].partition("-")
            if dash and index.isdigit() and \
                    int(index) < self.config.shards:
                return self._links[int(index)]
        raise ProtocolError(UNKNOWN_DOC,
                            f"document not loaded: {doc_id!r}")

    @staticmethod
    def _payload(response: dict) -> dict:
        """A forwarded response minus the shard-internal ``id``."""
        return {key: value for key, value in response.items()
                if key != "id"}

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, request: Request) -> dict:
        routing = self.ROUTING.get(request.op)
        if routing is None:
            raise ProtocolError(UNKNOWN_OP,
                                f"unknown op {request.op!r}")
        self.stats.ops[request.op] = \
            self.stats.ops.get(request.op, 0) + 1
        params = request.params
        if routing == "local":
            if request.op == "ping":
                return {"pong": True}
            return await self._op_shutdown(params)
        if routing == "schema":
            ref = require(params, "schema")
            digest, how = self._route_digest_explain(ref)
            link = self._link_for_digest(digest)
            plan_decision("router", how, schema=ref, shard=link.index,
                          digest=digest[:12])
            return await self._forward(link, request)
        if routing == "doc":
            link = self._link_for_doc(require(params, "doc"))
            return await self._forward(link, request)
        if routing == "register":
            return await self._op_schema_register(params)
        if routing == "evict":
            return await self._op_schema_evict(params)
        if request.op == "stats":
            return await self._op_stats(params)
        if request.op == "metrics":
            return await self._op_metrics(params)
        return await self._op_schema_list(params)

    async def _forward(self, link: ShardLink, request: Request) -> dict:
        """Forward a routed request to its owning shard.

        When the client asked for tracing (a ``trace`` id or
        ``timing: true``), the envelope fields are propagated so the
        shard joins the same trace and returns its span breakdown (the
        router's ``_serve_line`` then merges it under a ``router``
        span).  ``explain: true`` is propagated the same way, so the
        shard returns its own plan for the router's ``_serve_line`` to
        fold under the router plan.  Untraced, unexplained requests
        forward byte-identically to before.
        """
        obs_metrics.SHARD_ROUTED.labels(shard=str(link.index)).inc()
        params = request.params
        if request.timing or request.trace is not None or request.explain:
            trace = current_trace()
            params = dict(params)
            if trace is not None:
                params["trace"] = trace.trace_id
            if request.timing:
                params["timing"] = True
            if request.explain:
                params["explain"] = True
        with span("router"):
            response = await link.call(request.op, params)
        return self._payload(response)

    # -- ops -----------------------------------------------------------------

    async def _op_shutdown(self, params: dict) -> dict:
        """Stop the router; shards are shut down during teardown."""
        asyncio.get_running_loop().call_soon(self.stop)
        return {"stopping": True}

    async def _op_schema_register(self, params: dict) -> dict:
        """Digest the schema router-side, then register on its owner."""
        name = params.get("name")
        if name is not None and not isinstance(name, str):
            raise ProtocolError(BAD_PARAMS,
                                'parameter "name" must be str')
        if "builtin" in params:
            builtin = require(params, "builtin")
            digest = builtin_digest(builtin)  # raises UnknownSchemaError
        else:
            root = require(params, "root")
            dtd_text = require(params, "dtd")
            digest = self._text_digests.get((root, dtd_text))
            if digest is None:
                try:
                    digest = schema_digest(
                        DTD.from_dtd_text(root, dtd_text)
                    )
                except Exception as error:
                    raise ProtocolError(
                        BAD_PARAMS, f"unparsable DTD: {error}"
                    ) from error
                self._text_digests[(root, dtd_text)] = digest
                while len(self._text_digests) > self.MAX_ALIASES:
                    self._text_digests.popitem(last=False)
        link = self._link_for_digest(digest)
        response = await link.call("schema.register", params)
        if response.get("ok"):
            if "builtin" in params:
                self._remember_alias(params["builtin"], digest)
            if name:
                self._remember_alias(name, digest)
        return self._payload(response)

    async def _op_schema_evict(self, params: dict) -> dict:
        """Evict on the owning shard; unknown refs evict nothing."""
        ref = require(params, "schema")
        try:
            digest = self._route_digest(ref)
        except UnknownSchemaError:
            return {"evicted": False}
        link = self._link_for_digest(digest)
        response = await link.call("schema.evict", params)
        if response.get("ok") and response.get("evicted") and \
                self._aliases.get(ref) == digest:
            del self._aliases[ref]
        return self._payload(response)

    async def _fanout(self, op: str) -> list[dict]:
        """One call per shard, concurrently; raises on any failure."""
        responses = await asyncio.gather(
            *(link.call(op, {}) for link in self._links)
        )
        for link, response in zip(self._links, responses):
            if not response.get("ok"):
                raise ProtocolError(
                    INTERNAL,
                    f"shard {link.index} failed {op!r}: "
                    f"{response.get('error')}",
                )
        return [self._payload(response) for response in responses]

    async def _op_schema_list(self, params: dict) -> dict:
        """Union of every shard's registered schemas."""
        payloads = await self._fanout("schema.list")
        schemas = []
        for shard_payload in payloads:
            schemas.extend(shard_payload["schemas"])
        return {"schemas": schemas}

    @staticmethod
    def _aggregate_docstore(per_shard: list[dict]) -> dict:
        """Aggregate shard document-store counters.

        Per-process counters (hits/misses/saves) sum; table sizes come
        from one shared file, so any shard's snapshot is authoritative
        (take the max to tolerate skew).
        """
        enabled = [p["docstore"] for p in per_shard
                   if p["docstore"].get("enabled")]
        if not enabled:
            return {"enabled": False}
        return {
            "enabled": True,
            "path": enabled[0]["path"],
            "documents": max(p["documents"] for p in enabled),
            "nodes": max(p["nodes"] for p in enabled),
            "hits": sum(p["hits"] for p in enabled),
            "misses": sum(p["misses"] for p in enabled),
            "saves": sum(p["saves"] for p in enabled),
        }

    #: Batcher counters summed across shards in aggregated ``/stats``.
    _BATCHER_SUMMED = ("requests", "batches", "coalesced_requests",
                       "matrix_pairs", "sparse_batches",
                       "fallback_singles")
    #: Registry counters summed across shards.
    _REGISTRY_SUMMED = ("schemas", "registrations", "evictions",
                        "explicit_evictions")

    async def _op_stats(self, params: dict) -> dict:
        """Aggregated service counters plus the raw per-shard payloads.

        Top-level keys mirror the unsharded ``stats`` payload (so
        monitoring and the load generator work unchanged): batcher and
        registry counters are summed across shards, per-engine stats
        merge collision-free (affinity routing puts each digest on
        exactly one shard), and the store verdict count is the shared
        file's.  ``per_shard`` carries each worker's full payload,
        annotated with the router's per-shard routing counter.
        """
        payloads = await self._fanout("stats")
        per_shard = []
        for link, shard_payload in zip(self._links, payloads):
            shard_payload = dict(shard_payload)
            shard_payload.pop("ok", None)
            shard_payload["shard"] = link.index
            shard_payload["routed"] = link.routed
            per_shard.append(shard_payload)
        batcher = {
            "enabled": self.config.analysis_mode == "batched",
            "window_seconds": self.config.batch_window,
            "max_batch": self.config.max_batch,
            "max_batch_size": max(
                (p["batcher"]["max_batch_size"] for p in per_shard),
                default=0,
            ),
        }
        for key in self._BATCHER_SUMMED:
            batcher[key] = sum(p["batcher"][key] for p in per_shard)
        registry = {
            "max_schemas": self.config.max_schemas,
            "engines": {},
        }
        for key in self._REGISTRY_SUMMED:
            registry[key] = sum(p["registry"][key] for p in per_shard)
        for shard_payload in per_shard:
            registry["engines"].update(
                shard_payload["registry"]["engines"]
            )
        return {
            "uptime_seconds": time.perf_counter() - self.stats.started,
            "analysis_mode": self.config.analysis_mode,
            "shards": self.config.shards,
            "connections": self.stats.connections,
            "requests": self.stats.requests,
            "errors": self.stats.errors,
            "ops": dict(self.stats.ops),
            "documents": sum(p["documents"] for p in per_shard),
            "document_evictions": sum(
                p["document_evictions"] for p in per_shard
            ),
            "doc_queries": {
                key: sum(p["doc_queries"][key] for p in per_shard)
                for key in ("pushed_down", "fallback", "materialized")
            },
            # Doc ids are shard-prefixed, so the union is collision-free.
            "documents_detail": {
                doc: meta
                for p in per_shard
                for doc, meta in p["documents_detail"].items()
            },
            "docstore": self._aggregate_docstore(per_shard),
            "registry": registry,
            "batcher": batcher,
            "store": {
                "path": self.config.store_path,
                # One shared backend (file or server): every shard
                # reports the same count (take max to tolerate
                # snapshot skew).  Memory stores are private per
                # worker and disjoint under affinity routing, so the
                # true total is the sum.
                "verdicts": (
                    sum(p["store"]["verdicts"] for p in per_shard)
                    if self.storage_plan.verdicts.kind == "memory"
                    else max(
                        (p["store"]["verdicts"] for p in per_shard),
                        default=0,
                    )
                ),
            },
            "per_shard": per_shard,
        }

    async def _metrics_snapshot(self) -> dict:
        """Router view: every shard's snapshot merged with the router's.

        Merging sums children with identical label tuples (see
        :func:`repro.obs.metrics.merge_snapshots`); router-side series
        (``role="router"``, ``repro_shard_routed_total``) coexist with
        the summed shard series (``role="service"``).
        """
        payloads = await self._fanout("metrics")
        return merge_snapshots(
            [REGISTRY.snapshot()]
            + [p["snapshot"] for p in payloads]
        )

    async def _op_metrics(self, params: dict) -> dict:
        """Aggregated observability surface of the whole topology.

        ``snapshot`` is the merged router view, ``per_shard`` the raw
        per-worker snapshots it was merged from (index-aligned with the
        shard pool), and ``slow`` the union of every process's slow
        ring, ordered by timestamp.
        """
        payloads = await self._fanout("metrics")
        shard_snapshots = [p["snapshot"] for p in payloads]
        merged = merge_snapshots([REGISTRY.snapshot()] + shard_snapshots)
        slow = self.slow.entries()
        for payload in payloads:
            slow.extend(payload.get("slow", ()))
        slow.sort(key=lambda entry: entry.get("ts", ""))
        return {
            "text": render(merged),
            "snapshot": merged,
            "per_shard": shard_snapshots,
            "slow": slow[-128:],
        }


def make_service(
    config: ServeConfig,
) -> IndependenceService | ShardedService:
    """The service topology ``config`` asks for (``shards`` decides)."""
    if config.shards > 1:
        return ShardedService(config)
    return IndependenceService(config)


async def run_service(config: ServeConfig, ready=None) -> None:
    """Start a service and block until a ``shutdown`` op (CLI body)."""
    service = make_service(config)
    host, port = await service.start()
    if ready is not None:
        ready(service, host, port)
    await service.serve_until_stopped()
