"""Deprecated alias of the SQLite verdict store.

The persistent verdict map now lives in :mod:`repro.storage` --
:class:`repro.storage.sqlite.SqliteVerdictKV` is the implementation,
and :func:`repro.storage.open_store` is the URL-based way to open one.
:class:`VerdictStore` is kept for one release as a byte-compatible
adapter (same constructor, same tables, same pragmas via the shared
:func:`repro.storage.sqlite.connect` factory) so existing imports keep
working; new code should open backends through store URLs.
"""

from __future__ import annotations

from ..storage.sqlite import SqliteVerdictKV


class VerdictStore(SqliteVerdictKV):
    """SQLite-backed map from pair keys to slim verdicts.

    Deprecated alias of :class:`repro.storage.sqlite.SqliteVerdictKV`
    (see the module docstring); ``":memory:"`` gives an ephemeral
    store with identical semantics (tests, `--store none`).
    """
