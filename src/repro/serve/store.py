"""Persistent verdict store: SQLite behind the engine's pair memo.

A verdict row is keyed by ``(schema_digest, k, query_digest,
update_digest)`` -- exactly the key :meth:`AnalysisEngine.analyze_pair`
uses when consulting an attached store -- and carries the slim
:class:`~repro.analysis.engine.PairVerdict` fields.  Because digests are
content hashes of the canonical schema spec and the normalized
expression sources, rows survive restarts, schema re-registration, and
even store sharing between services: a cold engine attached to a warm
store serves already-seen pairs without ever building its inference
tables (the warm-start property the serve subsystem's tests pin).

Write durability is transactional per :meth:`put` by default; the
micro-batcher wraps a whole coalesced flush in :meth:`deferred` so a
batch of verdicts costs one commit (group commit), which is a large
part of the batched service's throughput win.
"""

from __future__ import annotations

import sqlite3
import threading
from contextlib import contextmanager

from ..analysis.engine import PairVerdict

_SCHEMA = """
CREATE TABLE IF NOT EXISTS verdicts (
    schema_digest TEXT NOT NULL,
    k             INTEGER NOT NULL,
    query_digest  TEXT NOT NULL,
    update_digest TEXT NOT NULL,
    independent   INTEGER NOT NULL,
    k_query       INTEGER NOT NULL,
    k_update      INTEGER NOT NULL,
    PRIMARY KEY (schema_digest, k, query_digest, update_digest)
) WITHOUT ROWID;
"""


class VerdictStore:
    """SQLite-backed map from pair keys to slim verdicts.

    Thread-safe: the asyncio service touches it from the event loop
    (stats) and from the analysis worker thread (engine write-through),
    so every connection access holds one lock.  ``":memory:"`` gives an
    ephemeral store with identical semantics (tests, `--store none`).
    """

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._deferred_depth = 0
        self._closed = False
        with self._lock:
            if path != ":memory:":
                # WAL keeps readers unblocked and makes group commit
                # cheap; it also supports writers in *separate
                # processes*, which is what lets every shard of a
                # sharded service share one store file.  A shard
                # holding a deferred() group-commit transaction briefly
                # blocks other shards' commits, so give the write lock
                # a generous wait instead of surfacing SQLITE_BUSY.
                self._connection.execute("PRAGMA journal_mode=WAL")
                self._connection.execute("PRAGMA busy_timeout=10000")
                self._connection.execute("PRAGMA synchronous=NORMAL")
            self._connection.execute(_SCHEMA)
            self._connection.commit()

    # -- engine-facing protocol ----------------------------------------------

    def get(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str) -> PairVerdict | None:
        """The stored verdict for one pair key, or ``None``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT independent, k_query, k_update FROM verdicts"
                " WHERE schema_digest=? AND k=? AND query_digest=?"
                " AND update_digest=?",
                (schema_digest, k, query_digest, update_digest),
            ).fetchone()
        if row is None:
            return None
        independent, k_query, k_update = row
        return PairVerdict(
            independent=bool(independent),
            k=k,
            k_query=k_query,
            k_update=k_update,
            analysis_seconds=0.0,
        )

    def put(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str, verdict: PairVerdict) -> None:
        """Write one verdict through (committed unless deferred)."""
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO verdicts VALUES (?,?,?,?,?,?,?)",
                (schema_digest, k, query_digest, update_digest,
                 int(verdict.independent), verdict.k_query,
                 verdict.k_update),
            )
            if self._deferred_depth == 0:
                self._connection.commit()

    # -- service-facing helpers ----------------------------------------------

    @contextmanager
    def deferred(self):
        """Group-commit scope: writes inside commit once at exit.

        Nests; only the outermost exit commits.  Entered by the
        micro-batcher around one coalesced ``analyze_matrix`` flush.
        """
        with self._lock:
            self._deferred_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._deferred_depth -= 1
                if self._deferred_depth == 0:
                    self._connection.commit()

    def count(self, schema_digest: str | None = None) -> int:
        """Stored verdicts, optionally restricted to one schema."""
        with self._lock:
            if schema_digest is None:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM verdicts"
                ).fetchone()
            else:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM verdicts WHERE schema_digest=?",
                    (schema_digest,),
                ).fetchone()
        return row[0]

    def stats(self) -> dict:
        """Path and size (the ``/stats`` store section)."""
        return {"path": self.path, "verdicts": self.count()}

    def close(self) -> None:
        """Commit and close the connection (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.commit()
            self._connection.close()

    def __enter__(self) -> VerdictStore:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
