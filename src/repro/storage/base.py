"""The storage interface every backend implements.

One :class:`StorageBackend` bundles the two durable surfaces the
serving layer needs:

* a **verdict KV** (:class:`VerdictKV`) -- the persistent pair-verdict
  map behind :meth:`repro.analysis.engine.AnalysisEngine.attach_store`:
  ``get``/``put``/``scan`` keyed by ``(schema_digest, k, query_digest,
  update_digest)``, with a :meth:`~VerdictKV.deferred` group-commit
  scope so a coalesced micro-batch flush costs one commit;
* a **document store** (:class:`DocumentStore`) -- the interval-encoded
  node table plus its document registry: ``save`` compacts a tree to
  canonical pre-order and persists it row-per-node, ``load``
  re-materializes it with one ordered range scan (no XML re-parse),
  and :meth:`~DocumentStore.ancestors` / :meth:`~DocumentStore.descendants`
  answer axis traversals *inside* the database so persisted documents
  can be navigated without full re-materialization.

Implementations: :mod:`repro.storage.memory` (per-process dicts),
:mod:`repro.storage.sqlite` (one WAL database shared by multi-process
shard writers), and :mod:`repro.storage.postgres` (one server shared by
many hosts; psycopg-gated).  The conformance suite in
``tests/storage/test_conformance.py`` runs the same assertions against
every backend.

The row codec is shared: every backend persists the same
``(loc, parent, level, size, tag, text)`` tuples produced by
:func:`node_rows` and rebuilds trees through :func:`materialize`, so a
document round-trips byte-identically through any backend.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..obs.metrics import STORE_OP_SECONDS

if TYPE_CHECKING:  # imported lazily at runtime: repro.docstore's
    # package init imports the legacy DocumentBackend adapter, which
    # imports this module back (a cycle a module-level import would
    # trip when repro.storage loads first).
    from ..docstore.encode import IndexedStore, IndexedTree

#: Node-table row shape shared by every backend:
#: ``(loc, parent, level, size, tag, text)`` in canonical pre-order.
NODE_COLUMNS = ("loc", "parent", "level", "size", "tag", "text")

#: Axes :class:`StepSpec` accepts.  ``descendant-child`` is the fused
#: ``//test`` shape (``descendant-or-self::node()/child::test``) whose
#: output order groups matches under their parent in parent-document
#: order -- exactly what the desugared loop (and
#: :func:`repro.docstore.axes.descendant_child_step`) produces.
STEP_AXES = ("self", "child", "descendant", "descendant-or-self",
             "descendant-child")

#: Node tests :class:`StepSpec` accepts: a tag name test, ``text()``,
#: ``node()`` (anything), or ``*`` (any element).
STEP_TESTS = ("name", "text", "node", "wildcard")


def timed_store_op(op: str):
    """Decorator timing a document-store method into the metrics registry.

    Backends wrap their ``save``/``load``/``run_steps`` implementations
    with this so every storage engine reports latency into the same
    ``repro_store_op_seconds{op=...}`` histogram
    (:mod:`repro.obs.metrics`) without per-backend plumbing.
    """
    child = STORE_OP_SECONDS.labels(op=op)

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                child.observe(time.perf_counter() - started)
        return wrapper

    return decorate


@dataclass(frozen=True)
class StepSpec:
    """One compiled axis step of a :meth:`DocumentStore.run_steps` call.

    A step chain starts at the document root and applies each step to
    every context node with the evaluator's nested-loop sequence
    semantics (per-context matches in document order, concatenated in
    context order -- duplicates preserved), so backend answers are
    byte-identical to the in-memory evaluators.  ``position`` (1-based)
    keeps only each context node's ``position``-th match -- a
    backend-level positional predicate the SQL backends answer with a
    window function.
    """

    axis: str
    test: str
    name: str | None = None
    position: int | None = None


def check_steps(steps) -> None:
    """Validate a :class:`StepSpec` chain (raises :class:`ValueError`).

    Backends call this before touching the database so a malformed
    chain fails identically everywhere.
    """
    if not steps:
        raise ValueError("run_steps needs at least one step")
    for step in steps:
        if step.axis not in STEP_AXES:
            raise ValueError(
                f"unknown step axis {step.axis!r} "
                f"(expected one of: {', '.join(STEP_AXES)})"
            )
        if step.test not in STEP_TESTS:
            raise ValueError(
                f"unknown step test {step.test!r} "
                f"(expected one of: {', '.join(STEP_TESTS)})"
            )
        if step.test == "name" and not step.name:
            raise ValueError("name test needs a tag name")
        if step.test != "name" and step.name is not None:
            raise ValueError(
                f"{step.test!r} test takes no tag name"
            )
        if step.position is not None and step.position < 1:
            raise ValueError("positional predicates are 1-based")


def _test_condition(step: StepSpec, placeholder: str,
                    params: list) -> str | None:
    """The SQL predicate of one step's node test (``n`` = match row)."""
    if step.test == "name":
        params.append(step.name)
        return f"n.tag = {placeholder}"
    if step.test == "text":
        return "n.tag IS NULL"
    if step.test == "wildcard":
        return "n.tag IS NOT NULL"
    return None  # node(): everything matches


#: Join predicates per axis (``c`` = context row, ``n`` = match row).
_AXIS_CONDITIONS = {
    "self": ("n.loc = c.loc",),
    "child": ("n.parent = c.loc",),
    "descendant": ("n.loc > c.loc", "n.loc < c.loc + c.size"),
    "descendant-or-self": ("n.loc >= c.loc", "n.loc < c.loc + c.size"),
    # The fused //test shape: the match's parent is any
    # descendant-or-self of the context, i.e. in [c.loc, c.loc+c.size).
    "descendant-child": ("n.parent >= c.loc",
                         "n.parent < c.loc + c.size"),
}


def compile_steps_sql(doc: str, steps, *, placeholder: str = "?",
                      dedup: bool = False) -> tuple[str, list]:
    """Compile a step chain into one parameterized SQL query.

    Returns ``(sql, params)`` selecting the answer locations over the
    persisted node table.  The interval encoding does the work: a
    descendant step is the range predicate ``c.loc < n.loc <
    c.loc + c.size`` (loc *is* the pre rank in a canonical table), a
    child step is a parent-join, and the fused ``descendant-child``
    step constrains the match's parent to the context's interval.

    Each step becomes one self-join layer that threads the sort keys
    of every enclosing loop through, so the final ``ORDER BY`` over
    the accumulated keys reproduces the evaluator's nested-loop order
    exactly (keys identify the full derivation path, making the order
    total).  A ``position`` filter wraps its layer in ``ROW_NUMBER()
    OVER (PARTITION BY <derivation keys> ORDER BY <step keys>)`` so
    the predicate applies per context *occurrence*, like the
    evaluator.  With ``dedup`` the answer collapses to distinct
    locations in document order instead.

    Shared by the SQLite and PostgreSQL backends (they differ only in
    ``placeholder``); both were generated from the same chain, so the
    conformance suite can diff their answers row for row.
    """
    check_steps(steps)
    params: list = [doc]
    sql = f"SELECT loc, size FROM nodes WHERE doc = {placeholder} " \
          "AND loc = 0"
    keys: list[str] = []
    for index, step in enumerate(steps, 1):
        conditions = [f"n.doc = {placeholder}"]
        params.append(doc)
        conditions.extend(_AXIS_CONDITIONS[step.axis])
        test = _test_condition(step, placeholder, params)
        if test is not None:
            conditions.append(test)
        step_keys = [f"k{index}p", f"k{index}"] \
            if step.axis == "descendant-child" else [f"k{index}"]
        selected = [f"c.{key} AS {key}" for key in keys]
        if step.axis == "descendant-child":
            selected.append(f"n.parent AS k{index}p")
        selected.extend([f"n.loc AS k{index}", "n.loc AS loc",
                         "n.size AS size"])
        sql = (
            f"SELECT {', '.join(selected)} FROM ({sql}) c "
            f"JOIN nodes n ON {' AND '.join(conditions)}"
        )
        if step.position is not None:
            # Partition by the enclosing loops' keys so the predicate
            # applies per context occurrence; the first step has one
            # context (the root), i.e. a single partition.
            over = "ORDER BY " + ", ".join(step_keys)
            if keys:
                over = "PARTITION BY " + ", ".join(keys) + " " + over
            sql = (
                "SELECT " + ", ".join(keys + step_keys
                                      + ["loc", "size"])
                + " FROM (SELECT p.*, ROW_NUMBER() OVER "
                + f"({over}) AS rn FROM ({sql}) p) q "
                + f"WHERE q.rn = {placeholder}"
            )
            params.append(step.position)
        keys.extend(step_keys)
    if dedup:
        return (
            f"SELECT DISTINCT loc FROM ({sql}) a ORDER BY loc",
            params,
        )
    return (
        f"SELECT loc FROM ({sql}) a ORDER BY {', '.join(keys)}",
        params,
    )


@dataclass(frozen=True)
class StoredDocument:
    """Catalog row of one persisted document."""

    doc: str
    schema_digest: str
    nodes: int
    nodes_seen: int
    subtrees_skipped: int
    meta: dict


def compact_store(tree: IndexedTree) -> IndexedStore:
    """A copy of ``tree`` in canonical pre-order (loc == pre rank,
    root at location 0 -- the invariant :func:`materialize` rebuilds
    from).

    Freshly loaded/built trees are already canonical and are returned
    as-is; mutated trees (overflow nodes, garbage) are rebuilt so the
    persisted table stays dense.
    """
    from ..docstore.encode import IndexedStore

    store = tree.store
    store.reencode()
    n = len(store._tags)
    if store.encoded_count == n and tree.root == 0 \
            and store._order == list(range(n)):
        return store
    compacted = IndexedStore()
    mapping: dict[int, int] = {}
    for new_loc, loc in enumerate(store.descendants_or_self(tree.root)):
        mapping[loc] = new_loc
        tag = store._tags[loc]
        compacted._alloc(tag, store._texts[loc],
                         [] if tag is not None else None)
        compacted._pre[new_loc] = new_loc
        compacted._order.append(new_loc)
        parent = store._parent[loc]
        if parent is not None and parent in mapping:
            mapped = mapping[parent]
            compacted._parent[new_loc] = mapped
            compacted._kids[mapped].append(new_loc)
            compacted._level[new_loc] = compacted._level[mapped] + 1
    for loc in range(len(compacted._tags) - 1, -1, -1):
        kids = compacted._kids[loc]
        compacted._size[loc] = 1 + (
            sum(compacted._size[k] for k in kids) if kids else 0
        )
    return compacted


def node_rows(tree: IndexedTree) -> list[tuple]:
    """``tree`` compacted to the canonical row tuples every backend
    persists (see :data:`NODE_COLUMNS`)."""
    store = compact_store(tree)
    return [
        (loc, store._parent[loc], store._level[loc], store._size[loc],
         store._tags[loc], store._texts[loc])
        for loc in range(len(store._tags))
    ]


def materialize(rows, doc: str) -> IndexedTree:
    """Rebuild a tree from its node rows (one ordered scan).

    Child lists fill in document order because the rows *are*
    pre-order; raises :class:`ValueError` on a non-dense table (which
    can only mean corruption, whatever the backend).
    """
    from ..docstore.encode import IndexedStore, IndexedTree

    store = IndexedStore()
    tags, texts, kids = store._tags, store._texts, store._kids
    parents, levels, sizes = store._parent, store._level, store._size
    for loc, parent, level, size, tag, text in rows:
        if loc != len(tags):
            raise ValueError(
                f"corrupt node table for {doc!r}: row {loc} is not "
                f"dense pre-order (expected {len(tags)})"
            )
        tags.append(tag)
        texts.append(text)
        kids.append([] if tag is not None else None)
        parents.append(parent)
        levels.append(level)
        sizes.append(size)
        store._pre.append(loc)
        store._order.append(loc)
        if parent is not None:
            kids[parent].append(loc)
    return IndexedTree(store, 0)


class VerdictKV:
    """Interface of the persistent pair-verdict map.

    Keys are ``(schema_digest, k, query_digest, update_digest)`` --
    exactly what :meth:`AnalysisEngine.analyze_pair` consults -- and
    values are slim :class:`~repro.analysis.engine.PairVerdict` rows.
    Because digests are content hashes, rows survive restarts, schema
    re-registration, and store sharing between services and hosts.
    """

    def get(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str):
        """The stored verdict for one pair key, or ``None``."""
        raise NotImplementedError

    def put(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str, verdict) -> None:
        """Write one verdict through (committed unless deferred)."""
        raise NotImplementedError

    def scan(self, schema_digest: str | None = None):
        """Iterate ``(schema_digest, k, query_digest, update_digest,
        verdict)`` rows, optionally restricted to one schema."""
        raise NotImplementedError

    def deferred(self):
        """Group-commit scope: writes inside commit once at exit.

        Nests; only the outermost exit commits.  Entered by the
        micro-batcher around one coalesced ``analyze_matrix`` flush.
        """
        raise NotImplementedError

    def count(self, schema_digest: str | None = None) -> int:
        """Stored verdicts, optionally restricted to one schema."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Path/target and size (the ``/stats`` store section)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


class DocumentStore:
    """Interface of the persisted node-table + document registry.

    Subclasses implement ``save``/``load``/``describe``/``delete``/
    ``list_documents`` plus the in-database traversals; this base owns
    the per-process counters every implementation reports.
    """

    def __init__(self):
        #: Documents served from the table without a re-parse.
        self.hits = 0
        #: Lookups that found no persisted document.
        self.misses = 0
        #: Documents written (or overwritten).
        self.saves = 0

    def save(self, doc: str, tree: IndexedTree, schema_digest: str,
             nodes_seen: int = 0, subtrees_skipped: int = 0,
             meta: dict | None = None) -> int:
        """Persist ``tree`` under ``doc`` (replacing any prior version,
        compacted to canonical pre-order); returns rows written."""
        raise NotImplementedError

    def load(self, doc: str):
        """``(IndexedTree, StoredDocument)`` re-materialized from the
        node table with one ordered range scan, or ``None``."""
        raise NotImplementedError

    def describe(self, doc: str) -> StoredDocument | None:
        """The catalog row of ``doc``, or None."""
        raise NotImplementedError

    def delete(self, doc: str) -> bool:
        """Drop a persisted document; returns whether it existed."""
        raise NotImplementedError

    def list_documents(self) -> list[StoredDocument]:
        """Catalog rows of every persisted document."""
        raise NotImplementedError

    def ancestors(self, doc: str, loc: int) -> list[int]:
        """Locations of ``loc``'s ancestors, root first, computed
        inside the database (recursive CTE over the parent column in
        the SQL backends) -- no tree materialization."""
        raise NotImplementedError

    def descendants(self, doc: str, loc: int,
                    tag: str | None = None) -> list[int]:
        """Locations of ``loc``'s proper descendants in document
        order, computed inside the database as one interval range scan
        (``loc < x < loc + size``), optionally filtered by ``tag``."""
        raise NotImplementedError

    def run_steps(self, doc: str, steps, *,
                  dedup: bool = False) -> list[int]:
        """Answer a compiled :class:`StepSpec` chain for ``doc``
        without materializing the tree.

        Starts at the document root and returns answer locations with
        the in-memory evaluator's nested-loop sequence semantics (see
        :class:`StepSpec`); with ``dedup`` the answer collapses to
        distinct locations in document order.  The SQL backends answer
        with one :func:`compile_steps_sql` query -- range predicates on
        ``(pre, pre + size)``, a parent-join for child steps, window
        functions for positional predicates; the memory backend
        answers through the in-memory axis accelerators, keeping the
        conformance suite three-way.  Raises :class:`KeyError` when
        ``doc`` is not persisted.
        """
        raise NotImplementedError

    def explain_steps(self, doc: str, steps, *,
                      dedup: bool = False) -> dict:
        """How this backend would answer :meth:`run_steps` for ``doc``.

        Returns a JSON-ready record -- at least ``{"engine", "sql",
        "params"}`` -- without touching the database: the SQL backends
        report the exact parameterized query
        :func:`compile_steps_sql` would run (their plan is the SQL);
        tree-walking backends report ``engine="tree"`` with no SQL.
        This is what the ``pushdown: compiled`` plan decision and the
        ``repro explain`` CLI surface.
        """
        check_steps(steps)
        return {"engine": "tree", "sql": None, "params": []}

    def subtree_rows(self, doc: str, loc: int) -> list[tuple]:
        """The contiguous pre-order row slice of the subtree at
        ``loc`` (see :data:`NODE_COLUMNS`) -- one interval range scan,
        so :meth:`run_steps` answers serialize without materializing
        the document.  Raises :class:`KeyError` when ``doc`` is not
        persisted."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Backend counters plus table sizes."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the backing resources (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


class StorageBackend:
    """One durable backend bundling verdicts and documents.

    Opened from a store URL by :func:`repro.storage.open_store`; the
    two facets share the backend's connection and lock, so ``close``
    releases everything once.
    """

    #: Scheme name ("memory", "sqlite", "postgresql").
    kind: str = ""
    #: Whether two processes opening the same URL see shared state
    #: (files and servers are shared; memory is per-process).
    shared: bool = False

    def __init__(self):
        self.verdicts: VerdictKV
        self.documents: DocumentStore

    @property
    def url(self) -> str:
        """The canonical store URL this backend was opened from."""
        raise NotImplementedError

    def close(self) -> None:
        """Close both facets and the shared connection (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()
