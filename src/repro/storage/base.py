"""The storage interface every backend implements.

One :class:`StorageBackend` bundles the two durable surfaces the
serving layer needs:

* a **verdict KV** (:class:`VerdictKV`) -- the persistent pair-verdict
  map behind :meth:`repro.analysis.engine.AnalysisEngine.attach_store`:
  ``get``/``put``/``scan`` keyed by ``(schema_digest, k, query_digest,
  update_digest)``, with a :meth:`~VerdictKV.deferred` group-commit
  scope so a coalesced micro-batch flush costs one commit;
* a **document store** (:class:`DocumentStore`) -- the interval-encoded
  node table plus its document registry: ``save`` compacts a tree to
  canonical pre-order and persists it row-per-node, ``load``
  re-materializes it with one ordered range scan (no XML re-parse),
  and :meth:`~DocumentStore.ancestors` / :meth:`~DocumentStore.descendants`
  answer axis traversals *inside* the database so persisted documents
  can be navigated without full re-materialization.

Implementations: :mod:`repro.storage.memory` (per-process dicts),
:mod:`repro.storage.sqlite` (one WAL database shared by multi-process
shard writers), and :mod:`repro.storage.postgres` (one server shared by
many hosts; psycopg-gated).  The conformance suite in
``tests/storage/test_conformance.py`` runs the same assertions against
every backend.

The row codec is shared: every backend persists the same
``(loc, parent, level, size, tag, text)`` tuples produced by
:func:`node_rows` and rebuilds trees through :func:`materialize`, so a
document round-trips byte-identically through any backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily at runtime: repro.docstore's
    # package init imports the legacy DocumentBackend adapter, which
    # imports this module back (a cycle a module-level import would
    # trip when repro.storage loads first).
    from ..docstore.encode import IndexedStore, IndexedTree

#: Node-table row shape shared by every backend:
#: ``(loc, parent, level, size, tag, text)`` in canonical pre-order.
NODE_COLUMNS = ("loc", "parent", "level", "size", "tag", "text")


@dataclass(frozen=True)
class StoredDocument:
    """Catalog row of one persisted document."""

    doc: str
    schema_digest: str
    nodes: int
    nodes_seen: int
    subtrees_skipped: int
    meta: dict


def compact_store(tree: IndexedTree) -> IndexedStore:
    """A copy of ``tree`` in canonical pre-order (loc == pre rank,
    root at location 0 -- the invariant :func:`materialize` rebuilds
    from).

    Freshly loaded/built trees are already canonical and are returned
    as-is; mutated trees (overflow nodes, garbage) are rebuilt so the
    persisted table stays dense.
    """
    from ..docstore.encode import IndexedStore

    store = tree.store
    store.reencode()
    n = len(store._tags)
    if store.encoded_count == n and tree.root == 0 \
            and store._order == list(range(n)):
        return store
    compacted = IndexedStore()
    mapping: dict[int, int] = {}
    for new_loc, loc in enumerate(store.descendants_or_self(tree.root)):
        mapping[loc] = new_loc
        tag = store._tags[loc]
        compacted._alloc(tag, store._texts[loc],
                         [] if tag is not None else None)
        compacted._pre[new_loc] = new_loc
        compacted._order.append(new_loc)
        parent = store._parent[loc]
        if parent is not None and parent in mapping:
            mapped = mapping[parent]
            compacted._parent[new_loc] = mapped
            compacted._kids[mapped].append(new_loc)
            compacted._level[new_loc] = compacted._level[mapped] + 1
    for loc in range(len(compacted._tags) - 1, -1, -1):
        kids = compacted._kids[loc]
        compacted._size[loc] = 1 + (
            sum(compacted._size[k] for k in kids) if kids else 0
        )
    return compacted


def node_rows(tree: IndexedTree) -> list[tuple]:
    """``tree`` compacted to the canonical row tuples every backend
    persists (see :data:`NODE_COLUMNS`)."""
    store = compact_store(tree)
    return [
        (loc, store._parent[loc], store._level[loc], store._size[loc],
         store._tags[loc], store._texts[loc])
        for loc in range(len(store._tags))
    ]


def materialize(rows, doc: str) -> IndexedTree:
    """Rebuild a tree from its node rows (one ordered scan).

    Child lists fill in document order because the rows *are*
    pre-order; raises :class:`ValueError` on a non-dense table (which
    can only mean corruption, whatever the backend).
    """
    from ..docstore.encode import IndexedStore, IndexedTree

    store = IndexedStore()
    tags, texts, kids = store._tags, store._texts, store._kids
    parents, levels, sizes = store._parent, store._level, store._size
    for loc, parent, level, size, tag, text in rows:
        if loc != len(tags):
            raise ValueError(
                f"corrupt node table for {doc!r}: row {loc} is not "
                f"dense pre-order (expected {len(tags)})"
            )
        tags.append(tag)
        texts.append(text)
        kids.append([] if tag is not None else None)
        parents.append(parent)
        levels.append(level)
        sizes.append(size)
        store._pre.append(loc)
        store._order.append(loc)
        if parent is not None:
            kids[parent].append(loc)
    return IndexedTree(store, 0)


class VerdictKV:
    """Interface of the persistent pair-verdict map.

    Keys are ``(schema_digest, k, query_digest, update_digest)`` --
    exactly what :meth:`AnalysisEngine.analyze_pair` consults -- and
    values are slim :class:`~repro.analysis.engine.PairVerdict` rows.
    Because digests are content hashes, rows survive restarts, schema
    re-registration, and store sharing between services and hosts.
    """

    def get(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str):
        """The stored verdict for one pair key, or ``None``."""
        raise NotImplementedError

    def put(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str, verdict) -> None:
        """Write one verdict through (committed unless deferred)."""
        raise NotImplementedError

    def scan(self, schema_digest: str | None = None):
        """Iterate ``(schema_digest, k, query_digest, update_digest,
        verdict)`` rows, optionally restricted to one schema."""
        raise NotImplementedError

    def deferred(self):
        """Group-commit scope: writes inside commit once at exit.

        Nests; only the outermost exit commits.  Entered by the
        micro-batcher around one coalesced ``analyze_matrix`` flush.
        """
        raise NotImplementedError

    def count(self, schema_digest: str | None = None) -> int:
        """Stored verdicts, optionally restricted to one schema."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Path/target and size (the ``/stats`` store section)."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


class DocumentStore:
    """Interface of the persisted node-table + document registry.

    Subclasses implement ``save``/``load``/``describe``/``delete``/
    ``list_documents`` plus the in-database traversals; this base owns
    the per-process counters every implementation reports.
    """

    def __init__(self):
        #: Documents served from the table without a re-parse.
        self.hits = 0
        #: Lookups that found no persisted document.
        self.misses = 0
        #: Documents written (or overwritten).
        self.saves = 0

    def save(self, doc: str, tree: IndexedTree, schema_digest: str,
             nodes_seen: int = 0, subtrees_skipped: int = 0,
             meta: dict | None = None) -> int:
        """Persist ``tree`` under ``doc`` (replacing any prior version,
        compacted to canonical pre-order); returns rows written."""
        raise NotImplementedError

    def load(self, doc: str):
        """``(IndexedTree, StoredDocument)`` re-materialized from the
        node table with one ordered range scan, or ``None``."""
        raise NotImplementedError

    def describe(self, doc: str) -> StoredDocument | None:
        """The catalog row of ``doc``, or None."""
        raise NotImplementedError

    def delete(self, doc: str) -> bool:
        """Drop a persisted document; returns whether it existed."""
        raise NotImplementedError

    def list_documents(self) -> list[StoredDocument]:
        """Catalog rows of every persisted document."""
        raise NotImplementedError

    def ancestors(self, doc: str, loc: int) -> list[int]:
        """Locations of ``loc``'s ancestors, root first, computed
        inside the database (recursive CTE over the parent column in
        the SQL backends) -- no tree materialization."""
        raise NotImplementedError

    def descendants(self, doc: str, loc: int,
                    tag: str | None = None) -> list[int]:
        """Locations of ``loc``'s proper descendants in document
        order, computed inside the database as one interval range scan
        (``loc < x < loc + size``), optionally filtered by ``tag``."""
        raise NotImplementedError

    def stats(self) -> dict:
        """Backend counters plus table sizes."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the backing resources (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


class StorageBackend:
    """One durable backend bundling verdicts and documents.

    Opened from a store URL by :func:`repro.storage.open_store`; the
    two facets share the backend's connection and lock, so ``close``
    releases everything once.
    """

    #: Scheme name ("memory", "sqlite", "postgresql").
    kind: str = ""
    #: Whether two processes opening the same URL see shared state
    #: (files and servers are shared; memory is per-process).
    shared: bool = False

    def __init__(self):
        self.verdicts: VerdictKV
        self.documents: DocumentStore

    @property
    def url(self) -> str:
        """The canonical store URL this backend was opened from."""
        raise NotImplementedError

    def close(self) -> None:
        """Close both facets and the shared connection (idempotent)."""
        raise NotImplementedError

    def __enter__(self):
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()
