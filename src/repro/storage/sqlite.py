"""SQLite storage backend: one WAL database for verdicts + documents.

This module owns every pragma the repo applies to a SQLite store --
previously duplicated (with drift) between ``serve/store.py`` and
``docstore/backend.py`` -- in one :func:`connect` factory.  WAL keeps
readers unblocked and makes group commit cheap; it also supports
writers in *separate processes*, which is what lets every shard of a
sharded service share one store file.  A shard holding a
:meth:`~SqliteVerdictKV.deferred` group-commit transaction briefly
blocks other shards' commits, so the write lock gets a generous
``busy_timeout`` instead of surfacing ``SQLITE_BUSY``; ``mmap_size``
lets node-table range scans come straight from page-cache mappings.

Both facets can share one connection (and one lock) when opened as a
unified :class:`SqliteBackend`, so ``sqlite:///x.db`` holds verdicts
*and* documents in a single file.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from contextlib import contextmanager

from ..analysis.engine import PairVerdict
from .base import (
    DocumentStore,
    StorageBackend,
    StoredDocument,
    VerdictKV,
    compile_steps_sql,
    materialize,
    node_rows,
    timed_store_op,
)

#: Pragmas applied to every file-backed connection (``":memory:"``
#: databases skip them: WAL and mmap are meaningless without a file).
#: Pinned by ``tests/storage/test_conformance.py`` so the two legacy
#: stores can never drift apart again.
PRAGMAS = (
    ("journal_mode", "wal"),
    ("busy_timeout", 10000),
    ("synchronous", 1),  # NORMAL
    ("mmap_size", 268435456),
)

_VERDICT_SCHEMA = """
CREATE TABLE IF NOT EXISTS verdicts (
    schema_digest TEXT NOT NULL,
    k             INTEGER NOT NULL,
    query_digest  TEXT NOT NULL,
    update_digest TEXT NOT NULL,
    independent   INTEGER NOT NULL,
    k_query       INTEGER NOT NULL,
    k_update      INTEGER NOT NULL,
    PRIMARY KEY (schema_digest, k, query_digest, update_digest)
) WITHOUT ROWID;
"""

_DOCUMENT_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    doc            TEXT PRIMARY KEY,
    schema_digest  TEXT NOT NULL,
    nodes          INTEGER NOT NULL,
    nodes_seen     INTEGER NOT NULL,
    subtrees_skipped INTEGER NOT NULL,
    meta           TEXT NOT NULL DEFAULT '{}',
    created        REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    doc    TEXT NOT NULL,
    loc    INTEGER NOT NULL,
    parent INTEGER,
    level  INTEGER NOT NULL,
    size   INTEGER NOT NULL,
    tag    TEXT,
    text   TEXT,
    PRIMARY KEY (doc, loc)
) WITHOUT ROWID;
"""

_ANCESTORS_SQL = """
WITH RECURSIVE up(loc) AS (
    SELECT parent FROM nodes WHERE doc = ? AND loc = ?
    UNION ALL
    SELECT n.parent FROM nodes n JOIN up ON n.loc = up.loc
        WHERE n.doc = ? AND up.loc IS NOT NULL
)
SELECT loc FROM up WHERE loc IS NOT NULL ORDER BY loc
"""

_DESCENDANTS_SQL = """
SELECT n.loc FROM nodes n JOIN nodes s
    ON n.doc = s.doc AND n.loc > s.loc AND n.loc < s.loc + s.size
WHERE s.doc = ? AND s.loc = ?{tag_filter} ORDER BY n.loc
"""


def connect(path: str) -> sqlite3.Connection:
    """The one SQLite connection factory every store goes through.

    ``check_same_thread=False`` because the asyncio service touches
    stores from the event loop (stats) and from the analysis worker
    thread (engine write-through); callers serialize access with a
    lock.  File-backed databases get :data:`PRAGMAS` applied.
    """
    connection = sqlite3.connect(path, check_same_thread=False)
    if path != ":memory:":
        for pragma, value in PRAGMAS:
            connection.execute(f"PRAGMA {pragma}={value}")
    return connection


class SqliteVerdictKV(VerdictKV):
    """SQLite-backed map from pair keys to slim verdicts.

    Thread-safe: every connection access holds one lock.  ``":memory:"``
    gives an ephemeral store with identical semantics.  Pass
    ``connection``/``lock`` to share a database (and its transaction
    scope) with a sibling :class:`SqliteDocumentStore`.
    """

    def __init__(self, path: str = ":memory:", *,
                 connection: sqlite3.Connection | None = None,
                 lock: threading.Lock | None = None):
        self.path = path
        self._owns_connection = connection is None
        self._lock = lock if lock is not None else threading.Lock()
        self._connection = connection if connection is not None \
            else connect(path)
        self._deferred_depth = 0
        self._closed = False
        with self._lock:
            self._connection.execute(_VERDICT_SCHEMA)
            self._connection.commit()

    def get(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str) -> PairVerdict | None:
        """The stored verdict for one pair key, or ``None``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT independent, k_query, k_update FROM verdicts"
                " WHERE schema_digest=? AND k=? AND query_digest=?"
                " AND update_digest=?",
                (schema_digest, k, query_digest, update_digest),
            ).fetchone()
        if row is None:
            return None
        independent, k_query, k_update = row
        return PairVerdict(
            independent=bool(independent),
            k=k,
            k_query=k_query,
            k_update=k_update,
            analysis_seconds=0.0,
        )

    def put(self, schema_digest: str, k: int, query_digest: str,
            update_digest: str, verdict: PairVerdict) -> None:
        """Write one verdict through (committed unless deferred)."""
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO verdicts VALUES (?,?,?,?,?,?,?)",
                (schema_digest, k, query_digest, update_digest,
                 int(verdict.independent), verdict.k_query,
                 verdict.k_update),
            )
            if self._deferred_depth == 0:
                self._connection.commit()

    def scan(self, schema_digest: str | None = None):
        """Iterate stored ``(schema_digest, k, query_digest,
        update_digest, verdict)`` rows in key order."""
        sql = ("SELECT schema_digest, k, query_digest, update_digest,"
               " independent, k_query, k_update FROM verdicts")
        params: tuple = ()
        if schema_digest is not None:
            sql += " WHERE schema_digest=?"
            params = (schema_digest,)
        with self._lock:
            rows = self._connection.execute(
                sql + " ORDER BY schema_digest, k, query_digest,"
                " update_digest", params
            ).fetchall()
        for digest, k, q, u, independent, k_query, k_update in rows:
            yield digest, k, q, u, PairVerdict(
                independent=bool(independent), k=k, k_query=k_query,
                k_update=k_update, analysis_seconds=0.0,
            )

    @contextmanager
    def deferred(self):
        """Group-commit scope: writes inside commit once at exit.

        Nests; only the outermost exit commits.  Entered by the
        micro-batcher around one coalesced ``analyze_matrix`` flush.
        """
        with self._lock:
            self._deferred_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._deferred_depth -= 1
                if self._deferred_depth == 0:
                    self._connection.commit()

    def count(self, schema_digest: str | None = None) -> int:
        """Stored verdicts, optionally restricted to one schema."""
        with self._lock:
            if schema_digest is None:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM verdicts"
                ).fetchone()
            else:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM verdicts WHERE schema_digest=?",
                    (schema_digest,),
                ).fetchone()
        return row[0]

    def stats(self) -> dict:
        """Path and size (the ``/stats`` store section)."""
        return {"path": self.path, "verdicts": self.count()}

    def close(self) -> None:
        """Commit and close the connection (idempotent).

        When the connection is shared with a backend, the backend owns
        the close; this just commits pending writes.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.commit()
            if self._owns_connection:
                self._connection.close()


class SqliteDocumentStore(DocumentStore):
    """The node-table database behind a service's loaded documents.

    Thread-safe the same way :class:`SqliteVerdictKV` is: one
    connection guarded by a lock.  Pass ``connection``/``lock`` to
    share a database with a sibling verdict store.
    """

    def __init__(self, path: str, *,
                 connection: sqlite3.Connection | None = None,
                 lock: threading.Lock | None = None):
        super().__init__()
        self.path = path
        self._owns_connection = connection is None
        self._lock = lock if lock is not None else threading.Lock()
        self._conn = connection if connection is not None \
            else connect(path)
        self._closed = False
        with self._lock:
            self._conn.executescript(_DOCUMENT_SCHEMA)
            self._conn.commit()

    @timed_store_op("save")
    def save(self, doc, tree, schema_digest, nodes_seen=0,
             subtrees_skipped=0, meta=None) -> int:
        """Persist ``tree`` under ``doc`` (replacing any prior version).

        The tree is first compacted to canonical pre-order (location id
        == pre rank over the reachable nodes, root at location 0), so
        the row order *is* the document order and loading is a single
        range scan.  Returns the number of node rows written.
        """
        rows = [(doc,) + row for row in node_rows(tree)]
        with self._lock:
            with self._conn:  # one transaction: doc row + node rows
                self._conn.execute("DELETE FROM nodes WHERE doc = ?",
                                   (doc,))
                self._conn.execute(
                    "INSERT OR REPLACE INTO documents VALUES "
                    "(?, ?, ?, ?, ?, ?, strftime('%s', 'now'))",
                    (doc, schema_digest, len(rows),
                     nodes_seen or len(rows), subtrees_skipped,
                     json.dumps(meta or {})),
                )
                self._conn.executemany(
                    "INSERT INTO nodes VALUES (?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
        self.saves += 1
        return len(rows)

    def delete(self, doc: str) -> bool:
        """Drop a persisted document; returns whether it existed."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM documents WHERE doc = ?", (doc,)
            )
            self._conn.execute("DELETE FROM nodes WHERE doc = ?", (doc,))
            return cursor.rowcount > 0

    def describe(self, doc: str) -> StoredDocument | None:
        """The catalog row of ``doc``, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc, schema_digest, nodes, nodes_seen, "
                "subtrees_skipped, meta FROM documents WHERE doc = ?",
                (doc,),
            ).fetchone()
        if row is None:
            return None
        return StoredDocument(row[0], row[1], row[2], row[3], row[4],
                              json.loads(row[5]))

    @timed_store_op("load")
    def load(self, doc: str):
        """Re-materialize ``doc`` from its node table, or None.

        One ordered scan rebuilds the columnar arrays directly; child
        lists fill in document order because the rows *are* pre-order.
        """
        described = self.describe(doc)
        if described is None:
            self.misses += 1
            return None
        with self._lock:
            rows = self._conn.execute(
                "SELECT loc, parent, level, size, tag, text FROM nodes "
                "WHERE doc = ? ORDER BY loc", (doc,),
            ).fetchall()
        tree = materialize(rows, doc)
        self.hits += 1
        return tree, described

    def list_documents(self) -> list[StoredDocument]:
        """Catalog rows of every persisted document."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT doc, schema_digest, nodes, nodes_seen, "
                "subtrees_skipped, meta FROM documents ORDER BY doc"
            ).fetchall()
        return [StoredDocument(r[0], r[1], r[2], r[3], r[4],
                               json.loads(r[5])) for r in rows]

    def ancestors(self, doc: str, loc: int) -> list[int]:
        """Ancestor locations of ``loc``, root first, via a recursive
        CTE chasing the parent column -- no tree materialization."""
        with self._lock:
            rows = self._conn.execute(
                _ANCESTORS_SQL, (doc, loc, doc)
            ).fetchall()
        return [r[0] for r in rows]

    def descendants(self, doc: str, loc: int,
                    tag: str | None = None) -> list[int]:
        """Proper-descendant locations of ``loc`` in document order:
        one interval range scan (``loc < x < loc + size``) over the
        pre-ordered node table, optionally filtered by ``tag``."""
        tag_filter = "" if tag is None else " AND n.tag = ?"
        params = (doc, loc) if tag is None else (doc, loc, tag)
        with self._lock:
            rows = self._conn.execute(
                _DESCENDANTS_SQL.format(tag_filter=tag_filter), params
            ).fetchall()
        return [r[0] for r in rows]

    @timed_store_op("run_steps")
    def run_steps(self, doc: str, steps, *,
                  dedup: bool = False) -> list[int]:
        """Answer a compiled step chain with ONE SQL query over the
        node table -- range predicates on ``(pre, pre + size)`` for
        descendant steps, a parent-join for child steps, window
        functions for positional predicates -- without materializing
        the tree (see :func:`repro.storage.base.compile_steps_sql`)."""
        self._require_document(doc)
        sql, params = compile_steps_sql(doc, steps, placeholder="?",
                                        dedup=dedup)
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [r[0] for r in rows]

    def explain_steps(self, doc: str, steps, *,
                      dedup: bool = False) -> dict:
        """The exact parameterized SQL :meth:`run_steps` would execute
        (``?`` placeholders), without touching the database."""
        sql, params = compile_steps_sql(doc, steps, placeholder="?",
                                        dedup=dedup)
        return {"engine": "sql", "dialect": "sqlite", "sql": sql,
                "params": list(params)}

    def subtree_rows(self, doc: str, loc: int) -> list[tuple]:
        """The pre-order row slice of the subtree at ``loc``: one
        interval range scan ``loc <= x < loc + size``."""
        self._require_document(doc)
        with self._lock:
            rows = self._conn.execute(
                "SELECT n.loc, n.parent, n.level, n.size, n.tag, n.text"
                " FROM nodes n JOIN nodes s ON n.doc = s.doc"
                " AND n.loc >= s.loc AND n.loc < s.loc + s.size"
                " WHERE s.doc = ? AND s.loc = ? ORDER BY n.loc",
                (doc, loc),
            ).fetchall()
        return [tuple(row) for row in rows]

    def _require_document(self, doc: str) -> None:
        """Raise :class:`KeyError` when ``doc`` is not persisted."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM documents WHERE doc = ?", (doc,)
            ).fetchone()
        if row is None:
            raise KeyError(doc)

    def stats(self) -> dict:
        """Backend counters plus table sizes (one aggregate scan)."""
        with self._lock:
            documents, nodes = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nodes), 0) FROM documents"
            ).fetchone()
        return {
            "path": self.path,
            "documents": documents,
            "nodes": nodes,
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
        }

    def close(self) -> None:
        """Close the connection (idempotent; shared connections are
        closed by the owning backend)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns_connection:
                self._conn.close()


class SqliteBackend(StorageBackend):
    """One SQLite file holding both facets.

    The verdict KV and document store share one connection and one
    lock, so a unified ``sqlite:///x.db`` URL gives a service verdicts
    *and* documents in a single WAL database that multi-process shard
    workers can share.
    """

    kind = "sqlite"
    shared = True

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._connection = connect(path)
        self._closed = False
        self.verdicts = SqliteVerdictKV(
            path, connection=self._connection, lock=self._lock
        )
        self.documents = SqliteDocumentStore(
            path, connection=self._connection, lock=self._lock
        )

    @property
    def url(self) -> str:
        """The canonical ``sqlite:///`` URL of this database."""
        if self.path == ":memory:":
            return "sqlite:///:memory:"
        return f"sqlite:///{self.path}"

    def close(self) -> None:
        """Flush both facets and close the shared connection."""
        self.verdicts.close()
        self.documents.close()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.close()
