"""PostgreSQL storage backend: one server shared by many hosts.

This is the scale-out backend the ROADMAP names: N routers x M shard
hosts over one shared Postgres.  Same interface, same row codec as the
SQLite backend, with the server doing the heavy lifting:

* **server-side group commit** -- :meth:`PgVerdictKV.deferred` holds
  one transaction open across a coalesced micro-batch flush, so a
  batch of verdict upserts costs a single ``COMMIT`` (and a single
  WAL fsync) on the server;
* **advisory-lock guarded compaction** -- :meth:`PgDocumentStore.save`
  takes ``pg_advisory_xact_lock(hashtext(doc))`` before rewriting a
  document's node rows, so two hosts saving the same document serialize
  on the server without table-level locking (different documents never
  contend);
* **recursive-CTE traversals** -- :meth:`~PgDocumentStore.ancestors`
  chases the parent column and :meth:`~PgDocumentStore.descendants`
  range-scans the interval encoding entirely inside the database, so
  axis queries on persisted documents need no re-materialization.

The dependency is gated: ``psycopg`` (v3) is only required when a
``postgresql://`` URL is actually opened.  Install with
``pip install repro-bidoit-tollu[postgres]``.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager

try:  # psycopg (v3) is an optional extra; see pyproject [postgres]
    import psycopg
except ImportError:  # pragma: no cover - exercised via _require_psycopg
    psycopg = None

from ..analysis.engine import PairVerdict
from .base import (
    DocumentStore,
    StorageBackend,
    StoredDocument,
    VerdictKV,
    compile_steps_sql,
    materialize,
    node_rows,
    timed_store_op,
)

_VERDICT_SCHEMA = """
CREATE TABLE IF NOT EXISTS verdicts (
    schema_digest TEXT NOT NULL,
    k             INTEGER NOT NULL,
    query_digest  TEXT NOT NULL,
    update_digest TEXT NOT NULL,
    independent   INTEGER NOT NULL,
    k_query       INTEGER NOT NULL,
    k_update      INTEGER NOT NULL,
    PRIMARY KEY (schema_digest, k, query_digest, update_digest)
)
"""

_DOCUMENT_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    doc            TEXT PRIMARY KEY,
    schema_digest  TEXT NOT NULL,
    nodes          INTEGER NOT NULL,
    nodes_seen     INTEGER NOT NULL,
    subtrees_skipped INTEGER NOT NULL,
    meta           TEXT NOT NULL DEFAULT '{}',
    created        DOUBLE PRECISION NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    doc    TEXT NOT NULL,
    loc    INTEGER NOT NULL,
    parent INTEGER,
    level  INTEGER NOT NULL,
    size   INTEGER NOT NULL,
    tag    TEXT,
    text   TEXT,
    PRIMARY KEY (doc, loc)
)
"""

_UPSERT_VERDICT = """
INSERT INTO verdicts VALUES (%s, %s, %s, %s, %s, %s, %s)
ON CONFLICT (schema_digest, k, query_digest, update_digest)
DO UPDATE SET independent = EXCLUDED.independent,
              k_query = EXCLUDED.k_query,
              k_update = EXCLUDED.k_update
"""

_ANCESTORS_SQL = """
WITH RECURSIVE up(loc) AS (
    SELECT parent FROM nodes WHERE doc = %s AND loc = %s
    UNION ALL
    SELECT n.parent FROM nodes n JOIN up ON n.loc = up.loc
        WHERE n.doc = %s AND up.loc IS NOT NULL
)
SELECT loc FROM up WHERE loc IS NOT NULL ORDER BY loc
"""

_DESCENDANTS_SQL = """
SELECT n.loc FROM nodes n JOIN nodes s
    ON n.doc = s.doc AND n.loc > s.loc AND n.loc < s.loc + s.size
WHERE s.doc = %s AND s.loc = %s{tag_filter} ORDER BY n.loc
"""


def _require_psycopg():
    """The psycopg module, or a clear error naming the install extra."""
    if psycopg is None:
        raise RuntimeError(
            "postgresql:// store URLs require the psycopg package; "
            "install the optional extra: pip install "
            "'repro-bidoit-tollu[postgres]'"
        )
    return psycopg


class PgVerdictKV(VerdictKV):
    """Postgres-backed verdict map over a shared connection.

    Writes upsert (``ON CONFLICT DO UPDATE``); :meth:`deferred` holds
    one server-side transaction open so a coalesced batch commits (and
    fsyncs) once.
    """

    def __init__(self, connection, lock: threading.Lock, dsn: str):
        self.path = dsn
        self._lock = lock
        self._connection = connection
        self._deferred_depth = 0
        with self._lock:
            self._connection.execute(_VERDICT_SCHEMA)
            self._connection.commit()

    def get(self, schema_digest, k, query_digest, update_digest):
        """The stored verdict for one pair key, or ``None``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT independent, k_query, k_update FROM verdicts"
                " WHERE schema_digest=%s AND k=%s AND query_digest=%s"
                " AND update_digest=%s",
                (schema_digest, k, query_digest, update_digest),
            ).fetchone()
            if self._deferred_depth == 0:
                self._connection.commit()
        if row is None:
            return None
        independent, k_query, k_update = row
        return PairVerdict(
            independent=bool(independent), k=k, k_query=k_query,
            k_update=k_update, analysis_seconds=0.0,
        )

    def put(self, schema_digest, k, query_digest, update_digest,
            verdict) -> None:
        """Upsert one verdict (committed unless deferred)."""
        with self._lock:
            self._connection.execute(
                _UPSERT_VERDICT,
                (schema_digest, k, query_digest, update_digest,
                 int(verdict.independent), verdict.k_query,
                 verdict.k_update),
            )
            if self._deferred_depth == 0:
                self._connection.commit()

    def scan(self, schema_digest=None):
        """Iterate stored ``(schema_digest, k, query_digest,
        update_digest, verdict)`` rows in key order."""
        sql = ("SELECT schema_digest, k, query_digest, update_digest,"
               " independent, k_query, k_update FROM verdicts")
        params: tuple = ()
        if schema_digest is not None:
            sql += " WHERE schema_digest=%s"
            params = (schema_digest,)
        with self._lock:
            rows = self._connection.execute(
                sql + " ORDER BY schema_digest, k, query_digest,"
                " update_digest", params
            ).fetchall()
            if self._deferred_depth == 0:
                self._connection.commit()
        for digest, k, q, u, independent, k_query, k_update in rows:
            yield digest, k, q, u, PairVerdict(
                independent=bool(independent), k=k, k_query=k_query,
                k_update=k_update, analysis_seconds=0.0,
            )

    @contextmanager
    def deferred(self):
        """Server-side group commit: one open transaction across the
        scope; only the outermost exit issues ``COMMIT``."""
        with self._lock:
            self._deferred_depth += 1
        try:
            yield self
        finally:
            with self._lock:
                self._deferred_depth -= 1
                if self._deferred_depth == 0:
                    self._connection.commit()

    def count(self, schema_digest=None) -> int:
        """Stored verdicts, optionally restricted to one schema."""
        with self._lock:
            if schema_digest is None:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM verdicts"
                ).fetchone()
            else:
                row = self._connection.execute(
                    "SELECT COUNT(*) FROM verdicts"
                    " WHERE schema_digest=%s", (schema_digest,),
                ).fetchone()
            if self._deferred_depth == 0:
                self._connection.commit()
        return row[0]

    def stats(self) -> dict:
        """Target DSN and size (the ``/stats`` store section)."""
        return {"path": self.path, "verdicts": self.count()}

    def close(self) -> None:
        """Commit pending writes (the backend owns the connection)."""
        with self._lock:
            if not self._connection.closed:
                self._connection.commit()


class PgDocumentStore(DocumentStore):
    """Postgres-backed node table + catalog over a shared connection.

    Document rewrites are guarded by a per-document advisory lock so
    concurrent hosts saving the same document serialize on the server;
    traversals run as recursive-CTE / interval-range SQL.
    """

    def __init__(self, connection, lock: threading.Lock, dsn: str):
        super().__init__()
        self.path = dsn
        self._lock = lock
        self._conn = connection
        with self._lock:
            for statement in _DOCUMENT_SCHEMA.split(";"):
                if statement.strip():
                    self._conn.execute(statement)
            self._conn.commit()

    @timed_store_op("save")
    def save(self, doc, tree, schema_digest, nodes_seen=0,
             subtrees_skipped=0, meta=None) -> int:
        """Persist ``tree`` under ``doc`` in one transaction.

        ``pg_advisory_xact_lock(hashtext(doc))`` serializes concurrent
        rewrites of the *same* document across hosts (the lock releases
        with the commit); different documents never contend.
        """
        rows = [(doc,) + row for row in node_rows(tree)]
        with self._lock:
            try:
                self._conn.execute(
                    "SELECT pg_advisory_xact_lock(hashtext(%s))", (doc,)
                )
                self._conn.execute(
                    "DELETE FROM nodes WHERE doc = %s", (doc,)
                )
                self._conn.execute(
                    "INSERT INTO documents VALUES (%s, %s, %s, %s, %s,"
                    " %s, EXTRACT(EPOCH FROM now()))"
                    " ON CONFLICT (doc) DO UPDATE SET"
                    " schema_digest = EXCLUDED.schema_digest,"
                    " nodes = EXCLUDED.nodes,"
                    " nodes_seen = EXCLUDED.nodes_seen,"
                    " subtrees_skipped = EXCLUDED.subtrees_skipped,"
                    " meta = EXCLUDED.meta,"
                    " created = EXCLUDED.created",
                    (doc, schema_digest, len(rows),
                     nodes_seen or len(rows), subtrees_skipped,
                     json.dumps(meta or {})),
                )
                with self._conn.cursor() as cursor:
                    cursor.executemany(
                        "INSERT INTO nodes VALUES"
                        " (%s, %s, %s, %s, %s, %s, %s)",
                        rows,
                    )
                self._conn.commit()
            except Exception:
                self._conn.rollback()
                raise
        self.saves += 1
        return len(rows)

    def delete(self, doc: str) -> bool:
        """Drop a persisted document; returns whether it existed."""
        with self._lock:
            try:
                cursor = self._conn.execute(
                    "DELETE FROM documents WHERE doc = %s", (doc,)
                )
                existed = cursor.rowcount > 0
                self._conn.execute(
                    "DELETE FROM nodes WHERE doc = %s", (doc,)
                )
                self._conn.commit()
            except Exception:
                self._conn.rollback()
                raise
        return existed

    def describe(self, doc: str) -> StoredDocument | None:
        """The catalog row of ``doc``, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc, schema_digest, nodes, nodes_seen,"
                " subtrees_skipped, meta FROM documents WHERE doc = %s",
                (doc,),
            ).fetchone()
            self._conn.commit()
        if row is None:
            return None
        return StoredDocument(row[0], row[1], row[2], row[3], row[4],
                              json.loads(row[5]))

    @timed_store_op("load")
    def load(self, doc: str):
        """Re-materialize ``doc`` with one ordered range scan, or
        None."""
        described = self.describe(doc)
        if described is None:
            self.misses += 1
            return None
        with self._lock:
            rows = self._conn.execute(
                "SELECT loc, parent, level, size, tag, text FROM nodes"
                " WHERE doc = %s ORDER BY loc", (doc,),
            ).fetchall()
            self._conn.commit()
        tree = materialize(rows, doc)
        self.hits += 1
        return tree, described

    def list_documents(self) -> list[StoredDocument]:
        """Catalog rows of every persisted document."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT doc, schema_digest, nodes, nodes_seen,"
                " subtrees_skipped, meta FROM documents ORDER BY doc"
            ).fetchall()
            self._conn.commit()
        return [StoredDocument(r[0], r[1], r[2], r[3], r[4],
                               json.loads(r[5])) for r in rows]

    def ancestors(self, doc: str, loc: int) -> list[int]:
        """Ancestor locations of ``loc``, root first, via a recursive
        CTE chasing the parent column on the server."""
        with self._lock:
            rows = self._conn.execute(
                _ANCESTORS_SQL, (doc, loc, doc)
            ).fetchall()
            self._conn.commit()
        return [r[0] for r in rows]

    def descendants(self, doc: str, loc: int,
                    tag: str | None = None) -> list[int]:
        """Proper-descendant locations of ``loc`` in document order:
        one server-side interval range scan, optionally tag-filtered."""
        tag_filter = "" if tag is None else " AND n.tag = %s"
        params = (doc, loc) if tag is None else (doc, loc, tag)
        with self._lock:
            rows = self._conn.execute(
                _DESCENDANTS_SQL.format(tag_filter=tag_filter), params
            ).fetchall()
            self._conn.commit()
        return [r[0] for r in rows]

    @timed_store_op("run_steps")
    def run_steps(self, doc: str, steps, *,
                  dedup: bool = False) -> list[int]:
        """Answer a compiled step chain with ONE server-side SQL query
        over the node table -- the same shapes as SQLite (range
        predicates, parent-joins, window functions), ``%s``
        placeholders (see
        :func:`repro.storage.base.compile_steps_sql`)."""
        self._require_document(doc)
        sql, params = compile_steps_sql(doc, steps, placeholder="%s",
                                        dedup=dedup)
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
            self._conn.commit()
        return [r[0] for r in rows]

    def explain_steps(self, doc: str, steps, *,
                      dedup: bool = False) -> dict:
        """The exact parameterized SQL :meth:`run_steps` would execute
        (``%s`` placeholders), without touching the server."""
        sql, params = compile_steps_sql(doc, steps, placeholder="%s",
                                        dedup=dedup)
        return {"engine": "sql", "dialect": "postgresql", "sql": sql,
                "params": list(params)}

    def subtree_rows(self, doc: str, loc: int) -> list[tuple]:
        """The pre-order row slice of the subtree at ``loc``: one
        server-side interval range scan ``loc <= x < loc + size``."""
        self._require_document(doc)
        with self._lock:
            rows = self._conn.execute(
                "SELECT n.loc, n.parent, n.level, n.size, n.tag, n.text"
                " FROM nodes n JOIN nodes s ON n.doc = s.doc"
                " AND n.loc >= s.loc AND n.loc < s.loc + s.size"
                " WHERE s.doc = %s AND s.loc = %s ORDER BY n.loc",
                (doc, loc),
            ).fetchall()
            self._conn.commit()
        return [tuple(row) for row in rows]

    def _require_document(self, doc: str) -> None:
        """Raise :class:`KeyError` when ``doc`` is not persisted."""
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM documents WHERE doc = %s", (doc,)
            ).fetchone()
            self._conn.commit()
        if row is None:
            raise KeyError(doc)

    def stats(self) -> dict:
        """Backend counters plus table sizes (one aggregate scan)."""
        with self._lock:
            documents, nodes = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nodes), 0)"
                " FROM documents"
            ).fetchone()
            self._conn.commit()
        return {
            "path": self.path,
            "documents": documents,
            "nodes": int(nodes),
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
        }

    def close(self) -> None:
        """Commit pending work (the backend owns the connection)."""
        with self._lock:
            if not self._conn.closed:
                self._conn.commit()


class PgBackend(StorageBackend):
    """Both facets over one psycopg connection to a shared server."""

    kind = "postgresql"
    shared = True

    def __init__(self, dsn: str):
        pg = _require_psycopg()
        self.dsn = dsn
        self._lock = threading.Lock()
        self._connection = pg.connect(dsn, autocommit=False)
        self._closed = False
        self.verdicts = PgVerdictKV(self._connection, self._lock, dsn)
        self.documents = PgDocumentStore(
            self._connection, self._lock, dsn
        )

    @property
    def url(self) -> str:
        """The DSN this backend was opened from."""
        return self.dsn

    def close(self) -> None:
        """Flush both facets and close the server connection."""
        self.verdicts.close()
        self.documents.close()
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._connection.close()
