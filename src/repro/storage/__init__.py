"""Pluggable storage: one interface, a store URL to pick the backend.

A single **store URL** selects where verdicts and documents live::

    memory://                     ephemeral per-process dicts
    sqlite:///relative/path.db    one WAL SQLite file (both facets)
    sqlite:////absolute/path.db   (four slashes = absolute path)
    postgresql://host/db          shared PostgreSQL server (psycopg)

:func:`open_store` turns a URL into a :class:`StorageBackend` whose
``.verdicts`` (:class:`~repro.storage.base.VerdictKV`) and
``.documents`` (:class:`~repro.storage.base.DocumentStore`) facets
share one connection.  The serve layer resolves its CLI flags through
:func:`serve_storage_plan` / :func:`open_storage_plan`, which keep the
legacy plain-path spellings (``--store x.db``, ``--doc-store y.db``)
working with their historical semantics while URLs get the unified
behavior (one database holding both facets).  See ``docs/STORAGE.md``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from .base import (
    DocumentStore,
    StepSpec,
    StorageBackend,
    StoredDocument,
    VerdictKV,
    check_steps,
    compact_store,
    compile_steps_sql,
    materialize,
    node_rows,
)

__all__ = [
    "BackendSpec",
    "DocumentStore",
    "SCHEMES",
    "ServeStorage",
    "StepSpec",
    "StorageBackend",
    "StoragePlan",
    "StoredDocument",
    "VerdictKV",
    "check_steps",
    "compact_store",
    "compile_steps_sql",
    "is_store_url",
    "materialize",
    "node_rows",
    "normalize_store_flags",
    "open_storage_plan",
    "open_store",
    "parse_store_url",
    "serve_storage_plan",
]

#: URL schemes :func:`parse_store_url` accepts (``postgres://`` is
#: normalized to ``postgresql://``).
SCHEMES = ("memory", "sqlite", "postgresql")


@dataclass(frozen=True)
class BackendSpec:
    """A parsed store target: backend kind plus its opaque target
    (path for sqlite, DSN for postgresql, ``":memory:"`` for
    memory)."""

    kind: str
    target: str


def is_store_url(value: str) -> bool:
    """Whether ``value`` spells a store URL (vs a legacy plain
    path)."""
    return "://" in value


def parse_store_url(url: str) -> BackendSpec:
    """Parse a store URL into a :class:`BackendSpec`.

    SQLAlchemy path convention: ``sqlite:///x.db`` is the *relative*
    path ``x.db``; ``sqlite:////var/x.db`` is absolute.  Raises
    :class:`ValueError` on an unknown scheme or malformed URL.
    """
    if url == "memory://":
        return BackendSpec("memory", ":memory:")
    if url.startswith("memory://"):
        raise ValueError(
            f"malformed store URL {url!r}: memory:// takes no path"
        )
    if url.startswith("sqlite://"):
        rest = url[len("sqlite://"):]
        if not rest.startswith("/"):
            raise ValueError(
                f"malformed store URL {url!r}: expected sqlite:///path"
            )
        path = rest[1:]  # sqlite:///x.db -> "x.db"; ////abs -> "/abs"
        if not path:
            raise ValueError(
                f"malformed store URL {url!r}: empty database path"
            )
        return BackendSpec("sqlite", path)
    if url.startswith("postgresql://") or url.startswith("postgres://"):
        dsn = url.replace("postgres://", "postgresql://", 1)
        return BackendSpec("postgresql", dsn)
    scheme = url.split("://", 1)[0] if "://" in url else url
    raise ValueError(
        f"unknown store URL scheme {scheme!r} (expected one of: "
        + ", ".join(SCHEMES) + ")"
    )


def _open_spec(spec: BackendSpec) -> StorageBackend:
    """Open the unified backend for one parsed spec."""
    if spec.kind == "memory":
        from .memory import MemoryBackend

        return MemoryBackend()
    if spec.kind == "sqlite":
        from .sqlite import SqliteBackend

        return SqliteBackend(spec.target)
    if spec.kind == "postgresql":
        from .postgres import PgBackend

        return PgBackend(spec.target)
    raise ValueError(f"unknown backend kind {spec.kind!r}")


def open_store(url: str) -> StorageBackend:
    """Open a :class:`StorageBackend` from a store URL.

    For convenience, ``":memory:"`` (and ``""``) open the memory
    backend and a plain path opens that SQLite file, so the facade
    accepts both URL and legacy spellings.
    """
    if url in ("", ":memory:"):
        return _open_spec(BackendSpec("memory", ":memory:"))
    if not is_store_url(url):
        return _open_spec(BackendSpec("sqlite", url))
    return _open_spec(parse_store_url(url))


@dataclass(frozen=True)
class StoragePlan:
    """Resolved storage wiring for a service.

    ``verdicts`` is always set; ``documents`` is ``None`` when the
    service runs without a document store (the legacy default).
    ``unified`` records that one URL supplied both facets, so they
    must share a single backend instance.
    """

    verdicts: BackendSpec
    documents: BackendSpec | None
    unified: bool


def serve_storage_plan(store_path: str,
                       doc_store_path: str = "") -> StoragePlan:
    """Resolve the serve-layer flag pair into a :class:`StoragePlan`.

    Semantics (pinned by ``tests/serve/test_store_url.py``):

    * ``store_path`` empty / ``":memory:"`` -> ephemeral memory
      verdicts, no documents (historical default);
    * ``store_path`` a URL -> **unified**: one backend serves verdicts
      *and* documents;
    * ``store_path`` a plain path -> legacy: SQLite verdicts only;
    * ``doc_store_path`` (path or URL), when set, supplies/overrides
      the documents facet.
    """
    if store_path in ("", ":memory:"):
        verdicts = BackendSpec("memory", ":memory:")
        unified = False
        documents = None
    elif is_store_url(store_path):
        verdicts = parse_store_url(store_path)
        unified = verdicts.kind != "memory"
        documents = verdicts if unified else None
    else:
        verdicts = BackendSpec("sqlite", store_path)
        unified = False
        documents = None
    if doc_store_path:
        documents = parse_store_url(doc_store_path) \
            if is_store_url(doc_store_path) \
            else BackendSpec("sqlite", doc_store_path)
        if documents != verdicts:
            unified = False
    return StoragePlan(verdicts, documents, unified)


class ServeStorage:
    """Opened storage for one service: the verdict facet, the optional
    document facet, and one ``close()`` for everything underneath."""

    def __init__(self, verdicts, documents, closers):
        #: The :class:`VerdictKV` the engine attaches.
        self.verdicts = verdicts
        #: The :class:`DocumentStore`, or ``None``.
        self.documents = documents
        self._closers = list(closers)

    def close(self) -> None:
        """Close every underlying store/backend once (idempotent)."""
        closers, self._closers = self._closers, []
        for closer in closers:
            closer.close()

    def __enter__(self):
        """Context-manager entry (closes on exit)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Close on scope exit."""
        self.close()


def open_storage_plan(plan: StoragePlan) -> ServeStorage:
    """Open the backends a :class:`StoragePlan` calls for.

    A unified plan opens ONE backend shared by both facets.  Legacy
    plain-path specs open standalone facets so a verdicts-only file
    never grows document tables (and vice versa) -- byte-compatible
    with the stores the deprecated flags produced.
    """
    if plan.unified:
        backend = _open_spec(plan.verdicts)
        return ServeStorage(backend.verdicts, backend.documents,
                            [backend])
    closers = []
    if plan.verdicts.kind == "memory":
        from .memory import MemoryVerdictKV

        verdicts = MemoryVerdictKV()
        closers.append(verdicts)
    elif plan.verdicts.kind == "sqlite":
        from .sqlite import SqliteVerdictKV

        verdicts = SqliteVerdictKV(plan.verdicts.target)
        closers.append(verdicts)
    else:
        backend = _open_spec(plan.verdicts)
        verdicts = backend.verdicts
        closers.append(backend)
    documents = None
    if plan.documents is not None:
        if plan.documents.kind == "memory":
            from .memory import MemoryDocumentStore

            documents = MemoryDocumentStore()
            closers.append(documents)
        elif plan.documents.kind == "sqlite":
            from .sqlite import SqliteDocumentStore

            documents = SqliteDocumentStore(plan.documents.target)
            closers.append(documents)
        else:
            backend = _open_spec(plan.documents)
            documents = backend.documents
            closers.append(backend)
    return ServeStorage(verdicts, documents, closers)


def normalize_store_flags(store: str, doc_store: str, *,
                          doc_flag: str = "--doc-store",
                          stacklevel: int = 3) -> tuple[str, str]:
    """Warn about deprecated flag spellings.

    Called by the CLI layer only, so programmatic ``ServeConfig``
    construction never warns.  Plain-path ``--store`` values and any
    ``--doc-store`` / ``--docstore`` use (``doc_flag`` names the
    spelling of the emitting command) get a :class:`DeprecationWarning`
    naming the store-URL replacement; values pass through unchanged
    (the legacy semantics stay supported for one release).  The
    warning is forced visible (Python hides ``DeprecationWarning``
    outside ``__main__`` by default, and a CLI user must actually see
    the migration line).
    """
    with warnings.catch_warnings():
        warnings.simplefilter("always", DeprecationWarning)
        if store not in ("", ":memory:") and not is_store_url(store):
            warnings.warn(
                f"plain-path --store {store!r} is deprecated; use the "
                f"store URL 'sqlite:///{store}' (which also persists "
                "documents). See docs/STORAGE.md for migration.",
                DeprecationWarning, stacklevel=stacklevel,
            )
        if doc_store:
            warnings.warn(
                f"{doc_flag} is deprecated; pass one unified store URL "
                f"via --store (e.g. 'sqlite:///{doc_store}'). "
                "See docs/STORAGE.md for migration.",
                DeprecationWarning, stacklevel=stacklevel,
            )
    return store, doc_store
