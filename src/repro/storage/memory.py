"""In-memory storage backend: per-process dicts, full interface.

``memory://`` gives the exact storage semantics of the SQL backends --
same row codec, same counters, same traversals -- without any file, so
tests and ephemeral services (``--store :memory:``) exercise identical
code paths.  State is per-process: two processes opening ``memory://``
see independent stores (``shared = False``), which is why the sharded
router aggregates memory-store stats by *sum* and shared-store stats
by *max*.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import replace

from .base import (
    DocumentStore,
    StorageBackend,
    StoredDocument,
    VerdictKV,
    check_steps,
    materialize,
    node_rows,
    timed_store_op,
)


class MemoryVerdictKV(VerdictKV):
    """Dict-backed verdict map (ephemeral, thread-safe)."""

    def __init__(self):
        self.path = ":memory:"
        self._lock = threading.Lock()
        self._rows: dict[tuple, object] = {}

    def get(self, schema_digest, k, query_digest, update_digest):
        """The stored verdict for one pair key, or ``None``."""
        with self._lock:
            return self._rows.get(
                (schema_digest, k, query_digest, update_digest)
            )

    def put(self, schema_digest, k, query_digest, update_digest,
            verdict) -> None:
        """Store one verdict (a dict write *is* the commit).

        Timing is dropped like the SQL backends drop it: a stored
        verdict reads back with ``analysis_seconds == 0.0``.
        """
        with self._lock:
            self._rows[
                (schema_digest, k, query_digest, update_digest)
            ] = replace(verdict, analysis_seconds=0.0)

    def scan(self, schema_digest=None):
        """Iterate stored ``(schema_digest, k, query_digest,
        update_digest, verdict)`` rows in key order."""
        with self._lock:
            items = sorted(self._rows.items())
        for (digest, k, q, u), verdict in items:
            if schema_digest is None or digest == schema_digest:
                yield digest, k, q, u, verdict

    @contextmanager
    def deferred(self):
        """Group-commit scope; a no-op here (writes are immediate)."""
        yield self

    def count(self, schema_digest=None) -> int:
        """Stored verdicts, optionally restricted to one schema."""
        with self._lock:
            if schema_digest is None:
                return len(self._rows)
            return sum(1 for key in self._rows
                       if key[0] == schema_digest)

    def stats(self) -> dict:
        """Path and size (the ``/stats`` store section)."""
        return {"path": self.path, "verdicts": self.count()}

    def close(self) -> None:
        """Nothing to release (idempotent)."""


class MemoryDocumentStore(DocumentStore):
    """Dict-backed node table + catalog (ephemeral, thread-safe).

    Persists the same row tuples as the SQL backends and rebuilds
    through :func:`repro.storage.base.materialize`, so a loaded tree
    never aliases the saved one and round-trips identically.
    """

    def __init__(self):
        super().__init__()
        self.path = ":memory:"
        self._lock = threading.Lock()
        self._catalog: dict[str, StoredDocument] = {}
        self._nodes: dict[str, list[tuple]] = {}
        # Materialized trees backing run_steps (the rows already live
        # in RAM here, so answering through the in-memory accelerators
        # is the honest equivalent of the SQL backends' pushdown);
        # invalidated whenever the document is rewritten.
        self._steps_trees: dict[str, object] = {}

    @timed_store_op("save")
    def save(self, doc, tree, schema_digest, nodes_seen=0,
             subtrees_skipped=0, meta=None) -> int:
        """Persist ``tree`` under ``doc`` as canonical row tuples."""
        rows = node_rows(tree)
        with self._lock:
            self._nodes[doc] = rows
            self._steps_trees.pop(doc, None)
            self._catalog[doc] = StoredDocument(
                doc, schema_digest, len(rows),
                nodes_seen or len(rows), subtrees_skipped,
                dict(meta or {}),
            )
        self.saves += 1
        return len(rows)

    def delete(self, doc: str) -> bool:
        """Drop a persisted document; returns whether it existed."""
        with self._lock:
            existed = doc in self._catalog
            self._catalog.pop(doc, None)
            self._nodes.pop(doc, None)
            self._steps_trees.pop(doc, None)
        return existed

    def describe(self, doc: str) -> StoredDocument | None:
        """The catalog row of ``doc``, or None."""
        with self._lock:
            return self._catalog.get(doc)

    @timed_store_op("load")
    def load(self, doc: str):
        """Re-materialize ``doc`` from its stored rows, or None."""
        with self._lock:
            described = self._catalog.get(doc)
            rows = self._nodes.get(doc)
        if described is None:
            self.misses += 1
            return None
        tree = materialize(rows, doc)
        self.hits += 1
        return tree, described

    def list_documents(self) -> list[StoredDocument]:
        """Catalog rows of every persisted document."""
        with self._lock:
            return [self._catalog[doc] for doc in sorted(self._catalog)]

    def ancestors(self, doc: str, loc: int) -> list[int]:
        """Ancestor locations of ``loc``, root first, chased through
        the stored parent column."""
        with self._lock:
            rows = self._nodes.get(doc)
        if rows is None:
            raise KeyError(doc)
        chain = []
        parent = rows[loc][1]
        while parent is not None:
            chain.append(parent)
            parent = rows[parent][1]
        return sorted(chain)

    def descendants(self, doc: str, loc: int,
                    tag: str | None = None) -> list[int]:
        """Proper-descendant locations of ``loc`` in document order
        (interval scan over the stored pre-order rows)."""
        with self._lock:
            rows = self._nodes.get(doc)
        if rows is None:
            raise KeyError(doc)
        size = rows[loc][3]
        return [
            x for x in range(loc + 1, loc + size)
            if tag is None or rows[x][4] == tag
        ]

    @timed_store_op("run_steps")
    def run_steps(self, doc: str, steps, *,
                  dedup: bool = False) -> list[int]:
        """Answer a compiled step chain via the in-memory axis
        accelerators (the rows already live in this process, so the
        conformance suite stays three-way against the SQL pushdown)."""
        from ..docstore.pushdown import run_steps_on_tree

        check_steps(steps)
        with self._lock:
            rows = self._nodes.get(doc)
            tree = self._steps_trees.get(doc)
        if rows is None:
            raise KeyError(doc)
        if tree is None:
            tree = materialize(rows, doc)
            with self._lock:
                self._steps_trees[doc] = tree
        return run_steps_on_tree(tree, steps, dedup=dedup)

    def explain_steps(self, doc: str, steps, *,
                      dedup: bool = False) -> dict:
        """In-process answering via the axis accelerators: a tree walk,
        no SQL (the base default, made explicit here)."""
        check_steps(steps)
        return {"engine": "tree", "dialect": "memory", "sql": None,
                "params": []}

    def subtree_rows(self, doc: str, loc: int) -> list[tuple]:
        """The pre-order row slice of the subtree at ``loc`` (one
        list slice: rows are stored in canonical pre-order)."""
        with self._lock:
            rows = self._nodes.get(doc)
        if rows is None:
            raise KeyError(doc)
        size = rows[loc][3]
        return rows[loc:loc + size]

    def stats(self) -> dict:
        """Backend counters plus table sizes."""
        with self._lock:
            documents = len(self._catalog)
            nodes = sum(d.nodes for d in self._catalog.values())
        return {
            "path": self.path,
            "documents": documents,
            "nodes": nodes,
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
        }

    def close(self) -> None:
        """Nothing to release (idempotent)."""


class MemoryBackend(StorageBackend):
    """Both facets over per-process dicts (``memory://``)."""

    kind = "memory"
    shared = False

    def __init__(self):
        self.verdicts = MemoryVerdictKV()
        self.documents = MemoryDocumentStore()

    @property
    def url(self) -> str:
        """The canonical ``memory://`` URL."""
        return "memory://"

    def close(self) -> None:
        """Close both facets (a no-op for dicts)."""
        self.verdicts.close()
        self.documents.close()
