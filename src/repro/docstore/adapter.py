"""Migration and update glue between dict-store and indexed trees.

The evaluators are duck-typed over the store interface, so an
:class:`~repro.docstore.encode.IndexedTree` drops into the query
evaluator, the update pipeline, and view maintenance unchanged.  This
module provides the explicit conversions plus
:func:`apply_update_indexed`, which applies a PUL against an indexed
tree and immediately re-encodes the touched spans (the lazy default
defers that to the next accelerated read).
"""

from __future__ import annotations

from ..xmldm.store import Store, Tree
from ..xquery.ast import ROOT_VAR
from ..xupdate.ast import Update
from ..xupdate.evaluator import apply_update
from ..xupdate.parser import parse_update
from ..xupdate.pul import Command
from .encode import IndexedStoreBuilder, IndexedTree


def to_indexed(tree: Tree) -> IndexedTree:
    """Encode a dict-store tree into an :class:`IndexedTree`.

    One pre-order pass through the shared builder; the source tree is
    not modified.
    """
    builder = IndexedStoreBuilder()
    store = tree.store
    stack: list[tuple[int, bool]] = [(tree.root, False)]
    while stack:
        loc, closing = stack.pop()
        if closing:
            builder.end_element()
            continue
        if store.is_text(loc):
            builder.text(store.text(loc))
            continue
        builder.start_element(store.tag(loc))
        stack.append((loc, True))
        for child in reversed(store.children(loc)):
            stack.append((child, False))
    return builder.finish()


def to_tree(tree: IndexedTree) -> Tree:
    """Materialize an indexed tree as a Section-2 dict-store tree."""
    store = Store()
    source = tree.store
    mapping: dict[int, int] = {}
    order = list(source.descendants_or_self(tree.root))
    for loc in reversed(order):  # children before parents
        if source.is_text(loc):
            mapping[loc] = store.new_text(source.text(loc))
        else:
            mapping[loc] = store.new_element(
                source.tag(loc),
                [mapping[child] for child in source.children(loc)],
            )
    return Tree(store, mapping[tree.root])


def apply_update_indexed(update: Update | str, tree: IndexedTree
                         ) -> list[Command]:
    """Apply an update to an indexed tree, re-encoding touched spans.

    Equivalent to ``apply_update`` + an eager
    :meth:`~repro.docstore.encode.IndexedStore.reencode`; returns the
    applied UPL like the dict-store path does.
    """
    if isinstance(update, str):
        update = parse_update(update)
    commands = apply_update(update, tree.store,
                            {ROOT_VAR: [tree.root]})
    tree.store.reencode()
    return commands
