"""Indexed document store: the scalable storage layer under everything
dynamic.

The Section-2 dict-of-locations :class:`~repro.xmldm.store.Store` is the
paper's formalization, kept verbatim for the static story; this package
is the *serving* representation of documents:

* :mod:`~repro.docstore.encode` -- an interval-encoded node table
  (pre/post/level/parent, after the XPath-accelerator encodings) built
  in one streaming pass, API-compatible with the dict store;
* :mod:`~repro.docstore.streamload` -- an event-driven bulk loader with
  *projection pushdown*: given a :class:`~repro.xmldm.projection.ChainKeep`
  derived from inferred chains, whole subtrees that cannot extend any
  kept chain are skipped at parse time, emitting ``t|L`` directly
  (Theorem 3.2 licenses evaluating on the projection);
* :mod:`~repro.docstore.backend` -- SQLite persistence of the node
  table so served documents survive restarts without a re-parse;
* :mod:`~repro.docstore.axes` -- per-axis accelerators (interval range
  scans) behind the evaluator's transparent fast path;
* :mod:`~repro.docstore.adapter` -- migration glue between dict-store
  trees and indexed trees, plus update application with span-local
  re-encoding;
* :mod:`~repro.docstore.pushdown` -- the SQL-pushdown bridge: compiles
  the downward-axis query fragment to :class:`~repro.storage.StepSpec`
  chains that :meth:`~repro.storage.DocumentStore.run_steps` answers
  inside the database, and serializes answers straight from node rows.
"""

from .adapter import apply_update_indexed, to_indexed, to_tree
from .backend import DocumentBackend, StoredDocument
from .encode import IndexedStore, IndexedStoreBuilder, IndexedTree
from .streamload import LoadResult, load_path, load_xml

__all__ = [
    "DocumentBackend",
    "StoredDocument",
    "IndexedStore",
    "IndexedStoreBuilder",
    "IndexedTree",
    "LoadResult",
    "load_path",
    "load_xml",
    "apply_update_indexed",
    "to_indexed",
    "to_tree",
]
