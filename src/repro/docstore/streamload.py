"""Event-driven bulk loading with projection pushdown.

The loader drives :mod:`xml.parsers.expat` (stdlib, C speed) straight
into an :class:`~repro.docstore.encode.IndexedStoreBuilder`.  Without a
projection it is simply a streaming encoder; with a
:class:`~repro.xmldm.projection.ChainKeep` (built from the inferred
chains of the queries that will run on the document) it performs
*projection pushdown*:

* a subtree whose label chain cannot extend any kept chain
  (``SKIP``) is never materialized -- the handlers just count it;
* a chain hitting a return chain (``SUBTREE``) streams its whole
  subtree into the builder;
* an ``EXPLORE`` element (a potential ancestor of a kept node) is held
  *speculatively* on the open-element stack and committed to the
  builder only when a kept descendant appears, so the result equals
  ``project(parse(doc), keep_set_for_chains(...))`` exactly -- the
  upward closure materializes on the fly, and dead exploration costs
  nothing.

The output is ``t|L`` built directly (Theorem 3.2 licenses evaluating
on it); the full tree never exists in memory, which is what lets
``doc.load`` scale past the dict store.
"""

from __future__ import annotations

from dataclasses import dataclass
from xml.parsers import expat

from ..schema.regex import TEXT_SYMBOL as _TEXT
from ..xmldm.parse import XMLParseError
from ..xmldm.projection import ChainKeep, KeepDecision
from .encode import IndexedStoreBuilder, IndexedTree


@dataclass
class LoadResult:
    """A loaded (possibly projected) tree plus pushdown accounting."""

    tree: IndexedTree
    #: Element/text events observed in the input document.
    nodes_seen: int
    #: Nodes materialized in the store (== tree size after a load).
    nodes_kept: int
    #: Subtree roots pruned without materialization.
    subtrees_skipped: int

    @property
    def kept_ratio(self) -> float:
        """Fraction of observed nodes kept (1.0 for unprojected loads)."""
        return self.nodes_kept / self.nodes_seen if self.nodes_seen else 0.0


class _Frame:
    """One open element during a projected parse."""

    __slots__ = ("tag", "chain", "mode", "committed")

    def __init__(self, tag: str, chain: tuple[str, ...],
                 mode: KeepDecision, committed: bool):
        self.tag = tag
        self.chain = chain
        self.mode = mode
        self.committed = committed


class _Loader:
    """Expat handler set feeding the one-pass encoder."""

    def __init__(self, keep: ChainKeep | None, strip_whitespace: bool):
        self._keep = keep
        self._strip = strip_whitespace
        self._builder = IndexedStoreBuilder()
        self._frames: list[_Frame] = []
        self._skip_depth = 0
        self._decisions: dict[tuple[str, ...], KeepDecision] = {}
        # One logical text run can arrive as several expat events
        # (chunked file parses flush expat's buffer at every Parse()
        # call); pieces accumulate here and flush as ONE text node at
        # the next element boundary, keeping chunked loads
        # byte-identical to whole-string parses.
        self._pending_text: list[str] = []
        self.nodes_seen = 0
        self.subtrees_skipped = 0

    # -- decision ------------------------------------------------------------

    def _decide(self, chain: tuple[str, ...]) -> KeepDecision:
        decision = self._decisions.get(chain)
        if decision is None:
            decision = self._keep.decide(chain)
            self._decisions[chain] = decision
        return decision

    def _commit_ancestors(self) -> None:
        """Flush speculative ancestors (upward closure, on the fly)."""
        start = len(self._frames)
        while start and not self._frames[start - 1].committed:
            start -= 1
        for frame in self._frames[start:]:
            frame.committed = True
            self._builder.start_element(frame.tag)

    # -- expat handlers ------------------------------------------------------

    def start_element(self, tag: str, attrs: dict) -> None:
        self._flush_text()
        self.nodes_seen += 1
        if self._skip_depth:
            self._skip_depth += 1
            return
        if self._keep is None:
            self._builder.start_element(tag)
            return
        parent_mode = self._frames[-1].mode if self._frames \
            else KeepDecision.EXPLORE
        if parent_mode is KeepDecision.SUBTREE:
            frame = _Frame(tag, (), KeepDecision.SUBTREE, True)
            self._builder.start_element(tag)
            self._frames.append(frame)
            return
        chain = self._frames[-1].chain + (tag,) if self._frames else (tag,)
        decision = self._decide(chain)
        if decision is KeepDecision.SKIP and len(chain) > 1:
            self.subtrees_skipped += 1
            self._skip_depth = 1
            return
        # The root is always kept (projection keeps the root even when
        # no chain mentions it), as are NODE/SUBTREE hits; EXPLORE
        # frames stay speculative until a kept descendant commits them.
        committed = decision in (KeepDecision.SUBTREE, KeepDecision.NODE) \
            or len(chain) == 1
        if committed:
            self._commit_ancestors()
            self._builder.start_element(tag)
        self._frames.append(_Frame(tag, chain, decision, committed))

    def end_element(self, tag: str) -> None:
        self._flush_text()
        if self._skip_depth:
            self._skip_depth -= 1
            return
        if self._keep is None:
            self._builder.end_element()
            return
        frame = self._frames.pop()
        if frame.committed:
            self._builder.end_element()

    def character_data(self, data: str) -> None:
        # Buffer only: text runs can't span element boundaries, and
        # skip state only changes at element events, so deciding at
        # flush time is always correct.
        self._pending_text.append(data)

    def _flush_text(self) -> None:
        """Emit the buffered text run as one node (if kept)."""
        if not self._pending_text:
            return
        data = "".join(self._pending_text)
        self._pending_text.clear()
        if self._strip and not data.strip():
            return
        if self._skip_depth:
            self.nodes_seen += 1
            return
        if self._builder.depth == 0 and not self._frames:
            # Text outside the root element (prolog/epilog noise).
            return
        self.nodes_seen += 1
        if self._keep is None:
            self._builder.text(data)
            return
        frame = self._frames[-1]
        if frame.mode is KeepDecision.SUBTREE:
            self._builder.text(data)
            return
        decision = self._decide(frame.chain + (_TEXT,))
        if decision in (KeepDecision.SUBTREE, KeepDecision.NODE):
            self._commit_ancestors()
            self._builder.text(data)

    def finish(self) -> LoadResult:
        self._flush_text()
        tree = self._builder.finish()
        kept = len(tree.store)
        return LoadResult(
            tree=tree,
            nodes_seen=self.nodes_seen,
            nodes_kept=kept,
            subtrees_skipped=self.subtrees_skipped,
        )


def _make_parser(loader: _Loader) -> expat.XMLParserType:
    parser = expat.ParserCreate()
    parser.buffer_text = True  # coalesce character-data events
    parser.StartElementHandler = loader.start_element
    parser.EndElementHandler = loader.end_element
    parser.CharacterDataHandler = loader.character_data
    return parser


def load_xml(text: str | bytes, keep: ChainKeep | None = None,
             strip_whitespace: bool = True) -> LoadResult:
    """Load an XML document string into an :class:`IndexedTree`.

    With ``keep`` the load is *projected*: the result is exactly
    ``project(parse(text), keep_set_for_chains(...))``, built without
    ever materializing the pruned subtrees.  ``strip_whitespace``
    mirrors :func:`repro.xmldm.parse.parse_xml` (whitespace-only text
    is formatting noise w.r.t. DTD validation).
    """
    loader = _Loader(keep, strip_whitespace)
    parser = _make_parser(loader)
    data = text.encode("utf-8") if isinstance(text, str) else text
    try:
        parser.Parse(data, True)
    except expat.ExpatError as error:
        raise XMLParseError(f"unparsable document: {error}") from error
    return loader.finish()


def load_path(path: str, keep: ChainKeep | None = None,
              strip_whitespace: bool = True,
              chunk_size: int = 1 << 16) -> LoadResult:
    """Stream a document from disk (never holds the text in memory)."""
    loader = _Loader(keep, strip_whitespace)
    parser = _make_parser(loader)
    try:
        with open(path, "rb") as handle:
            while True:
                chunk = handle.read(chunk_size)
                if not chunk:
                    parser.Parse(b"", True)
                    break
                parser.Parse(chunk, False)
    except expat.ExpatError as error:
        raise XMLParseError(f"unparsable document: {error}") from error
    return loader.finish()
