"""SQLite persistence of the interval-encoded node table.

One database per service registry (``ServeConfig.doc_store_path``)
holds every persisted document as rows of its node table, keyed by
``(doc, loc)`` where ``loc`` is the location id *and* the pre rank
(documents are compacted to canonical pre-order before saving).  A
restarted service re-materializes a document with one ordered range
scan -- no XML re-parse, no tree walk: the pre/size/level/parent
columns are the encoding, and child lists rebuild in document order as
the rows stream in.  ``journal_mode=WAL`` keeps writers from blocking
the readers of other documents, and ``mmap_size`` lets SQLite serve
the scan from page-cache mappings.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass

from .encode import IndexedStore, IndexedTree

_SCHEMA = """
CREATE TABLE IF NOT EXISTS documents (
    doc            TEXT PRIMARY KEY,
    schema_digest  TEXT NOT NULL,
    nodes          INTEGER NOT NULL,
    nodes_seen     INTEGER NOT NULL,
    subtrees_skipped INTEGER NOT NULL,
    meta           TEXT NOT NULL DEFAULT '{}',
    created        REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    doc    TEXT NOT NULL,
    loc    INTEGER NOT NULL,
    parent INTEGER,
    level  INTEGER NOT NULL,
    size   INTEGER NOT NULL,
    tag    TEXT,
    text   TEXT,
    PRIMARY KEY (doc, loc)
) WITHOUT ROWID;
"""


@dataclass(frozen=True)
class StoredDocument:
    """Catalog row of one persisted document."""

    doc: str
    schema_digest: str
    nodes: int
    nodes_seen: int
    subtrees_skipped: int
    meta: dict


class DocumentBackend:
    """The node-table database behind a service's loaded documents.

    Thread-safe the same way :class:`repro.serve.store.VerdictStore`
    is: one connection guarded by a lock (callers run on the analysis
    worker thread; the lock covers stray callers).
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA mmap_size=268435456")
        # Shard workers share one file; a concurrent multi-100k-row
        # save must wait for the writer, not fail (same setting as the
        # verdict store).
        self._conn.execute("PRAGMA busy_timeout=10000")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        #: Documents served from the table without a re-parse.
        self.hits = 0
        #: Lookups that found no persisted document.
        self.misses = 0
        #: Documents written (or overwritten).
        self.saves = 0

    # -- write ---------------------------------------------------------------

    def save(self, doc: str, tree: IndexedTree, schema_digest: str,
             nodes_seen: int = 0, subtrees_skipped: int = 0,
             meta: dict | None = None) -> int:
        """Persist ``tree`` under ``doc`` (replacing any prior version).

        The tree is first compacted to canonical pre-order (location id
        == pre rank over the reachable nodes, root at location 0), so
        the row order *is* the document order and loading is a single
        range scan.  Returns the number of node rows written.
        """
        store = _compact(tree)
        rows = [
            (doc, loc, store._parent[loc], store._level[loc],
             store._size[loc], store._tags[loc], store._texts[loc])
            for loc in range(len(store._tags))
        ]
        with self._lock:
            with self._conn:  # one transaction: doc row + node rows
                self._conn.execute("DELETE FROM nodes WHERE doc = ?",
                                   (doc,))
                self._conn.execute(
                    "INSERT OR REPLACE INTO documents VALUES "
                    "(?, ?, ?, ?, ?, ?, strftime('%s', 'now'))",
                    (doc, schema_digest, len(rows),
                     nodes_seen or len(rows), subtrees_skipped,
                     json.dumps(meta or {})),
                )
                self._conn.executemany(
                    "INSERT INTO nodes VALUES (?, ?, ?, ?, ?, ?, ?)",
                    rows,
                )
        self.saves += 1
        return len(rows)

    def delete(self, doc: str) -> bool:
        """Drop a persisted document; returns whether it existed."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "DELETE FROM documents WHERE doc = ?", (doc,)
            )
            self._conn.execute("DELETE FROM nodes WHERE doc = ?", (doc,))
            return cursor.rowcount > 0

    # -- read ----------------------------------------------------------------

    def describe(self, doc: str) -> StoredDocument | None:
        """The catalog row of ``doc``, or None."""
        with self._lock:
            row = self._conn.execute(
                "SELECT doc, schema_digest, nodes, nodes_seen, "
                "subtrees_skipped, meta FROM documents WHERE doc = ?",
                (doc,),
            ).fetchone()
        if row is None:
            return None
        return StoredDocument(row[0], row[1], row[2], row[3], row[4],
                              json.loads(row[5]))

    def load(self, doc: str) -> tuple[IndexedTree, StoredDocument] | None:
        """Re-materialize ``doc`` from its node table, or None.

        One ordered scan rebuilds the columnar arrays directly; child
        lists fill in document order because the rows *are* pre-order.
        """
        described = self.describe(doc)
        if described is None:
            self.misses += 1
            return None
        store = IndexedStore()
        tags, texts, kids = store._tags, store._texts, store._kids
        parents, levels, sizes = store._parent, store._level, store._size
        with self._lock:
            rows = self._conn.execute(
                "SELECT loc, parent, level, size, tag, text FROM nodes "
                "WHERE doc = ? ORDER BY loc", (doc,),
            ).fetchall()
        for loc, parent, level, size, tag, text in rows:
            if loc != len(tags):
                raise ValueError(
                    f"corrupt node table for {doc!r}: row {loc} is not "
                    f"dense pre-order (expected {len(tags)})"
                )
            tags.append(tag)
            texts.append(text)
            kids.append([] if tag is not None else None)
            parents.append(parent)
            levels.append(level)
            sizes.append(size)
            store._pre.append(loc)
            store._order.append(loc)
            if parent is not None:
                kids[parent].append(loc)
        self.hits += 1
        return IndexedTree(store, 0), described

    def list_documents(self) -> list[StoredDocument]:
        """Catalog rows of every persisted document."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT doc, schema_digest, nodes, nodes_seen, "
                "subtrees_skipped, meta FROM documents ORDER BY doc"
            ).fetchall()
        return [StoredDocument(r[0], r[1], r[2], r[3], r[4],
                               json.loads(r[5])) for r in rows]

    def stats(self) -> dict:
        """Backend counters plus table sizes (one aggregate scan)."""
        with self._lock:
            documents, nodes = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(nodes), 0) FROM documents"
            ).fetchone()
        return {
            "path": self.path,
            "documents": documents,
            "nodes": nodes,
            "hits": self.hits,
            "misses": self.misses,
            "saves": self.saves,
        }

    def close(self) -> None:
        """Close the connection (further calls fail)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "DocumentBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _compact(tree: IndexedTree) -> IndexedStore:
    """A copy of ``tree`` in canonical pre-order (loc == pre rank,
    root at location 0 -- the invariant ``load`` rebuilds from).

    Freshly loaded/built trees are already canonical and are returned
    as-is; mutated trees (overflow nodes, garbage) are rebuilt so the
    persisted table stays dense.
    """
    store = tree.store
    store.reencode()
    n = len(store._tags)
    if store.encoded_count == n and tree.root == 0 \
            and store._order == list(range(n)):
        return store
    compacted = IndexedStore()
    mapping: dict[int, int] = {}
    for new_loc, loc in enumerate(store.descendants_or_self(tree.root)):
        mapping[loc] = new_loc
        tag = store._tags[loc]
        compacted._alloc(tag, store._texts[loc],
                         [] if tag is not None else None)
        compacted._pre[new_loc] = new_loc
        compacted._order.append(new_loc)
        parent = store._parent[loc]
        if parent is not None and parent in mapping:
            mapped = mapping[parent]
            compacted._parent[new_loc] = mapped
            compacted._kids[mapped].append(new_loc)
            compacted._level[new_loc] = compacted._level[mapped] + 1
    for loc in range(len(compacted._tags) - 1, -1, -1):
        kids = compacted._kids[loc]
        compacted._size[loc] = 1 + (
            sum(compacted._size[k] for k in kids) if kids else 0
        )
    return compacted
