"""Deprecated alias of the SQLite document store.

The node-table persistence now lives in :mod:`repro.storage` --
:class:`repro.storage.sqlite.SqliteDocumentStore` is the
implementation (one ordered range scan to re-materialize, compaction
to canonical pre-order on save, WAL/mmap pragmas via the shared
:func:`repro.storage.sqlite.connect` factory), and
:func:`repro.storage.open_store` is the URL-based way to open one.
:class:`DocumentBackend` is kept for one release as a byte-compatible
adapter; new code should open backends through store URLs.
"""

from __future__ import annotations

from ..storage.base import StoredDocument, compact_store as _compact
from ..storage.sqlite import SqliteDocumentStore

__all__ = ["DocumentBackend", "StoredDocument", "_compact"]


class DocumentBackend(SqliteDocumentStore):
    """The node-table database behind a service's loaded documents.

    Deprecated alias of
    :class:`repro.storage.sqlite.SqliteDocumentStore` (see the module
    docstring for where the implementation moved).
    """
