"""Per-axis accelerators over the interval encoding.

Every XPath axis of the fragment becomes array work on an
:class:`~repro.docstore.encode.IndexedStore` (the shape pioneered by
the XPath-accelerator encodings: each axis is a region of the pre/post
plane, here expressed through ``pre``/``size`` intervals):

=================== =====================================================
axis                accelerated form
=================== =====================================================
descendant(-or-self) the ``order`` slice ``(pre, pre + size)``; with a
                     name/text test, two bisects in the per-tag rank
                     index instead of visiting the span at all
child                the materialized child list, filtered inline
following-sibling /  a slice of the parent's child list
preceding-sibling
parent / ancestor    ``parent`` pointer chases (root-first for ancestor,
                     matching the generic evaluator's document order)
self                 an inline test
=================== =====================================================

The evaluator calls :func:`axis_step` through the store's
``axis_step`` method for *every* step over an indexed store and falls
back to the generic walk whenever this module returns None (unencoded
location, foreign store).  Results are guaranteed to equal the generic
evaluator's output, order included -- pinned by the axis-parity tests.
"""

from __future__ import annotations

from ..xquery.ast import (
    Axis,
    NameTest,
    NodeKindTest,
    NodeTest,
    TextTest,
    WildcardTest,
)
from .encode import UNENCODED, IndexedStore, Location


def _matches(store: IndexedStore, test: NodeTest, loc: Location) -> bool:
    tag = store._tags[loc]
    if isinstance(test, NameTest):
        return tag == test.name
    if isinstance(test, TextTest):
        return tag is None
    if isinstance(test, NodeKindTest):
        return True
    if isinstance(test, WildcardTest):
        return tag is not None
    raise ValueError(f"unknown node test {test!r}")


def _span_nodes(store: IndexedStore, test: NodeTest, lo: int, hi: int
                ) -> list[Location]:
    """Matching locations with pre rank in ``[lo, hi)``, document order."""
    order = store._order
    if isinstance(test, NameTest):
        return [order[rank]
                for rank in store.tag_ranks_in(test.name, lo, hi)]
    if isinstance(test, TextTest):
        return [order[rank] for rank in store.text_ranks_in(lo, hi)]
    if isinstance(test, NodeKindTest):
        return order[lo:hi]
    if isinstance(test, WildcardTest):
        tags = store._tags
        return [loc for loc in order[lo:hi] if tags[loc] is not None]
    raise ValueError(f"unknown node test {test!r}")


def descendant_child_step(store: IndexedStore, test: NodeTest,
                          loc: Location) -> list[Location] | None:
    """Accelerated ``descendant-or-self::node()/child::test`` from ``loc``.

    This is the shape the parser desugars ``//test`` into, and its
    output order is *not* document order: the outer loop visits the
    subtree in pre-order and concatenates each node's matching
    children, so a node's grandchildren come after all its children.
    The accelerated form selects the k matching strict descendants via
    the rank index and restores exactly that order with one stable sort
    on the parent's pre rank -- O(k log k) instead of visiting the
    whole span.
    """
    store.reencode()
    if not 0 <= loc < len(store._tags):
        return None
    rank = store._pre[loc]
    if rank == UNENCODED:
        return None
    matches = _span_nodes(store, test, rank + 1, rank + store._size[loc])
    pre, parent = store._pre, store._parent
    matches.sort(key=lambda m: pre[parent[m]])
    return matches


def axis_step(store: IndexedStore, axis: Axis, test: NodeTest,
              loc: Location) -> list[Location] | None:
    """One accelerated ``axis::test`` step from ``loc``.

    Returns None when the location cannot be served from the index
    (freshly constructed nodes, detached garbage) -- the evaluator
    falls back to the generic walk for exactly that context node.
    """
    store.reencode()
    if not 0 <= loc < len(store._tags):
        return None
    if axis is Axis.SELF:
        return [loc] if _matches(store, test, loc) else []
    if axis is Axis.CHILD:
        kids = store._kids[loc]
        if kids is None:
            return []
        return [k for k in kids if _matches(store, test, k)]
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        rank = store._pre[loc]
        if rank == UNENCODED:
            return None
        lo = rank if axis is Axis.DESCENDANT_OR_SELF else rank + 1
        return _span_nodes(store, test, lo, rank + store._size[loc])
    if axis is Axis.PARENT:
        parent = store._parent[loc]
        if parent is None:
            return []
        return [parent] if _matches(store, test, parent) else []
    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        chain: list[Location] = []
        current = store._parent[loc]
        while current is not None:
            chain.append(current)
            current = store._parent[current]
        chain.reverse()  # document order: root first
        if axis is Axis.ANCESTOR_OR_SELF:
            chain.append(loc)
        return [a for a in chain if _matches(store, test, a)]
    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        parent = store._parent[loc]
        if parent is None:
            return []
        kids = store._kids[parent]
        index = kids.index(loc)
        siblings = kids[index + 1:] \
            if axis is Axis.FOLLOWING_SIBLING else kids[:index]
        return [s for s in siblings if _matches(store, test, s)]
    return None
