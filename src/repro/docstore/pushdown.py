"""SQL pushdown: compile the supported XPath fragment onto the node
table.

The interval encoding exists precisely so that axis steps become range
predicates a database can answer.  This module is the bridge: it
recognizes the desugared core-AST shape of the supported fragment --
linear chains of ``self``/``child``/``descendant`` steps with name,
``text()``, ``node()`` and ``*`` tests, including the ``//tag``
desugaring the axis accelerators already fast-path -- and compiles it
into a :class:`~repro.storage.base.StepSpec` chain that every
:class:`~repro.storage.base.DocumentStore` backend answers *inside the
database* (:meth:`~repro.storage.base.DocumentStore.run_steps`), so
queries on persisted documents run without materializing the tree.

Queries outside the fragment (predicates, construction, ``let``,
upward or sibling axes) make :func:`compile_query` return ``None`` and
the caller falls back to materialize-then-evaluate; eligible queries
are answered byte-identically to the in-memory evaluator -- the
differential property suite (``tests/docstore/test_pushdown_property.py``)
drives fuzzer-generated documents and queries through both paths and
diffs the serialized answers.

:func:`run_steps_on_tree` is the in-memory reference implementation of
the step semantics (via the axis accelerators); the memory backend
answers ``run_steps`` through it, keeping the conformance suite
three-way.  :func:`serialize_rows` serializes an answer subtree
straight from its node rows -- byte-identical to
:func:`repro.xmldm.serialize.serialize` on the materialized tree -- so
even answer serialization needs no materialization.
"""

from __future__ import annotations

from ..storage.base import StepSpec, check_steps
from ..xquery.ast import (
    ROOT_VAR,
    Axis,
    For,
    NameTest,
    NodeKindTest,
    Query,
    Step,
    TextTest,
    WildcardTest,
    free_variables,
)
from ..xquery.parser import parse_query

#: Axes the pushdown fragment supports, mapped to step-spec names.
_AXIS_NAMES = {
    Axis.SELF: "self",
    Axis.CHILD: "child",
    Axis.DESCENDANT: "descendant",
    Axis.DESCENDANT_OR_SELF: "descendant-or-self",
}

#: Step-spec axis names mapped back to evaluator axes.
_AXIS_ENUMS = {name: axis for axis, name in _AXIS_NAMES.items()}


def _spec_for(step: Step) -> tuple[StepSpec | None, dict | None]:
    """The :class:`StepSpec` of one core-AST step, or ``(None, why)``
    when the axis or test falls outside the pushdown fragment.

    ``why`` is an ineligibility record -- a stable ``reason`` from
    :data:`repro.obs.plan.INELIGIBILITY_REASONS` plus the offending
    axis/test -- carried into the ``pushdown: ineligible`` plan
    decision."""
    axis = _AXIS_NAMES.get(step.axis)
    if axis is None:
        return None, {"reason": "unsupported-axis",
                      "axis": step.axis.name.lower().replace("_", "-")}
    test = step.test
    if isinstance(test, NameTest):
        return StepSpec(axis, "name", test.name), None
    if isinstance(test, TextTest):
        return StepSpec(axis, "text"), None
    if isinstance(test, NodeKindTest):
        return StepSpec(axis, "node"), None
    if isinstance(test, WildcardTest):
        return StepSpec(axis, "wildcard"), None
    return None, {"reason": "unsupported-test", "test": type(test).__name__}


def _fuse(specs: list[StepSpec]) -> list[StepSpec]:
    """Fuse ``descendant-or-self::node()`` + ``child::test`` pairs (the
    ``//test`` desugaring) into one ``descendant-child`` step.

    Semantically a no-op -- the two-step chain already orders matches
    by (parent pre, own pre) -- but it halves the SQL joins and maps
    onto :func:`repro.docstore.axes.descendant_child_step` in the
    in-memory reference.
    """
    fused: list[StepSpec] = []
    index = 0
    while index < len(specs):
        spec = specs[index]
        if (index + 1 < len(specs)
                and spec.axis == "descendant-or-self"
                and spec.test == "node" and spec.position is None
                and specs[index + 1].axis == "child"):
            follower = specs[index + 1]
            fused.append(StepSpec("descendant-child", follower.test,
                                  follower.name, follower.position))
            index += 2
            continue
        fused.append(spec)
        index += 1
    return fused


def compile_query_explain(
    query: Query | str,
) -> tuple[list[StepSpec] | None, dict | None]:
    """Compile a query and say *why* when compilation refuses.

    Returns ``(steps, None)`` for an eligible query and ``(None, why)``
    otherwise, where ``why`` carries a stable ``reason`` string from
    :data:`repro.obs.plan.INELIGIBILITY_REASONS` plus the offending AST
    node / axis / test -- exactly what the ``pushdown: ineligible``
    plan decision reports.
    """
    if isinstance(query, str):
        query = parse_query(query)
    specs: list[StepSpec] = []
    var = ROOT_VAR
    node = query
    while True:
        if isinstance(node, For):
            source, body = node.source, node.body
            if not isinstance(source, Step) or source.var != var:
                return None, {"reason": "non-step-source",
                              "node": type(source).__name__}
            if var in free_variables(body):
                # Not a linear chain: context var reused in the body.
                return None, {"reason": "context-reuse", "var": var}
            spec, why = _spec_for(source)
            if spec is None:
                return None, why
            specs.append(spec)
            var = node.var
            node = body
            continue
        if isinstance(node, Step):
            if node.var != var:
                return None, {"reason": "non-step-source",
                              "node": "Step"}
            spec, why = _spec_for(node)
            if spec is None:
                return None, why
            specs.append(spec)
            return _fuse(specs), None
        return None, {"reason": "non-step-tail",
                      "node": type(node).__name__}


def compile_query(query: Query | str) -> list[StepSpec] | None:
    """Compile a query into a pushdown step chain, or None.

    Accepts surface text or a parsed core query and recognizes the
    desugared linear path shape: nested ``For`` loops whose sources are
    single steps off the previous variable, ending in a final step --
    exactly what the parser emits for absolute paths and ``//`` steps.
    Anything else (predicates, element construction, ``let``,
    conditionals, upward or sibling axes, variable reuse) returns
    ``None`` and the caller falls back to materialize-then-evaluate;
    :func:`compile_query_explain` additionally says why.
    """
    steps, _why = compile_query_explain(query)
    return steps


def step_label(spec: StepSpec) -> str:
    """One compiled step as a compact plan label.

    ``axis::test`` with the name test's tag in parentheses and the
    positional filter in brackets, e.g. ``descendant-child::name(title)``
    -- the rendering plans and the ``repro explain`` CLI use for the
    compiled chain.
    """
    label = f"{spec.axis}::{spec.test}"
    if spec.name is not None:
        label += f"({spec.name})"
    if spec.position is not None:
        label += f"[{spec.position}]"
    return label


def _test_object(step: StepSpec):
    """The evaluator node-test object of one step spec."""
    from ..xquery.ast import NODE_TEST, TEXT_TEST, WILDCARD_TEST

    if step.test == "name":
        return NameTest(step.name)
    if step.test == "text":
        return TEXT_TEST
    if step.test == "wildcard":
        return WILDCARD_TEST
    return NODE_TEST


def run_steps_on_tree(tree, steps, *, dedup: bool = False) -> list[int]:
    """The in-memory reference for ``run_steps``: answer a step chain
    on an :class:`~repro.docstore.encode.IndexedTree` through the axis
    accelerators.

    Nested-loop sequence semantics, exactly like the evaluator on the
    desugared query: per-context matches in document order,
    concatenated in context order, duplicates preserved; ``position``
    keeps each context's n-th match; ``dedup`` collapses to distinct
    locations in document order.  The memory backend answers
    ``run_steps`` through this, and the differential suite uses it as
    one of the three compared evaluators.
    """
    check_steps(steps)
    store = tree.store
    context: list[int] = [tree.root]
    for step in steps:
        test = _test_object(step)
        out: list[int] = []
        for loc in context:
            if step.axis == "descendant-child":
                matches = store.descendant_child_step(test, loc)
            else:
                matches = store.axis_step(_AXIS_ENUMS[step.axis], test,
                                          loc)
            if matches is None:
                raise ValueError(
                    f"location {loc} cannot be accelerated (unencoded "
                    "store?); run_steps needs a canonical tree"
                )
            if step.position is not None:
                matches = matches[step.position - 1:step.position]
            out.extend(matches)
        context = out
    if dedup:
        store.reencode()
        pre = store._pre
        context = sorted(set(context), key=lambda answer: pre[answer])
    return context


def _escape(text: str) -> str:
    """The serializer's text escaping (kept byte-identical)."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


def serialize_rows(rows) -> str:
    """Serialize one subtree straight from its pre-order node rows.

    ``rows`` is a contiguous ``subtree_rows`` slice; the ``size``
    column delimits each element's children, so one forward pass with
    an end-offset stack rebuilds the markup.  Output is byte-identical
    to :func:`repro.xmldm.serialize.serialize` (compact form) on the
    materialized tree -- pinned by the differential property suite.
    """
    out: list[str] = []
    stack: list[tuple[int, str]] = []  # (end-exclusive loc, tag)
    for loc, _parent, _level, size, tag, text in rows:
        while stack and loc >= stack[-1][0]:
            out.append(f"</{stack.pop()[1]}>")
        if tag is None:
            out.append(_escape(text))
        elif size == 1:
            out.append(f"<{tag}/>")
        else:
            out.append(f"<{tag}>")
            stack.append((loc + size, tag))
    while stack:
        out.append(f"</{stack.pop()[1]}>")
    return "".join(out)


def serialize_answers(documents, doc: str, locs,
                      limit: int | None = None) -> list[str]:
    """Serialize answer locations from a persisted document.

    One ``subtree_rows`` range scan per answer, serialized by
    :func:`serialize_rows` -- the document itself is never
    materialized.  ``limit`` caps how many answers are serialized
    (the caller still knows the full count from the location list).
    """
    take = locs if limit is None else locs[:limit]
    return [serialize_rows(documents.subtree_rows(doc, loc))
            for loc in take]
