"""Interval-encoded node table: the indexed document representation.

Every node gets a *location* (a dense integer id) plus an interval
encoding maintained as columnar arrays:

* ``pre``   -- pre-order rank (the position in document order);
* ``size``  -- subtree size including the node itself, so the strict
  descendants of ``l`` are exactly the pre ranks in
  ``(pre(l), pre(l) + size(l))`` -- every downward axis is a range scan;
* ``level`` -- depth below the root;
* ``parent``-- parent location (upward axes are pointer chases).

The post-order rank is derived, not stored: ``post = pre + size - 1 -
level`` (the standard identity of the pre/post plane used by XPath
accelerators).  The encoding is built in one streaming pass by
:class:`IndexedStoreBuilder` (also the sink of the projected bulk
loader) and persisted row-per-node by
:class:`~repro.docstore.backend.DocumentBackend`.

:class:`IndexedStore` is duck-type compatible with the Section-2
:class:`~repro.xmldm.store.Store` -- ``typ``/``node_chain``/``children``
/``parent``/mutation/``copy_subtree`` all behave identically -- so the
query evaluator, the update pipeline (PUL checks and application), the
serializer, and value equivalence run on it unchanged.  On top of the
shared surface it adds:

* ``axis_step`` -- the evaluator's transparent fast path (see
  :mod:`~repro.docstore.axes`);
* mutation tracking with *span-local re-encoding*: updates dirty the
  smallest enclosing encoded spans, and the next accelerated read
  re-walks only those spans (plus an O(tail) integer shift when a span
  changed size) instead of re-encoding the whole document.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

from ..schema.regex import TEXT_SYMBOL
from ..xmldm.store import ElementNode, StoreError, TextNode

Location = int

#: Sentinel pre rank of nodes outside the encoded document (freshly
#: constructed query/update results, detached garbage).
UNENCODED = -1


class IndexedStore:
    """An interval-encoded store, API-compatible with ``xmldm.Store``.

    Locations are dense ids assigned in pre-order at build time and
    stable across mutations (the interval index re-encodes *around*
    them).  Nodes allocated after the build (constructed query results,
    update copies) live past the encoded prefix with ``pre ==
    UNENCODED`` until a re-encoded span adopts them.
    """

    def __init__(self) -> None:
        # Node columns (authoritative).
        self._tags: list[str | None] = []     # None -> text node
        self._texts: list[str | None] = []    # None -> element node
        self._kids: list[list[Location] | None] = []
        self._parent: list[Location | None] = []
        # Interval index (valid when _dirty is empty).
        self._pre: list[int] = []
        self._size: list[int] = []
        self._level: list[int] = []
        self._order: list[Location] = []      # pre rank -> location
        self._dirty: set[Location] = set()
        # Lazy per-tag rank index for accelerated name tests.
        self._tag_ranks: dict[str, list[int]] | None = None
        self._text_ranks: list[int] | None = None
        #: Count of span-local re-encodes performed so far.
        self.spans_reencoded = 0
        #: Locations re-walked by span re-encodes (cost accounting).
        self.nodes_reencoded = 0

    # -- allocation ----------------------------------------------------------

    def _alloc(self, tag: str | None, text: str | None,
               kids: list[Location] | None) -> Location:
        loc = len(self._tags)
        self._tags.append(tag)
        self._texts.append(text)
        self._kids.append(kids)
        self._parent.append(None)
        self._pre.append(UNENCODED)
        self._size.append(1)
        self._level.append(0)
        return loc

    def new_element(self, tag: str, children: list[Location] | None = None
                    ) -> Location:
        """Allocate an element node (unencoded until a span adopts it)."""
        kids = list(children) if children else []
        loc = self._alloc(tag, None, kids)
        for child in kids:
            self._parent[child] = loc
        return loc

    def new_text(self, text: str) -> Location:
        """Allocate a text node (unencoded until a span adopts it)."""
        return self._alloc(None, text, None)

    # -- accessors -------------------------------------------------------

    def node(self, loc: Location):
        """A read-only snapshot node (``ElementNode``/``TextNode``).

        Mutations must go through the store methods; the returned
        object is a copy, not live storage.
        """
        tag = self._check(loc)
        if tag is None:
            return TextNode(self._texts[loc])
        return ElementNode(tag, list(self._kids[loc]))

    def _check(self, loc: Location) -> str | None:
        if not 0 <= loc < len(self._tags):
            raise StoreError(f"unknown location {loc}")
        return self._tags[loc]

    def __contains__(self, loc: Location) -> bool:
        return 0 <= loc < len(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def locations(self):
        """All allocated locations (encoded or not), ascending."""
        return iter(range(len(self._tags)))

    def typ(self, loc: Location) -> str:
        """``typ(l)``: the tag, or the text symbol for text nodes."""
        tag = self._check(loc)
        return tag if tag is not None else TEXT_SYMBOL

    def is_element(self, loc: Location) -> bool:
        """True when ``loc`` holds an element node."""
        return self._check(loc) is not None

    def is_text(self, loc: Location) -> bool:
        """True when ``loc`` holds a text node."""
        return self._check(loc) is None

    def tag(self, loc: Location) -> str:
        """Tag of an element node (raises for text nodes)."""
        tag = self._check(loc)
        if tag is None:
            raise StoreError(f"location {loc} is a text node")
        return tag

    def text(self, loc: Location) -> str:
        """String value of a text node (raises for elements)."""
        if self._check(loc) is not None:
            raise StoreError(f"location {loc} is an element node")
        return self._texts[loc]

    def children(self, loc: Location) -> list[Location]:
        """Ordered child locations (empty for text nodes)."""
        self._check(loc)
        kids = self._kids[loc]
        return list(kids) if kids is not None else []

    def parent(self, loc: Location) -> Location | None:
        """Parent location, or None for roots / detached nodes."""
        self._check(loc)
        return self._parent[loc]

    def node_chain(self, loc: Location) -> tuple[str, ...]:
        """The chain ``c^sigma_l`` of Definition 2.2 (root-most first)."""
        parts: list[str] = []
        current: Location | None = loc
        while current is not None:
            parts.append(self.typ(current))
            current = self._parent[current]
        parts.reverse()
        return tuple(parts)

    def depth(self, loc: Location) -> int:
        """Number of ancestors of ``loc``."""
        self._check(loc)
        if not self._dirty and self._pre[loc] != UNENCODED:
            return self._level[loc]
        count = 0
        current = self._parent[loc]
        while current is not None:
            count += 1
            current = self._parent[current]
        return count

    # -- interval index ------------------------------------------------------

    def pre(self, loc: Location) -> int:
        """Pre-order rank, or ``UNENCODED`` for nodes outside the index."""
        self._check(loc)
        self.reencode()
        return self._pre[loc]

    def post(self, loc: Location) -> int:
        """Post-order rank (derived: ``pre + size - 1 - level``)."""
        self._check(loc)
        self.reencode()
        if self._pre[loc] == UNENCODED:
            raise StoreError(f"location {loc} is not encoded")
        return self._pre[loc] + self._size[loc] - 1 - self._level[loc]

    def subtree_size(self, loc: Location) -> int:
        """Encoded subtree size including ``loc`` itself."""
        self._check(loc)
        self.reencode()
        if self._pre[loc] == UNENCODED:
            raise StoreError(f"location {loc} is not encoded")
        return self._size[loc]

    @property
    def encoded_count(self) -> int:
        """Number of locations currently in the interval index."""
        return len(self._order)

    def axis_step(self, axis, test, loc: Location) -> list[Location] | None:
        """Accelerated axis+test evaluation (the evaluator fast path).

        Returns the matching locations in the same order the generic
        evaluator would produce, or None when this location cannot be
        accelerated (the caller then falls back to the generic walk).
        """
        from .axes import axis_step as _axis_step

        return _axis_step(self, axis, test, loc)

    def descendant_child_step(self, test, loc: Location
                              ) -> list[Location] | None:
        """Accelerated ``//test`` shape (see
        :func:`repro.docstore.axes.descendant_child_step`)."""
        from .axes import descendant_child_step as _dc_step

        return _dc_step(self, test, loc)

    def _ranks(self) -> tuple[dict[str, list[int]], list[int]]:
        """Lazy (tag -> sorted pre ranks, text pre ranks) index."""
        if self._tag_ranks is None or self._text_ranks is None:
            tag_ranks: dict[str, list[int]] = {}
            text_ranks: list[int] = []
            tags = self._tags
            for rank, loc in enumerate(self._order):
                tag = tags[loc]
                if tag is None:
                    text_ranks.append(rank)
                else:
                    tag_ranks.setdefault(tag, []).append(rank)
            self._tag_ranks = tag_ranks
            self._text_ranks = text_ranks
        return self._tag_ranks, self._text_ranks

    def tag_ranks_in(self, tag: str, lo: int, hi: int) -> list[int]:
        """Pre ranks of ``tag`` elements in the half-open span
        ``[lo, hi)`` -- one bisect pair, the descendant-axis fast path."""
        ranks, _ = self._ranks()
        positions = ranks.get(tag)
        if not positions:
            return []
        return positions[bisect_left(positions, lo):
                         bisect_right(positions, hi - 1)]

    def text_ranks_in(self, lo: int, hi: int) -> list[int]:
        """Pre ranks of text nodes in ``[lo, hi)``."""
        _, positions = self._ranks()
        return positions[bisect_left(positions, lo):
                         bisect_right(positions, hi - 1)]

    # -- traversal -------------------------------------------------------

    def descendants(self, loc: Location):
        """Strict descendants in document order (an ``order`` slice when
        the location is encoded, a generic walk otherwise)."""
        self._check(loc)
        self.reencode()
        rank = self._pre[loc]
        if rank != UNENCODED:
            return iter(self._order[rank + 1:rank + self._size[loc]])
        return self._walk(loc, include_self=False)

    def descendants_or_self(self, loc: Location):
        """``loc`` followed by its descendants in document order."""
        self._check(loc)
        self.reencode()
        rank = self._pre[loc]
        if rank != UNENCODED:
            return iter(self._order[rank:rank + self._size[loc]])
        return self._walk(loc, include_self=True)

    def _walk(self, loc: Location, include_self: bool):
        if include_self:
            yield loc
        kids = self._kids[loc]
        stack = list(reversed(kids)) if kids else []
        while stack:
            current = stack.pop()
            yield current
            kids = self._kids[current]
            if kids:
                stack.extend(reversed(kids))

    def ancestors(self, loc: Location):
        """Strict ancestors, nearest first."""
        self._check(loc)
        current = self._parent[loc]
        while current is not None:
            yield current
            current = self._parent[current]

    def siblings_after(self, loc: Location) -> list[Location]:
        """Following siblings in document order."""
        parent = self.parent(loc)
        if parent is None:
            return []
        kids = self._kids[parent]
        index = kids.index(loc)
        return list(kids[index + 1:])

    def siblings_before(self, loc: Location) -> list[Location]:
        """Preceding siblings in document order."""
        parent = self.parent(loc)
        if parent is None:
            return []
        kids = self._kids[parent]
        index = kids.index(loc)
        return list(kids[:index])

    # -- mutation (used by update application) -------------------------------

    def replace_children(self, loc: Location, children: list[Location]
                         ) -> None:
        """Overwrite the child list of an element node.

        Marks ``loc`` dirty: its enclosing span re-encodes lazily on
        the next accelerated read.
        """
        if self._check(loc) is None:
            raise StoreError(f"location {loc} is a text node")
        for old in self._kids[loc]:
            if self._parent[old] == loc:
                self._parent[old] = None
        self._kids[loc] = list(children)
        for child in self._kids[loc]:
            self._parent[child] = loc
        self._dirty.add(loc)

    def rename(self, loc: Location, tag: str) -> None:
        """Rename an element node (structure unchanged; only the tag
        index is invalidated)."""
        if self._check(loc) is None:
            raise StoreError(f"cannot rename text node {loc}")
        self._tags[loc] = tag
        self._tag_ranks = None

    def detach(self, loc: Location) -> None:
        """Remove ``loc`` from its parent's child list (node stays
        allocated, like the dict store's garbage)."""
        self._check(loc)
        parent = self._parent[loc]
        if parent is None:
            return
        self._kids[parent].remove(loc)
        self._parent[loc] = None
        self._dirty.add(parent)

    # -- copying ---------------------------------------------------------

    def copy_subtree(self, source, loc: Location) -> Location:
        """Deep-copy ``source @ loc`` into this store; returns the new
        root (fresh, unencoded locations -- W3C copy semantics)."""
        if source.is_text(loc):
            return self.new_text(source.text(loc))
        # Iterative post-order copy (documents can be deep).
        stack: list[tuple[Location, list[Location], int]] = [
            (loc, source.children(loc), 0)
        ]
        copies: list[list[Location]] = [[]]
        while stack:
            node, kids, next_child = stack.pop()
            if next_child < len(kids):
                stack.append((node, kids, next_child + 1))
                child = kids[next_child]
                if source.is_text(child):
                    copies[-1].append(self.new_text(source.text(child)))
                else:
                    stack.append((child, source.children(child), 0))
                    copies.append([])
            else:
                done = self.new_element(source.tag(node), copies.pop())
                if copies:
                    copies[-1].append(done)
                else:
                    return done
        raise AssertionError("unreachable")  # pragma: no cover

    def clone(self) -> "IndexedStore":
        """An independent deep copy (same locations, same encoding)."""
        other = IndexedStore()
        other._tags = list(self._tags)
        other._texts = list(self._texts)
        other._kids = [list(k) if k is not None else None
                       for k in self._kids]
        other._parent = list(self._parent)
        other._pre = list(self._pre)
        other._size = list(self._size)
        other._level = list(self._level)
        other._order = list(self._order)
        other._dirty = set(self._dirty)
        return other

    # -- re-encoding ---------------------------------------------------------

    def reencode(self) -> int:
        """Re-encode every dirty span; returns the number of spans
        re-walked.

        Each mutated location is folded into its smallest enclosing
        encoded, attached span; the span's slice of the pre-order is
        re-walked (adopting new nodes, dropping removed ones) and, when
        the span changed size, the tail ranks shift by the delta and
        the ancestors' sizes adjust -- integer work only, no tree walk
        outside the touched spans.
        """
        if not self._dirty:
            return 0
        if not self._order:
            self._dirty.clear()
            return 0
        root = self._order[0]
        anchors: set[Location] = set()
        for loc in self._dirty:
            anchor = self._anchor(loc, root)
            if anchor is not None:
                anchors.add(anchor)
        self._dirty.clear()
        # Drop anchors covered by another anchor's subtree.
        maximal = [a for a in anchors
                   if not self._has_ancestor_in(a, anchors)]
        for anchor in maximal:
            if not self._reencode_span(anchor):
                # A cross-span node move left this anchor's recorded
                # rank inconsistent: rebuild everything from the root
                # (rare; correctness net, not the normal path).
                self._full_reencode(root)
                break
        self.spans_reencoded += len(maximal)
        self._tag_ranks = None
        self._text_ranks = None
        return len(maximal)

    def _anchor(self, loc: Location, root: Location) -> Location | None:
        """The span to re-encode for one dirty location.

        Climbs to the root and anchors at the nearest encoded
        ancestor-or-self of the *topmost dirty* node on the path --
        anchoring below a dirty ancestor could trust the stale rank of
        a node that moved subtrees.  Returns None for detached garbage
        (a re-attachment always dirties the attaching ancestor, so the
        subtree is covered from above when it matters).
        """
        path: list[Location] = []
        current: Location | None = loc
        while current is not None:
            path.append(current)
            if current == root:
                break
            current = self._parent[current]
        else:
            return None  # never reached the root: detached
        start = 0
        for index in range(len(path) - 1, -1, -1):
            if path[index] in self._dirty:
                start = index
                break
        for candidate in path[start:]:
            if self._pre[candidate] != UNENCODED:
                return candidate
        return root

    def _has_ancestor_in(self, loc: Location, pool: set[Location]) -> bool:
        current = self._parent[loc]
        while current is not None:
            if current in pool:
                return True
            current = self._parent[current]
        return False

    def _walk_span(self, start: Location, base_rank: int,
                   base_level: int, guard_lo: int, guard_hi: int
                   ) -> tuple[list[Location], bool]:
        """Pre-order walk of ``start``'s live subtree, assigning
        ``pre``/``level``/``size``.

        ``guard_lo:guard_hi`` is the old rank region being replaced:
        encountering a node whose current rank lies *outside* it means
        a subtree moved in from another span -- the walk reports that
        (second return value) so the caller can fall back to a full
        rebuild instead of leaving the node's stale duplicate entries
        in the order (where a later tail shift would corrupt its fresh
        ranks).
        """
        span: list[Location] = []
        cross_move = False
        stack: list[tuple[Location, int]] = [(start, base_level)]
        while stack:
            loc, level = stack.pop()
            old_rank = self._pre[loc]
            if old_rank != UNENCODED and \
                    not guard_lo <= old_rank < guard_hi:
                cross_move = True
            self._pre[loc] = base_rank + len(span)
            self._level[loc] = level
            span.append(loc)
            kids = self._kids[loc]
            if kids:
                stack.extend((k, level + 1) for k in reversed(kids))
        # Sizes bottom-up (descendants appear after their parent).
        for loc in reversed(span):
            kids = self._kids[loc]
            self._size[loc] = 1 + (
                sum(self._size[k] for k in kids) if kids else 0
            )
        self.nodes_reencoded += len(span)
        return span, cross_move

    def _reencode_span(self, anchor: Location) -> bool:
        """Re-walk ``anchor``'s subtree into its slice of the order.

        Returns False when the anchor's recorded rank is inconsistent
        or a node moved in from another span (the caller then falls
        back to a full re-encode).
        """
        rank = self._pre[anchor]
        if rank == UNENCODED or rank >= len(self._order) \
                or self._order[rank] != anchor:
            return False
        old_size = self._size[anchor]
        old_span = self._order[rank:rank + old_size]
        new_span, cross_move = self._walk_span(
            anchor, rank, self._level[anchor], rank, rank + old_size
        )
        if cross_move:
            return False
        delta = len(new_span) - old_size
        self._order[rank:rank + old_size] = new_span
        if delta:
            for tail in range(rank + len(new_span), len(self._order)):
                self._pre[self._order[tail]] = tail
            current = self._parent[anchor]
            while current is not None:
                self._size[current] += delta
                current = self._parent[current]
        # Invalidate ranks of nodes that left the span (detached or
        # moved): anything whose recorded rank no longer points at it.
        for loc in old_span:
            position = self._pre[loc]
            if position == UNENCODED or position >= len(self._order) \
                    or self._order[position] != loc:
                self._pre[loc] = UNENCODED
        return True

    def _full_reencode(self, root: Location) -> None:
        """Rebuild the whole interval index from the root."""
        for loc in range(len(self._pre)):
            self._pre[loc] = UNENCODED
        self._order, _ = self._walk_span(root, 0, 0, 0, 0)


@dataclass
class IndexedTree:
    """A tree over an :class:`IndexedStore` (mirrors ``xmldm.Tree``)."""

    store: IndexedStore
    root: Location

    __slots__ = ("store", "root")

    def size(self) -> int:
        """Number of nodes connected to the root."""
        store = self.store
        store.reencode()
        if store._pre[self.root] != UNENCODED:
            return store._size[self.root]
        return sum(1 for _ in store.descendants_or_self(self.root))

    def clone(self) -> "IndexedTree":
        """An independent deep copy of store and root."""
        return IndexedTree(self.store.clone(), self.root)


class IndexedStoreBuilder:
    """One-streaming-pass encoder: event in, interval encoding out.

    Drive with ``start_element``/``text``/``end_element`` in document
    order and call :meth:`finish`.  Locations are assigned in pre-order
    at ``start_element`` time, so location id == pre rank on a freshly
    built store; sizes are filled in as elements close.  This is the
    shared sink of the bulk loader, the dict-store migration, and the
    persistence backend.
    """

    def __init__(self) -> None:
        self._store = IndexedStore()
        self._stack: list[Location] = []
        self._root: Location | None = None

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack)

    @property
    def count(self) -> int:
        """Nodes emitted so far."""
        return len(self._store._tags)

    def _attach(self, loc: Location) -> None:
        store = self._store
        store._pre[loc] = loc
        store._order.append(loc)
        store._level[loc] = len(self._stack)
        if self._stack:
            parent = self._stack[-1]
            store._parent[loc] = parent
            store._kids[parent].append(loc)
        elif self._root is None:
            self._root = loc
        else:
            raise ValueError("document has more than one root")

    def start_element(self, tag: str) -> Location:
        """Open an element; returns its location."""
        loc = self._store._alloc(tag, None, [])
        self._attach(loc)
        self._stack.append(loc)
        return loc

    def text(self, value: str) -> Location:
        """Emit a text node under the current element."""
        if not self._stack:
            raise ValueError("text outside the document element")
        loc = self._store._alloc(None, value, None)
        self._attach(loc)
        return loc

    def end_element(self) -> Location:
        """Close the current element (its subtree size is now known)."""
        loc = self._stack.pop()
        self._store._size[loc] = len(self._store._tags) - loc
        return loc

    def finish(self) -> IndexedTree:
        """Seal the store and return the built tree."""
        if self._stack:
            raise ValueError(f"{len(self._stack)} elements still open")
        if self._root is None:
            raise ValueError("empty document")
        return IndexedTree(self._store, self._root)
