"""Built-in schemas used by the paper's examples and experiments.

* :func:`xmark_dtd` -- the XMark auction DTD (Schmidt et al., VLDB 2002),
  with attributes removed, matching the paper's benchmark rewriting
  (Section 6.2 removes attribute use).  Its recursive component is the
  ``description`` clique ``{text, bold, keyword, emph, parlist, listitem}``.
* :func:`bib_dtd` -- the bibliographic DTD of the XQuery Use Cases [1],
  used for the paper's q2/u2 motivating example.
* :func:`paper_doc_dtd` -- the tiny ``{doc <- (a|b)*, a <- c, b <- c}``
  DTD of Figure 1 / the q1-u1 example.
* :func:`paper_d1_dtd` -- the recursive DTD ``d1`` of Section 5.
"""

from __future__ import annotations

from functools import lru_cache

from .dtd import DTD

_XMARK_MODELS: dict[str, str] = {
    # Root and top-level structure.
    "site": "(regions, categories, catgraph, people, open_auctions, "
            "closed_auctions)",
    # Categories.
    "categories": "(category+)",
    "category": "(name, description)",
    "catgraph": "(edge*)",
    "edge": "EMPTY",
    # Regions: six continents of items.
    "regions": "(africa, asia, australia, europe, namerica, samerica)",
    "africa": "(item*)",
    "asia": "(item*)",
    "australia": "(item*)",
    "europe": "(item*)",
    "namerica": "(item*)",
    "samerica": "(item*)",
    "item": "(location, quantity, name, payment, description, shipping, "
            "incategory+, mailbox)",
    "location": "(#PCDATA)",
    "quantity": "(#PCDATA)",
    "payment": "(#PCDATA)",
    "shipping": "(#PCDATA)",
    "incategory": "EMPTY",
    "mailbox": "(mail*)",
    "mail": "(from, to, date, text)",
    "from": "(#PCDATA)",
    "to": "(#PCDATA)",
    "date": "(#PCDATA)",
    # People.
    "people": "(person*)",
    "person": "(name, emailaddress, phone?, address?, homepage?, "
              "creditcard?, profile?, watches?)",
    "name": "(#PCDATA)",
    "emailaddress": "(#PCDATA)",
    "phone": "(#PCDATA)",
    "homepage": "(#PCDATA)",
    "creditcard": "(#PCDATA)",
    "address": "(street, city, country, province?, zipcode)",
    "street": "(#PCDATA)",
    "city": "(#PCDATA)",
    "country": "(#PCDATA)",
    "province": "(#PCDATA)",
    "zipcode": "(#PCDATA)",
    "profile": "(interest*, education?, gender?, business, age?)",
    "interest": "EMPTY",
    "education": "(#PCDATA)",
    "gender": "(#PCDATA)",
    "business": "(#PCDATA)",
    "age": "(#PCDATA)",
    "watches": "(watch*)",
    "watch": "EMPTY",
    # Open auctions.
    "open_auctions": "(open_auction*)",
    "open_auction": "(initial, reserve?, bidder*, current, privacy?, "
                    "itemref, seller, annotation, quantity, type, interval)",
    "initial": "(#PCDATA)",
    "reserve": "(#PCDATA)",
    "bidder": "(date, time, personref, increase)",
    "time": "(#PCDATA)",
    "personref": "EMPTY",
    "increase": "(#PCDATA)",
    "current": "(#PCDATA)",
    "privacy": "(#PCDATA)",
    "itemref": "EMPTY",
    "seller": "EMPTY",
    "annotation": "(author, description?, happiness)",
    "author": "EMPTY",
    "happiness": "(#PCDATA)",
    "type": "(#PCDATA)",
    "interval": "(start, end)",
    "start": "(#PCDATA)",
    "end": "(#PCDATA)",
    # Closed auctions.
    "closed_auctions": "(closed_auction*)",
    "closed_auction": "(seller, buyer, itemref, price, date, quantity, "
                      "type, annotation)",
    "buyer": "EMPTY",
    "price": "(#PCDATA)",
    # The mutually recursive description component.
    "description": "(text | parlist)",
    "text": "(#PCDATA | bold | keyword | emph)*",
    "bold": "(#PCDATA | bold | keyword | emph)*",
    "keyword": "(#PCDATA | bold | keyword | emph)*",
    "emph": "(#PCDATA | bold | keyword | emph)*",
    "parlist": "(listitem*)",
    "listitem": "(text | parlist)*",
}

_BIB_MODELS: dict[str, str] = {
    "bib": "(book*)",
    "book": "(title, (author+ | editor+), publisher, price)",
    "title": "(#PCDATA)",
    "author": "(last, first)",
    "editor": "(last, first, affiliation)",
    "last": "(#PCDATA)",
    "first": "(#PCDATA)",
    "affiliation": "(#PCDATA)",
    "publisher": "(#PCDATA)",
    "price": "(#PCDATA)",
}


@lru_cache(maxsize=None)
def xmark_dtd() -> DTD:
    """The XMark auction DTD, attribute-free (|d| = 77)."""
    return DTD.from_dict("site", _XMARK_MODELS)


@lru_cache(maxsize=None)
def bib_dtd() -> DTD:
    """The XQuery Use Cases bibliographic DTD."""
    return DTD.from_dict("bib", _BIB_MODELS)


@lru_cache(maxsize=None)
def paper_doc_dtd() -> DTD:
    """Figure 1 / q1-u1 DTD: ``{doc <- (a|b)*, a <- c, b <- c}``."""
    return DTD.from_dict(
        "doc",
        {"doc": "(a | b)*", "a": "c", "b": "c", "c": "EMPTY"},
    )


@lru_cache(maxsize=None)
def paper_d1_dtd() -> DTD:
    """Section 5 recursive DTD d1.

    ``r <- a``, ``b, c, e <- f``, ``a <- (b, c, e)*``, ``f <- (a, g)``.
    """
    return DTD.from_dict(
        "r",
        {
            "r": "a",
            "a": "(b, c, e)*",
            "b": "f",
            "c": "f",
            "e": "f",
            "f": "(a, g)",
            "g": "EMPTY",
        },
    )


@lru_cache(maxsize=None)
def paper_sibling_dtd() -> DTD:
    """Section 5 sibling-axis schema ``{a<-(b,f*), b<-(b|c)*, f<-(e,g)}``."""
    return DTD.from_dict(
        "a",
        {
            "a": "(b, f*)",
            "b": "(b | c)*",
            "c": "EMPTY",
            "f": "(e, g)",
            "e": "EMPTY",
            "g": "EMPTY",
        },
    )
