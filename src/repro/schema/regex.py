"""Regular expressions over DTD content models.

A DTD maps each element tag to a regular expression over ``Sigma + {#S}``
where ``#S`` stands for the string (text) type (written ``S`` in the paper,
``#PCDATA`` in DTD syntax).  This module provides the regex AST, a parser
for DTD content-model syntax, and the structural analyses the chain system
needs:

* ``nullable(r)`` -- does ``r`` accept the empty word;
* ``occurring(r)`` -- symbols appearing in at least one word of ``L(r)``;
* ``order_relation(r)`` -- the paper's ``<r`` relation (Section 3.1):
  pairs ``(a, b)`` such that some word of ``L(r)`` contains an ``a``
  strictly before a ``b``;
* ``shortest_word(r)`` -- a minimum-length word, used by the document
  generator to terminate recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..util import slots_getstate, slots_setstate

#: The pseudo-symbol for text content (the paper's ``S``).
TEXT_SYMBOL = "#S"


class RegexError(ValueError):
    """Raised for malformed content-model expressions."""


@dataclass(frozen=True)
class Regex:
    """Base class for content-model regex nodes."""

    __slots__ = ()
    __getstate__ = slots_getstate
    __setstate__ = slots_setstate


@dataclass(frozen=True)
class Epsilon(Regex):
    """The empty word (DTD ``EMPTY`` content)."""

    __slots__ = ()

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Sym(Regex):
    """A single symbol: an element tag or :data:`TEXT_SYMBOL`."""

    name: str

    __slots__ = ("name",)

    def __str__(self) -> str:
        return "#PCDATA" if self.name == TEXT_SYMBOL else self.name


@dataclass(frozen=True)
class Seq(Regex):
    """Concatenation ``left , right``."""

    left: Regex
    right: Regex

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"({self.left}, {self.right})"


@dataclass(frozen=True)
class Alt(Regex):
    """Alternation ``left | right``."""

    left: Regex
    right: Regex

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Star(Regex):
    """Kleene star ``inner*``."""

    inner: Regex

    __slots__ = ("inner",)

    def __str__(self) -> str:
        return f"{self.inner}*"


@dataclass(frozen=True)
class Plus(Regex):
    """One-or-more ``inner+``."""

    inner: Regex

    __slots__ = ("inner",)

    def __str__(self) -> str:
        return f"{self.inner}+"


@dataclass(frozen=True)
class Opt(Regex):
    """Zero-or-one ``inner?``."""

    inner: Regex

    __slots__ = ("inner",)

    def __str__(self) -> str:
        return f"{self.inner}?"


EPSILON = Epsilon()


def seq(*parts: Regex) -> Regex:
    """Concatenate ``parts`` (empty call yields epsilon)."""
    result: Regex | None = None
    for part in parts:
        result = part if result is None else Seq(result, part)
    return EPSILON if result is None else result


def alt(*parts: Regex) -> Regex:
    """Alternate ``parts`` (at least one required)."""
    if not parts:
        raise RegexError("alternation needs at least one branch")
    result = parts[0]
    for part in parts[1:]:
        result = Alt(result, part)
    return result


def nullable(r: Regex) -> bool:
    """Return True iff the empty word belongs to ``L(r)``."""
    if isinstance(r, Epsilon):
        return True
    if isinstance(r, Sym):
        return False
    if isinstance(r, Seq):
        return nullable(r.left) and nullable(r.right)
    if isinstance(r, Alt):
        return nullable(r.left) or nullable(r.right)
    if isinstance(r, (Star, Opt)):
        return True
    if isinstance(r, Plus):
        return nullable(r.inner)
    raise RegexError(f"unknown regex node {r!r}")


def occurring(r: Regex) -> frozenset[str]:
    """Symbols occurring in at least one word of ``L(r)``.

    Content models have no empty-language construct, so this is exactly the
    set of symbols mentioned in the expression.
    """
    if isinstance(r, Epsilon):
        return frozenset()
    if isinstance(r, Sym):
        return frozenset((r.name,))
    if isinstance(r, (Seq, Alt)):
        return occurring(r.left) | occurring(r.right)
    if isinstance(r, (Star, Plus, Opt)):
        return occurring(r.inner)
    raise RegexError(f"unknown regex node {r!r}")


def order_relation(r: Regex) -> frozenset[tuple[str, str]]:
    """The paper's ``<r`` relation.

    ``(a, b)`` is in the result iff there exists a word of ``L(r)`` in which
    an ``a`` occurs strictly before a ``b``.  Computed by structural
    induction (Section 3.1 / [9]):

    * ``Seq``: pairs within each side, plus every occurring symbol of the
      left side before every occurring symbol of the right side;
    * ``Alt``: union of both sides;
    * ``Star``/``Plus``: pairs within one copy, plus all pairs across two
      unrollings (``occ x occ``);
    * ``Opt``: same as the inner expression.
    """
    if isinstance(r, (Epsilon, Sym)):
        return frozenset()
    if isinstance(r, Seq):
        cross = {
            (a, b) for a in occurring(r.left) for b in occurring(r.right)
        }
        return order_relation(r.left) | order_relation(r.right) | frozenset(cross)
    if isinstance(r, Alt):
        return order_relation(r.left) | order_relation(r.right)
    if isinstance(r, (Star, Plus)):
        occ = occurring(r.inner)
        cross = {(a, b) for a in occ for b in occ}
        return order_relation(r.inner) | frozenset(cross)
    if isinstance(r, Opt):
        return order_relation(r.inner)
    raise RegexError(f"unknown regex node {r!r}")


def shortest_word(r: Regex) -> tuple[str, ...]:
    """Return one minimum-length word of ``L(r)``."""
    word = _shortest(r)
    return word


def _shortest(r: Regex) -> tuple[str, ...]:
    if isinstance(r, Epsilon):
        return ()
    if isinstance(r, Sym):
        return (r.name,)
    if isinstance(r, Seq):
        return _shortest(r.left) + _shortest(r.right)
    if isinstance(r, Alt):
        left = _shortest(r.left)
        right = _shortest(r.right)
        return left if len(left) <= len(right) else right
    if isinstance(r, (Star, Opt)):
        return ()
    if isinstance(r, Plus):
        return _shortest(r.inner)
    raise RegexError(f"unknown regex node {r!r}")


# ---------------------------------------------------------------------------
# Content-model parser
# ---------------------------------------------------------------------------

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-._")


class _ContentModelParser:
    """Recursive-descent parser for DTD content-model syntax.

    Grammar (whitespace insensitive)::

        model   := 'EMPTY' | 'ANY' | expr
        expr    := branch (('|' branch)* | (',' branch)*)
        branch  := atom ('*' | '+' | '?')?
        atom    := '(' expr ')' | '#PCDATA' | name

    ``ANY`` is not supported (the paper's DTDs never use it).
    """

    def __init__(self, text: str):
        self._text = text
        self._pos = 0

    def parse(self) -> Regex:
        self._skip_ws()
        if self._peek_word("EMPTY"):
            self._take_word("EMPTY")
            self._expect_end()
            return EPSILON
        if self._peek_word("ANY"):
            raise RegexError("ANY content models are not supported")
        expr = self._expr()
        self._expect_end()
        return expr

    # -- grammar productions ------------------------------------------------

    def _expr(self) -> Regex:
        first = self._branch()
        self._skip_ws()
        if self._peek() == "|":
            parts = [first]
            while self._peek() == "|":
                self._next()
                parts.append(self._branch())
                self._skip_ws()
            return alt(*parts)
        if self._peek() == ",":
            parts = [first]
            while self._peek() == ",":
                self._next()
                parts.append(self._branch())
                self._skip_ws()
            return seq(*parts)
        return first

    def _branch(self) -> Regex:
        atom = self._atom()
        self._skip_ws()
        ch = self._peek()
        if ch == "*":
            self._next()
            return Star(atom)
        if ch == "+":
            self._next()
            return Plus(atom)
        if ch == "?":
            self._next()
            return Opt(atom)
        return atom

    def _atom(self) -> Regex:
        self._skip_ws()
        ch = self._peek()
        if ch == "(":
            self._next()
            inner = self._expr()
            self._skip_ws()
            if self._peek() != ")":
                raise RegexError(f"expected ')' at position {self._pos}")
            self._next()
            return inner
        if ch == "#":
            word = self._name(allow_hash=True)
            if word != "#PCDATA":
                raise RegexError(f"unknown token {word!r}")
            return Sym(TEXT_SYMBOL)
        if ch in _NAME_START:
            return Sym(self._name())
        raise RegexError(f"unexpected character {ch!r} at position {self._pos}")

    # -- lexing helpers -----------------------------------------------------

    def _peek(self) -> str:
        return self._text[self._pos] if self._pos < len(self._text) else ""

    def _next(self) -> str:
        ch = self._peek()
        self._pos += 1
        return ch

    def _skip_ws(self) -> None:
        while self._peek() in (" ", "\t", "\n", "\r"):
            self._pos += 1

    def _name(self, allow_hash: bool = False) -> str:
        start = self._pos
        if allow_hash and self._peek() == "#":
            self._pos += 1
        while self._peek() in _NAME_CHARS:
            self._pos += 1
        if self._pos == start:
            raise RegexError(f"expected a name at position {start}")
        return self._text[start:self._pos]

    def _peek_word(self, word: str) -> bool:
        self._skip_ws()
        return self._text.startswith(word, self._pos)

    def _take_word(self, word: str) -> None:
        if not self._peek_word(word):
            raise RegexError(f"expected {word!r} at position {self._pos}")
        self._pos += len(word)

    def _expect_end(self) -> None:
        self._skip_ws()
        if self._pos != len(self._text):
            raise RegexError(
                f"trailing input at position {self._pos}: "
                f"{self._text[self._pos:]!r}"
            )


@lru_cache(maxsize=4096)
def parse_content_model(text: str) -> Regex:
    """Parse DTD content-model syntax into a :class:`Regex`.

    A bare ``(#PCDATA)`` model means *text-only, possibly empty* content
    in DTD semantics, so it parses to ``#S*``.

    >>> parse_content_model("(a | b)*")
    Star(inner=Alt(left=Sym(name='a'), right=Sym(name='b')))
    """
    result = _ContentModelParser(text).parse()
    if result == Sym(TEXT_SYMBOL):
        return Star(result)
    return result
