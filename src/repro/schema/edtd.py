"""Extended DTDs (Section 7, following Gelade-Martens-Neven [14]).

An EDTD ``(Sigma, Sigma', s, d, mu)`` is a DTD over a *type* alphabet
``Sigma'`` plus a labeling ``mu : Sigma' + {#S} -> Sigma + {#S}`` with
``mu(#S) = #S``.  A tree is valid iff relabeling every node via ``mu``
yields a tree valid w.r.t. the underlying DTD.  EDTDs capture XML Schema
and RelaxNG typing: two types with the same label can carry different
content models.

For the chain analysis, chains run over *types* (so reachability stays the
DTD one), while node tests and conflict checks compare *labels*.  The
analysis modules consume any schema exposing the small interface below;
:class:`~repro.schema.dtd.DTD` satisfies it with ``label == type``.
"""

from __future__ import annotations

from .dtd import DTD, DTDError
from .regex import TEXT_SYMBOL


class EDTD:
    """Extended DTD wrapping a :class:`DTD` over types with a labeling.

    >>> core = DTD.from_dict("r", {"r": "(a1, a2)", "a1": "b", "a2": "c",
    ...                            "b": "EMPTY", "c": "EMPTY"})
    >>> schema = EDTD(core, {"a1": "a", "a2": "a", "r": "r", "b": "b",
    ...                      "c": "c"})
    >>> schema.label_of("a1"), schema.label_of("a2")
    ('a', 'a')
    """

    def __init__(self, core: DTD, labeling: dict[str, str]):
        self.core = core
        missing = core.alphabet - set(labeling)
        if missing:
            raise DTDError(f"labeling misses types: {sorted(missing)}")
        self._labeling = dict(labeling)
        self._labeling[TEXT_SYMBOL] = TEXT_SYMBOL

    # -- schema interface used by the analysis --------------------------------

    @property
    def start(self) -> str:
        return self.core.start

    @property
    def alphabet(self) -> frozenset[str]:
        """The *type* alphabet Sigma'."""
        return self.core.alphabet

    @property
    def symbols(self) -> frozenset[str]:
        return self.core.symbols

    def children_of(self, symbol: str) -> frozenset[str]:
        return self.core.children_of(symbol)

    def descendants_of(self, symbol: str) -> frozenset[str]:
        return self.core.descendants_of(symbol)

    def sibling_order(self, symbol: str) -> frozenset[tuple[str, str]]:
        return self.core.sibling_order(symbol)

    def size(self) -> int:
        return self.core.size()

    def label_of(self, symbol: str) -> str:
        """``mu(symbol)``: the element label produced by a type."""
        try:
            return self._labeling[symbol]
        except KeyError:
            raise DTDError(f"unknown type {symbol!r}") from None

    def types_with_label(self, label: str) -> frozenset[str]:
        """All types mapped by ``mu`` to ``label``."""
        return frozenset(
            t for t, lab in self._labeling.items() if lab == label
        )

    def __repr__(self) -> str:
        return f"EDTD(start={self.start!r}, |types|={self.size()})"


def label_of(schema: DTD | EDTD, symbol: str) -> str:
    """Label of a symbol under either schema kind (DTD: identity)."""
    if isinstance(schema, EDTD):
        return schema.label_of(symbol)
    return symbol
