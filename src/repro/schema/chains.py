"""Chains over a DTD (Definition 2.1) and k-chains (Section 5).

A chain is a sequence of symbols ``a1.a2...an`` with ``ai =>d a(i+1)``.
Chains are represented as tuples of symbol names.  ``Cd`` is infinite for
vertically recursive schemas; :func:`enumerate_chains` therefore always
takes a bound and is intended for tests and small illustrative schemas.
The analysis engine itself never enumerates chains explicitly -- it works
on the CDAG representation (:mod:`repro.analysis.cdag`).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator

from .dtd import DTD

#: A chain is a tuple of symbol names, root-most first.
Chain = tuple[str, ...]


def chain(dotted: str) -> Chain:
    """Parse dotted chain notation: ``"doc.a.c"`` -> ``("doc", "a", "c")``."""
    return tuple(part for part in dotted.split(".") if part)


def dotted(c: Chain) -> str:
    """Render a chain in the paper's dotted notation."""
    return ".".join(c)


def is_prefix(c1: Chain, c2: Chain) -> bool:
    """The paper's prefix relation: ``c1`` is a prefix of ``c2``.

    Every chain is a (non-strict) prefix of itself.
    """
    return len(c1) <= len(c2) and c2[:len(c1)] == c1


def concat(c1: Chain, c2: Chain) -> Chain:
    """Chain concatenation ``c1.c2``."""
    return c1 + c2


def is_chain(dtd: DTD, c: Chain) -> bool:
    """Membership in ``Cd``: consecutive symbols must satisfy ``=>d``.

    Chains in ``Cd`` may start at any DTD symbol (Definition 2.1).
    """
    if not c:
        return False
    if c[0] not in dtd.symbols:
        return False
    for parent, child in zip(c, c[1:]):
        if child not in dtd.children_of(parent):
            return False
    return True


def is_k_chain(c: Chain, k: int) -> bool:
    """True iff no symbol occurs more than ``k`` times in ``c``."""
    if not c:
        return True
    return max(Counter(c).values()) <= k


def max_multiplicity(c: Chain) -> int:
    """The largest per-symbol occurrence count in ``c`` (0 for empty)."""
    return max(Counter(c).values()) if c else 0


def enumerate_chains(
    dtd: DTD,
    k: int | None = None,
    max_length: int | None = None,
    roots: frozenset[str] | None = None,
) -> Iterator[Chain]:
    """Enumerate chains of ``Cd`` (or ``Ckd``), bounded.

    At least one of ``k`` / ``max_length`` must be given, otherwise the
    enumeration may not terminate on recursive schemas.

    ``roots`` restricts the starting symbols (default: all DTD symbols, as
    in Definition 2.1).
    """
    if k is None and max_length is None:
        raise ValueError("need a bound: pass k and/or max_length")
    start_symbols = roots if roots is not None else dtd.symbols
    limit = max_length if max_length is not None else k * len(dtd.symbols) + 1

    def walk(prefix: Chain, counts: Counter) -> Iterator[Chain]:
        yield prefix
        if len(prefix) >= limit:
            return
        for child in sorted(dtd.children_of(prefix[-1])):
            if k is not None and counts[child] + 1 > k:
                continue
            counts[child] += 1
            yield from walk(prefix + (child,), counts)
            counts[child] -= 1

    for root in sorted(start_symbols):
        if k is not None and k < 1:
            return
        yield from walk((root,), Counter((root,)))


def chains_from_root(dtd: DTD, k: int | None = None,
                     max_length: int | None = None) -> frozenset[Chain]:
    """All bounded chains starting at the DTD start symbol, as a set."""
    return frozenset(
        enumerate_chains(dtd, k=k, max_length=max_length,
                         roots=frozenset((dtd.start,)))
    )
