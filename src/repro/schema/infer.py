"""DTD inference from example documents.

The paper's introduction points out that when no schema is given, "quite
precise schemas, in the form of a DTD, can be automatically inferred"
(Bex, Neven, Schwentick, Vansummeren [8]).  This module implements a
simplified CHARE-style inference so the independence analysis can be
used on schema-less corpora:

1. for every element tag, collect the child tag-words observed in the
   corpus (text nodes count as the text pseudo-symbol);
2. build the *immediately-follows* graph over symbols, contract its
   strongly connected components, and topologically order them;
3. emit one factor per component -- a disjunction ``(a1 | ... | ak)``
   with a multiplicity (``1``, ``?``, ``+``, ``*``) derived from
   optionality and repetition evidence;
4. verify the resulting model accepts every observed word; if the linear
   factor order cannot (symbols genuinely interleave), fall back to the
   sound-by-construction generalization ``(a1 | ... | ak)*``.

The contract tested in the suite: **every training document is valid
w.r.t. the inferred DTD.**
"""

from __future__ import annotations


import networkx as nx

from ..xmldm.store import Tree
from .automata import GlushkovAutomaton
from .dtd import DTD
from .regex import TEXT_SYMBOL, parse_content_model


class InferenceFailure(ValueError):
    """Raised for empty corpora or inconsistent root tags."""


def collect_words(corpus: list[Tree]) -> tuple[str, dict[str, list[tuple[str, ...]]]]:
    """Gather (root tag, {tag: observed child words}) from a corpus."""
    if not corpus:
        raise InferenceFailure("cannot infer a DTD from an empty corpus")
    root_tag: str | None = None
    words: dict[str, list[tuple[str, ...]]] = {}
    for tree in corpus:
        store = tree.store
        if not store.is_element(tree.root):
            raise InferenceFailure("document root is a text node")
        tag = store.tag(tree.root)
        if root_tag is None:
            root_tag = tag
        elif root_tag != tag:
            raise InferenceFailure(
                f"inconsistent root tags: {root_tag!r} vs {tag!r}"
            )
        for loc in store.descendants_or_self(tree.root):
            if not store.is_element(loc):
                continue
            word = tuple(store.typ(child) for child in store.children(loc))
            words.setdefault(store.tag(loc), []).append(word)
    assert root_tag is not None
    return root_tag, words


def infer_content_model(words: list[tuple[str, ...]]) -> str:
    """Infer one content-model string accepting all ``words``."""
    symbols = sorted({s for word in words for s in word})
    if not symbols:
        return "EMPTY"

    model = _chare_model(words, symbols)
    if model is not None and _accepts_all(model, words):
        return model
    # Sound fallback: arbitrary interleaving of the observed symbols.
    fallback = f"({' | '.join(_q(s) for s in symbols)})*"
    return fallback


def _chare_model(words: list[tuple[str, ...]], symbols: list[str]
                 ) -> str | None:
    """Factor sequence from the immediately-follows graph, or None when
    the component order is not linear."""
    follows = nx.DiGraph()
    follows.add_nodes_from(symbols)
    for word in words:
        for left, right in zip(word, word[1:]):
            follows.add_edge(left, right)

    condensation = nx.condensation(follows)

    # Group components by longest-path level: incomparable components at
    # the same level (e.g. the author/editor alternatives of the bib DTD)
    # merge into one disjunction factor.  The caller re-checks the final
    # model against all words, so any imprecision of this heuristic falls
    # back to the sound star-generalization.
    level: dict[int, int] = {}
    for scc_id in nx.topological_sort(condensation):
        preds = list(condensation.predecessors(scc_id))
        level[scc_id] = 1 + max(
            (level[p] for p in preds), default=-1
        )
    by_level: dict[int, list[str]] = {}
    for scc_id, depth in level.items():
        members = condensation.nodes[scc_id]["members"]
        by_level.setdefault(depth, []).extend(members)

    factors = [
        _factor(sorted(by_level[depth]), words)
        for depth in sorted(by_level)
    ]
    return "(" + ", ".join(factors) + ")" if factors else "EMPTY"


def _factor(members: list[str], words: list[tuple[str, ...]]) -> str:
    """One factor ``(a|b|...)`` with its multiplicity suffix."""
    group = set(members)
    optional = False
    repeated = len(members) > 1  # SCC of several symbols implies cycling
    for word in words:
        count = sum(1 for s in word if s in group)
        if count == 0:
            optional = True
        if count > 1:
            repeated = True
    body = " | ".join(_q(s) for s in members)
    if len(members) > 1 or repeated or optional:
        body = f"({body})"
    if optional and repeated:
        return f"{body}*"
    if repeated:
        return f"{body}+"
    if optional:
        return f"{body}?"
    return body


def _q(symbol: str) -> str:
    return "#PCDATA" if symbol == TEXT_SYMBOL else symbol


def _accepts_all(model: str, words: list[tuple[str, ...]]) -> bool:
    automaton = GlushkovAutomaton(parse_content_model(model))
    return all(automaton.matches(list(word)) for word in set(words))


def infer_dtd(corpus: list[Tree]) -> DTD:
    """Infer a DTD validating every document of ``corpus``.

    >>> from repro.xmldm import parse_xml
    >>> dtd = infer_dtd([parse_xml("<doc><a><c/></a><b><c/></b></doc>")])
    >>> sorted(dtd.alphabet)
    ['a', 'b', 'c', 'doc']
    """
    root_tag, words = collect_words(corpus)
    models = {
        tag: infer_content_model(tag_words)
        for tag, tag_words in words.items()
    }
    return DTD.from_dict(root_tag, models)
