"""DTDs: alphabet, start symbol, content models, validation, reachability.

A DTD is the triple ``(Sigma, s_d, d)`` of Section 2 of the paper.  The
``d`` component maps each tag to a regular expression over
``Sigma + {#S}`` where ``#S`` is the text type.  Reachability ``a =>d b``
("b occurs in d(a)") induces the chain language Cd (see
:mod:`repro.schema.chains`).
"""

from __future__ import annotations

from .automata import GlushkovAutomaton
from .regex import (
    EPSILON,
    TEXT_SYMBOL,
    Regex,
    nullable,
    occurring,
    order_relation,
    parse_content_model,
    shortest_word,
)


class DTDError(ValueError):
    """Raised for malformed DTDs or validation misuse."""


class DTD:
    """A Document Type Definition ``(Sigma, s_d, d)``.

    Construct either from parsed :class:`~repro.schema.regex.Regex` values
    or from content-model strings via :meth:`from_dict` /
    :meth:`from_dtd_text`.

    The text pseudo-symbol :data:`~repro.schema.regex.TEXT_SYMBOL` may occur
    in content models but is not part of the alphabet.
    """

    def __init__(self, start: str, rules: dict[str, Regex]):
        if start not in rules:
            raise DTDError(f"start symbol {start!r} has no rule")
        self.start = start
        self.rules: dict[str, Regex] = dict(rules)
        for tag, model in self.rules.items():
            for symbol in occurring(model):
                if symbol != TEXT_SYMBOL and symbol not in self.rules:
                    raise DTDError(
                        f"content model of {tag!r} references undefined "
                        f"element {symbol!r}"
                    )
        self._automata: dict[str, GlushkovAutomaton] = {}
        self._children: dict[str, frozenset[str]] = {
            tag: occurring(model) for tag, model in self.rules.items()
        }
        self._children[TEXT_SYMBOL] = frozenset()
        self._order: dict[str, frozenset[tuple[str, str]]] = {}
        self._descendants: dict[str, frozenset[str]] | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, start: str, models: dict[str, str]) -> "DTD":
        """Build a DTD from ``{tag: content-model-string}``.

        >>> d = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c",
        ...                           "b": "c", "c": "EMPTY"})
        >>> sorted(d.alphabet)
        ['a', 'b', 'c', 'doc']
        """
        rules = {tag: parse_content_model(text) for tag, text in models.items()}
        return cls(start, rules)

    @classmethod
    def from_dtd_text(cls, start: str, text: str) -> "DTD":
        """Parse ``<!ELEMENT tag (model)>`` declarations.

        Attribute declarations (``<!ATTLIST``) are skipped: the paper's
        benchmark rewrites remove attribute use (Section 6.2).
        """
        models: dict[str, str] = {}
        index = 0
        while True:
            begin = text.find("<!", index)
            if begin < 0:
                break
            end = text.find(">", begin)
            if end < 0:
                raise DTDError("unterminated declaration")
            decl = text[begin + 2:end].strip()
            index = end + 1
            if decl.startswith("ATTLIST") or decl.startswith("--"):
                continue
            if not decl.startswith("ELEMENT"):
                continue
            body = decl[len("ELEMENT"):].strip()
            parts = body.split(None, 1)
            if len(parts) != 2:
                raise DTDError(f"malformed ELEMENT declaration: {decl!r}")
            tag, model = parts
            models[tag] = model.strip()
        if not models:
            raise DTDError("no ELEMENT declarations found")
        return cls.from_dict(start, models)

    # -- basic accessors -----------------------------------------------------

    @property
    def alphabet(self) -> frozenset[str]:
        """The element-tag alphabet Sigma (excluding the text symbol)."""
        return frozenset(self.rules)

    @property
    def symbols(self) -> frozenset[str]:
        """``Sigma + {#S}``: every symbol that can appear in a chain."""
        return self.alphabet | {TEXT_SYMBOL}

    def content_model(self, symbol: str) -> Regex:
        """``d(symbol)``; the text symbol has the empty content model."""
        if symbol == TEXT_SYMBOL:
            return EPSILON
        try:
            return self.rules[symbol]
        except KeyError:
            raise DTDError(f"unknown element {symbol!r}") from None

    def children_of(self, symbol: str) -> frozenset[str]:
        """Symbols ``b`` with ``symbol =>d b`` (one-step reachability)."""
        try:
            return self._children[symbol]
        except KeyError:
            raise DTDError(f"unknown element {symbol!r}") from None

    def sibling_order(self, symbol: str) -> frozenset[tuple[str, str]]:
        """The ``<r`` relation of ``d(symbol)`` (see Section 3.1)."""
        cached = self._order.get(symbol)
        if cached is None:
            cached = order_relation(self.content_model(symbol))
            self._order[symbol] = cached
        return cached

    def descendants_of(self, symbol: str) -> frozenset[str]:
        """Symbols reachable from ``symbol`` in one or more ``=>d`` steps."""
        if self._descendants is None:
            self._descendants = self._compute_descendants()
        return self._descendants[symbol]

    def _compute_descendants(self) -> dict[str, frozenset[str]]:
        closure: dict[str, set[str]] = {s: set(self.children_of(s))
                                        for s in self.symbols}
        changed = True
        while changed:
            changed = False
            for symbol, reach in closure.items():
                extra: set[str] = set()
                for child in reach:
                    extra |= closure[child]
                if not extra <= reach:
                    reach |= extra
                    changed = True
        return {s: frozenset(reach) for s, reach in closure.items()}

    def is_recursive(self) -> bool:
        """True iff some symbol is reachable from itself (vertical recursion)."""
        return any(s in self.descendants_of(s) for s in self.alphabet)

    def recursive_symbols(self) -> frozenset[str]:
        """Symbols lying on a ``=>d`` cycle."""
        return frozenset(s for s in self.alphabet if s in self.descendants_of(s))

    def size(self) -> int:
        """``|d|``: number of element-type definitions (as in Section 6.2)."""
        return len(self.rules)

    # -- validation ------------------------------------------------------

    def automaton(self, symbol: str) -> GlushkovAutomaton:
        """The compiled Glushkov automaton for ``d(symbol)``."""
        auto = self._automata.get(symbol)
        if auto is None:
            auto = GlushkovAutomaton(self.content_model(symbol))
            self._automata[symbol] = auto
        return auto

    def accepts_children(self, symbol: str, child_word: list[str]) -> bool:
        """Does the tag word ``child_word`` match ``d(symbol)``?"""
        return self.automaton(symbol).matches(child_word)

    def shortest_content(self, symbol: str) -> tuple[str, ...]:
        """A minimum-length valid child word for ``symbol``."""
        return shortest_word(self.content_model(symbol))

    def allows_empty(self, symbol: str) -> bool:
        """True iff ``symbol`` may have no children."""
        return nullable(self.content_model(symbol))

    # -- dunder ----------------------------------------------------------

    def __repr__(self) -> str:
        return f"DTD(start={self.start!r}, |d|={self.size()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DTD):
            return NotImplemented
        return self.start == other.start and self.rules == other.rules

    def __hash__(self) -> int:
        return hash((self.start, tuple(sorted(self.rules.items(),
                                              key=lambda kv: kv[0]))))
