"""Core AST for the paper's XQuery fragment (Section 2).

The grammar::

    q ::= () | q,q | <a>q</a> | s | x/step
        | for x in q return q | let x := q return q
        | if q then q else q

    step ::= axis::phi      phi ::= a | text() | node() | *
    axis ::= self | child | descendant | descendant-or-self | parent
           | ancestor | ancestor-or-self | preceding-sibling
           | following-sibling

Multi-step paths, ``//``, predicates and the ``following``/``preceding``
axes are surface syntax, desugared by the parser into this core (exactly
the encodings the paper prescribes).  The wildcard ``*`` test is a small
extension needed by XPathMark (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from ..schema.regex import TEXT_SYMBOL
from ..util import slots_getstate, slots_setstate

#: Name of the single free variable of quasi-closed expressions, bound to
#: the document root element.
ROOT_VAR = "$doc"


class Axis(Enum):
    """XPath axes supported by the core fragment."""

    SELF = "self"
    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    PRECEDING_SIBLING = "preceding-sibling"
    FOLLOWING_SIBLING = "following-sibling"

    @property
    def is_recursive(self) -> bool:
        """Recursive axes per Section 5 (they drive the R() component)."""
        return self in (
            Axis.DESCENDANT,
            Axis.DESCENDANT_OR_SELF,
            Axis.ANCESTOR,
            Axis.ANCESTOR_OR_SELF,
        )

    @property
    def is_forward_downward(self) -> bool:
        """Axes handled by rule (STEPF) of Table 1."""
        return self in (Axis.SELF, Axis.CHILD, Axis.DESCENDANT_OR_SELF)


@dataclass(frozen=True)
class NodeTest:
    """Base class for node tests phi."""

    __slots__ = ()
    __getstate__ = slots_getstate
    __setstate__ = slots_setstate


@dataclass(frozen=True)
class NameTest(NodeTest):
    """Matches element nodes with a given tag."""

    name: str

    __slots__ = ("name",)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class TextTest(NodeTest):
    """``text()``: matches text nodes."""

    __slots__ = ()

    def __str__(self) -> str:
        return "text()"


@dataclass(frozen=True)
class NodeKindTest(NodeTest):
    """``node()``: matches any node."""

    __slots__ = ()

    def __str__(self) -> str:
        return "node()"


@dataclass(frozen=True)
class WildcardTest(NodeTest):
    """``*``: matches any element node (XPathMark extension)."""

    __slots__ = ()

    def __str__(self) -> str:
        return "*"


TEXT_TEST = TextTest()
NODE_TEST = NodeKindTest()
WILDCARD_TEST = WildcardTest()


@dataclass(frozen=True)
class Query:
    """Base class of core query AST nodes."""

    __slots__ = ()
    __getstate__ = slots_getstate
    __setstate__ = slots_setstate


@dataclass(frozen=True)
class Empty(Query):
    """The empty sequence ``()``."""

    __slots__ = ()

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True)
class Concat(Query):
    """Sequence concatenation ``q1, q2``."""

    left: Query
    right: Query

    __slots__ = ("left", "right")

    def __str__(self) -> str:
        return f"{self.left}, {self.right}"


@dataclass(frozen=True)
class StringLit(Query):
    """A constant string ``s`` (builds a new text node)."""

    value: str

    __slots__ = ("value",)

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class Element(Query):
    """Element construction ``<a>q</a>``."""

    tag: str
    content: Query

    __slots__ = ("tag", "content")

    def __str__(self) -> str:
        if isinstance(self.content, Empty):
            return f"<{self.tag}/>"
        return f"<{self.tag}>{self.content}</{self.tag}>"


@dataclass(frozen=True)
class Step(Query):
    """A single XPath step ``x/axis::phi``."""

    var: str
    axis: Axis
    test: NodeTest

    __slots__ = ("var", "axis", "test")

    def __str__(self) -> str:
        return f"{self.var}/{self.axis.value}::{self.test}"


@dataclass(frozen=True)
class For(Query):
    """``for x in q1 return q2``."""

    var: str
    source: Query
    body: Query

    __slots__ = ("var", "source", "body")

    def __str__(self) -> str:
        return f"for {self.var} in {self.source} return {self.body}"


@dataclass(frozen=True)
class Let(Query):
    """``let x := q1 return q2``."""

    var: str
    source: Query
    body: Query

    __slots__ = ("var", "source", "body")

    def __str__(self) -> str:
        return f"let {self.var} := {self.source} return {self.body}"


@dataclass(frozen=True)
class If(Query):
    """``if q0 then q1 else q2``."""

    cond: Query
    then: Query
    orelse: Query

    __slots__ = ("cond", "then", "orelse")

    def __str__(self) -> str:
        return f"if ({self.cond}) then {self.then} else {self.orelse}"


@lru_cache(maxsize=4096)
def free_variables(q: Query) -> frozenset[str]:
    """Free variables of a core query.

    Cached (ASTs are immutable) with a bound: a process-lifetime cache
    would pin every expression ever analyzed, so cold entries are
    evicted and recomputed instead.
    """
    if isinstance(q, (Empty, StringLit)):
        return frozenset()
    if isinstance(q, Step):
        return frozenset((q.var,))
    if isinstance(q, Concat):
        return free_variables(q.left) | free_variables(q.right)
    if isinstance(q, Element):
        return free_variables(q.content)
    if isinstance(q, (For, Let)):
        return free_variables(q.source) | (
            free_variables(q.body) - {q.var}
        )
    if isinstance(q, If):
        return (
            free_variables(q.cond)
            | free_variables(q.then)
            | free_variables(q.orelse)
        )
    raise TypeError(f"unknown query node {q!r}")


def query_size(q: Query) -> int:
    """``|q|``: number of AST nodes (complexity parameter of Section 6.1)."""
    if isinstance(q, (Empty, StringLit, Step)):
        return 1
    if isinstance(q, Concat):
        return 1 + query_size(q.left) + query_size(q.right)
    if isinstance(q, Element):
        return 1 + query_size(q.content)
    if isinstance(q, (For, Let)):
        return 1 + query_size(q.source) + query_size(q.body)
    if isinstance(q, If):
        return (
            1 + query_size(q.cond) + query_size(q.then)
            + query_size(q.orelse)
        )
    raise TypeError(f"unknown query node {q!r}")


def node_test_matches(test: NodeTest, symbol: str) -> bool:
    """Static counterpart of node-test matching, over chain symbols."""
    if isinstance(test, NameTest):
        return symbol == test.name
    if isinstance(test, TextTest):
        return symbol == TEXT_SYMBOL
    if isinstance(test, NodeKindTest):
        return True
    if isinstance(test, WildcardTest):
        return symbol != TEXT_SYMBOL
    raise TypeError(f"unknown node test {test!r}")
