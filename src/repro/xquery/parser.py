"""Parser for the XQuery fragment, desugaring surface syntax to the core AST.

Surface syntax beyond the core grammar, all desugared exactly as the paper
prescribes (Sections 2, 6.2 and footnote 3):

* multi-step paths ``$x/a/b`` -> nested ``for`` iterations over single steps;
* ``//`` -> ``/descendant-or-self::node()/child::...``;
* absolute paths: the free root variable is bound to the root *element*, so
  a leading ``/name`` becomes ``self::name`` on the root;
* ``following`` / ``preceding`` -> the three-step encoding of footnote 3;
* predicates ``p[f]`` -> ``for $v in p return if (f) then $v else ()``,
  with ``and``/``or``/``not(...)`` in conditions encoded by nesting ``if``,
  comma-sequences, and branch swapping respectively (the paper's
  "disjunctive form" rewriting);
* ``.`` / ``..`` -> ``self::node()`` / ``parent::node()``;
* bare variables ``$x`` -> ``$x/self::node()``;
* element constructors may contain nested constructors, raw text (a string
  literal) and ``{ expr }`` enclosed expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import (
    NODE_TEST,
    ROOT_VAR,
    TEXT_TEST,
    WILDCARD_TEST,
    Axis,
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    NameTest,
    NodeTest,
    Query,
    Step,
    StringLit,
)


class QueryParseError(ValueError):
    """Raised on malformed query/update text."""


_KEYWORDS = {
    "for", "let", "in", "return", "if", "then", "else",
    "delete", "insert", "rename", "replace", "with", "as", "into",
    "before", "after", "first", "last", "node", "nodes", "and", "or",
    "not",
}

_AXES = {axis.value: axis for axis in Axis}
# Surface-only axes expanded by desugaring.
_SURFACE_AXES = {"following", "preceding", "attribute"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-._")


@dataclass
class _SurfaceStep:
    """One parsed path step before desugaring."""

    axis: str                      # core axis value or surface axis name
    test: NodeTest
    predicates: list = field(default_factory=list)  # parsed predicate trees


# Predicate condition trees (desugared later, relative to a context var).
@dataclass
class _PredPath:
    head: str | None               # None: relative; ROOT_VAR or $var otherwise
    absolute: bool
    leading_descendant: bool
    steps: list[_SurfaceStep]


@dataclass
class _PredAnd:
    parts: list


@dataclass
class _PredOr:
    parts: list


@dataclass
class _PredNot:
    inner: object


class Cursor:
    """Character cursor with name/keyword helpers, shared with updates."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low-level ---------------------------------------------------------

    def error(self, message: str) -> QueryParseError:
        context = self.text[max(0, self.pos - 15):self.pos + 15]
        return QueryParseError(
            f"{message} at offset {self.pos} (near {context!r})"
        )

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise self.error(f"expected {token!r}")

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    # -- words -----------------------------------------------------------

    def peek_name(self) -> str | None:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in _NAME_START:
            return None
        end = self.pos
        while end < len(self.text) and self.text[end] in _NAME_CHARS:
            end += 1
        return self.text[self.pos:end]

    def take_name(self) -> str:
        name = self.peek_name()
        if name is None:
            raise self.error("expected a name")
        self.pos += len(name)
        return name

    def peek_keyword(self, word: str) -> bool:
        name = self.peek_name()
        return name == word

    def take_keyword(self, word: str) -> bool:
        if self.peek_keyword(word):
            self.pos += len(word)
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.take_keyword(word):
            raise self.error(f"expected keyword {word!r}")

    def take_variable(self) -> str:
        self.skip_ws()
        if not self.text.startswith("$", self.pos):
            raise self.error("expected a $variable")
        self.pos += 1
        return "$" + self.take_name()

    def take_string(self) -> str:
        self.skip_ws()
        quote = self.text[self.pos] if self.pos < len(self.text) else ""
        if quote not in ("'", '"'):
            raise self.error("expected a string literal")
        end = self.text.find(quote, self.pos + 1)
        if end < 0:
            raise self.error("unterminated string literal")
        value = self.text[self.pos + 1:end]
        self.pos = end + 1
        return value


class QueryParser:
    """Recursive-descent parser producing core :class:`Query` ASTs."""

    def __init__(self, text: str):
        self.cursor = Cursor(text)
        self._fresh = 0

    # -- public ------------------------------------------------------------

    def parse(self) -> Query:
        query = self.parse_expr()
        if not self.cursor.at_end():
            raise self.cursor.error("trailing input")
        return query

    # -- fresh variables -----------------------------------------------------

    def fresh_var(self) -> str:
        self._fresh += 1
        return f"$_p{self._fresh}"

    # -- expression grammar ----------------------------------------------

    def parse_expr(self) -> Query:
        parts = [self.parse_single()]
        while self.cursor.take(","):
            parts.append(self.parse_single())
        query = parts[0]
        for part in parts[1:]:
            query = Concat(query, part)
        return query

    def parse_single(self) -> Query:
        cur = self.cursor
        if cur.peek_keyword("for"):
            return self._parse_for()
        if cur.peek_keyword("let"):
            return self._parse_let()
        if cur.peek_keyword("if"):
            return self._parse_if()
        if cur.peek_keyword("not"):
            save = cur.pos
            cur.take_keyword("not")
            if cur.take("("):
                inner = self.parse_expr()
                cur.expect(")")
                # Emptiness negation: non-empty iff the inner query is empty.
                return If(inner, Empty(), StringLit("true"))
            cur.pos = save
        if cur.peek("'") or cur.peek('"'):
            return StringLit(cur.take_string())
        if cur.peek("<"):
            return self._parse_element()
        if cur.peek("("):
            cur.expect("(")
            if cur.take(")"):
                return Empty()
            inner = self.parse_expr()
            cur.expect(")")
            return self._maybe_continue_path(inner)
        return self._parse_path()

    def _parse_for(self) -> Query:
        cur = self.cursor
        cur.expect_keyword("for")
        var = cur.take_variable()
        cur.expect_keyword("in")
        source = self.parse_single()
        if cur.peek_keyword("for") or cur.peek(","):
            raise cur.error("multi-binding for is not supported; nest fors")
        cur.expect_keyword("return")
        body = self.parse_single()
        return For(var, source, body)

    def _parse_let(self) -> Query:
        cur = self.cursor
        cur.expect_keyword("let")
        var = cur.take_variable()
        cur.expect(":=")
        source = self.parse_single()
        cur.expect_keyword("return")
        body = self.parse_single()
        return Let(var, source, body)

    def _parse_if(self) -> Query:
        cur = self.cursor
        cur.expect_keyword("if")
        cur.expect("(")
        cond = self.parse_expr()
        cur.expect(")")
        cur.expect_keyword("then")
        then = self.parse_single()
        cur.expect_keyword("else")
        orelse = self.parse_single()
        return If(cond, then, orelse)

    def _maybe_continue_path(self, base: Query) -> Query:
        """Support ``(expr)/steps`` by iterating steps over ``base``."""
        cur = self.cursor
        if not (cur.peek("/")):
            return base
        steps: list[_SurfaceStep] = []
        if cur.take("//"):
            steps.append(_SurfaceStep("descendant-or-self", NODE_TEST, []))
        else:
            cur.expect("/")
        steps.append(self._parse_one_step(default_axis="child"))
        while True:
            if cur.take("//"):
                steps.append(_SurfaceStep("descendant-or-self", NODE_TEST, []))
                steps.append(self._parse_one_step(default_axis="child"))
            elif cur.take("/"):
                steps.append(self._parse_one_step(default_axis="child"))
            else:
                break
        var = self.fresh_var()
        return For(var, base, self._desugar_steps(var, steps))

    # -- element constructors ----------------------------------------------

    def _parse_element(self) -> Query:
        cur = self.cursor
        cur.expect("<")
        tag = cur.take_name()
        cur.skip_ws()
        if cur.take("/>"):
            return Element(tag, Empty())
        cur.expect(">")
        parts: list[Query] = []
        while True:
            if cur.text.startswith("</", cur.pos):
                break
            if cur.text.startswith("<", cur.pos):
                parts.append(self._parse_element())
                continue
            if cur.text.startswith("{", cur.pos):
                cur.expect("{")
                parts.append(self.parse_expr())
                cur.expect("}")
                continue
            start = cur.pos
            while (cur.pos < len(cur.text)
                   and cur.text[cur.pos] not in "<{"):
                cur.pos += 1
            raw = cur.text[start:cur.pos].strip()
            if raw:
                parts.append(StringLit(raw))
        cur.expect("</")
        closing = cur.take_name()
        if closing != tag:
            raise cur.error(f"mismatched closing tag {closing!r} for {tag!r}")
        cur.expect(">")
        content: Query = Empty()
        for index, part in enumerate(parts):
            content = part if index == 0 else Concat(content, part)
        return Element(tag, content)

    # -- paths ---------------------------------------------------------------

    def _parse_path(self) -> Query:
        head, absolute, leading_descendant, steps = self._parse_surface_path(
            allow_relative=False
        )
        return self._desugar_path(head, absolute, leading_descendant, steps,
                                  context_var=None)

    def _parse_surface_path(
        self, allow_relative: bool
    ) -> tuple[str | None, bool, bool, list[_SurfaceStep]]:
        """Parse ``($x | / | //)? step (/step | //step)*``."""
        cur = self.cursor
        cur.skip_ws()
        head: str | None = None
        absolute = False
        leading_descendant = False
        if cur.text.startswith("$", cur.pos):
            head = cur.take_variable()
            if cur.take("//"):
                leading_descendant = True
                steps = self._parse_steps()
            elif cur.take("/"):
                steps = self._parse_steps()
            else:
                steps = []
            return head, absolute, leading_descendant, steps
        if cur.take("//"):
            absolute = True
            leading_descendant = True
            return head, absolute, leading_descendant, self._parse_steps()
        if cur.take("/"):
            absolute = True
            return head, absolute, leading_descendant, self._parse_steps()
        if allow_relative:
            return head, absolute, leading_descendant, self._parse_steps()
        raise cur.error("expected a path (starting with $var, / or //)")

    def _parse_steps(self) -> list[_SurfaceStep]:
        steps = [self._parse_one_step(default_axis=None)]
        while True:
            if self.cursor.take("//"):
                steps.append(_SurfaceStep("descendant-or-self", NODE_TEST, []))
                steps.append(self._parse_one_step(default_axis="child"))
            elif self.cursor.take("/"):
                steps.append(self._parse_one_step(default_axis="child"))
            else:
                break
        return steps

    def _parse_one_step(self, default_axis: str | None) -> _SurfaceStep:
        """``default_axis=None`` means "first step": defaults to child but the
        desugarer will turn a defaulted first step of an absolute path into
        ``self`` (the root variable is bound to the root element)."""
        cur = self.cursor
        cur.skip_ws()
        if cur.take(".."):
            return _SurfaceStep("parent", NODE_TEST,
                                self._parse_predicates())
        if cur.take("."):
            return _SurfaceStep("self", NODE_TEST, self._parse_predicates())
        if cur.take("*"):
            axis = default_axis if default_axis is not None else "@first-child"
            return _SurfaceStep(axis, WILDCARD_TEST, self._parse_predicates())
        name = cur.peek_name()
        if name is None:
            raise cur.error("expected a path step")
        explicit_axis: str | None = None
        if name in _AXES or name in _SURFACE_AXES:
            save = cur.pos
            cur.pos += len(name)
            if cur.take("::"):
                explicit_axis = name
            else:
                cur.pos = save
        if explicit_axis is not None:
            test = self._parse_node_test()
            return _SurfaceStep(explicit_axis, test,
                                self._parse_predicates())
        test = self._parse_node_test()
        axis = default_axis or "child"
        marker = axis if default_axis is not None else "@first-child"
        return _SurfaceStep(marker, test, self._parse_predicates())

    def _parse_node_test(self) -> NodeTest:
        cur = self.cursor
        if cur.take("*"):
            return WILDCARD_TEST
        name = cur.take_name()
        if name == "text" and cur.take("("):
            cur.expect(")")
            return TEXT_TEST
        if name == "node" and cur.take("("):
            cur.expect(")")
            return NODE_TEST
        return NameTest(name)

    # -- predicates ------------------------------------------------------

    def _parse_predicates(self) -> list:
        preds: list = []
        while self.cursor.take("["):
            preds.append(self._parse_pred_or())
            self.cursor.expect("]")
        return preds

    def _parse_pred_or(self):
        parts = [self._parse_pred_and()]
        while self.cursor.take_keyword("or"):
            parts.append(self._parse_pred_and())
        return parts[0] if len(parts) == 1 else _PredOr(parts)

    def _parse_pred_and(self):
        parts = [self._parse_pred_atom()]
        while self.cursor.take_keyword("and"):
            parts.append(self._parse_pred_atom())
        return parts[0] if len(parts) == 1 else _PredAnd(parts)

    def _parse_pred_atom(self):
        cur = self.cursor
        if cur.take_keyword("not"):
            cur.expect("(")
            inner = self._parse_pred_or()
            cur.expect(")")
            return _PredNot(inner)
        if cur.peek("("):
            cur.expect("(")
            inner = self._parse_pred_or()
            cur.expect(")")
            return inner
        head, absolute, leading, steps = self._parse_surface_path(
            allow_relative=True
        )
        return _PredPath(head, absolute, leading, steps)

    # -- desugaring --------------------------------------------------------

    def _desugar_path(
        self,
        head: str | None,
        absolute: bool,
        leading_descendant: bool,
        steps: list[_SurfaceStep],
        context_var: str | None,
    ) -> Query:
        if head is not None:
            base_var = head
        elif absolute:
            base_var = ROOT_VAR
        elif context_var is not None:
            base_var = context_var
        else:
            raise QueryParseError("relative path outside a predicate")
        if steps and steps[0].axis == "@first-child":
            # A defaulted first step of an absolute path matches the root
            # element itself (the root variable is bound to it); everywhere
            # else a defaulted step is a child step.
            first = steps[0]
            fixed_axis = "self" if (absolute and not leading_descendant
                                    and head is None) else "child"
            steps = [_SurfaceStep(fixed_axis, first.test, first.predicates)] \
                + steps[1:]
        if leading_descendant:
            steps = [_SurfaceStep("descendant-or-self", NODE_TEST, [])] + steps
        if not steps:
            return Step(base_var, Axis.SELF, NODE_TEST)
        return self._desugar_steps(base_var, steps)

    def _desugar_steps(self, var: str, steps: list[_SurfaceStep]) -> Query:
        step = steps[0]
        expanded = self._expand_surface_axis(step)
        if len(expanded) > 1:
            return self._desugar_steps(var, expanded + steps[1:])
        axis = _AXES[step.axis]
        base: Query = Step(var, axis, step.test)
        for pred in step.predicates:
            pred_var = self.fresh_var()
            base = For(
                pred_var,
                base,
                If(self._desugar_pred(pred, pred_var),
                   Step(pred_var, Axis.SELF, NODE_TEST),
                   Empty()),
            )
        if len(steps) == 1:
            return base
        next_var = self.fresh_var()
        return For(next_var, base, self._desugar_steps(next_var, steps[1:]))

    def _expand_surface_axis(self, step: _SurfaceStep) -> list[_SurfaceStep]:
        """Footnote-3 encodings for ``following`` and ``preceding``."""
        if step.axis == "following":
            return [
                _SurfaceStep("ancestor-or-self", NODE_TEST, []),
                _SurfaceStep("following-sibling", NODE_TEST, []),
                _SurfaceStep("descendant-or-self", step.test,
                             step.predicates),
            ]
        if step.axis == "preceding":
            return [
                _SurfaceStep("ancestor-or-self", NODE_TEST, []),
                _SurfaceStep("preceding-sibling", NODE_TEST, []),
                _SurfaceStep("descendant-or-self", step.test,
                             step.predicates),
            ]
        if step.axis == "attribute":
            raise QueryParseError(
                "attribute axis is not part of the fragment (the benchmark "
                "rewriting removes attribute use)"
            )
        return [step]

    def _desugar_pred(self, pred, context_var: str) -> Query:
        if isinstance(pred, _PredPath):
            return self._desugar_path(
                pred.head, pred.absolute, pred.leading_descendant,
                list(pred.steps), context_var,
            )
        if isinstance(pred, _PredOr):
            parts = [self._desugar_pred(p, context_var) for p in pred.parts]
            query = parts[0]
            for part in parts[1:]:
                query = Concat(query, part)
            return query
        if isinstance(pred, _PredAnd):
            parts = [self._desugar_pred(p, context_var) for p in pred.parts]
            query = parts[-1]
            for part in reversed(parts[:-1]):
                query = If(part, query, Empty())
            return query
        if isinstance(pred, _PredNot):
            inner = self._desugar_pred(pred.inner, context_var)
            return If(inner, Empty(), StringLit("true"))
        raise TypeError(f"unknown predicate node {pred!r}")


def parse_query(text: str) -> Query:
    """Parse surface query text into the core AST.

    >>> parse_query("$x/child::a")
    Step(var='$x', axis=<Axis.CHILD: 'child'>, test=NameTest(name='a'))
    """
    return QueryParser(text).parse()
