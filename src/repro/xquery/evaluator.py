"""Dynamic semantics of the query fragment: ``sigma, gamma |= q => sigma_q, L_q``.

The evaluator mutates the given store only by *adding* nodes (string
literals and element construction allocate fresh locations; construction
deep-copies its content, per the W3C copy semantics).  Existing nodes are
never modified, matching the paper's judgment where ``sigma_q`` extends
``sigma``.

Environments ``gamma`` bind variables to location sequences.  Quasi-closed
queries use :data:`~repro.xquery.ast.ROOT_VAR` bound to the root element.
"""

from __future__ import annotations

from ..xmldm.store import Location, Store
from .ast import (
    Axis,
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    NameTest,
    NodeKindTest,
    NodeTest,
    Query,
    Step,
    StringLit,
    TextTest,
    WildcardTest,
)


class EvaluationError(ValueError):
    """Raised for unbound variables and other dynamic errors."""


Environment = dict[str, list[Location]]


def evaluate_query(query: Query, store: Store, env: Environment
                   ) -> list[Location]:
    """Evaluate ``query`` over ``store`` under ``env``.

    Returns the answer sequence ``L_q``; the store is extended in place
    with any constructed nodes (it plays the role of ``sigma_q``).
    """
    return _eval(query, store, env)


def _eval(query: Query, store: Store, env: Environment) -> list[Location]:
    if isinstance(query, Empty):
        return []
    if isinstance(query, StringLit):
        return [store.new_text(query.value)]
    if isinstance(query, Concat):
        return _eval(query.left, store, env) + _eval(query.right, store, env)
    if isinstance(query, Step):
        return _eval_step(query, store, env)
    if isinstance(query, Element):
        content = _eval(query.content, store, env)
        copies = [store.copy_subtree(store, loc) for loc in content]
        return [store.new_element(query.tag, copies)]
    if isinstance(query, For):
        source = _eval(query.source, store, env)
        result: list[Location] = []
        for item in source:
            inner = dict(env)
            inner[query.var] = [item]
            result.extend(_eval(query.body, store, inner))
        return result
    if isinstance(query, Let):
        source = _eval(query.source, store, env)
        inner = dict(env)
        inner[query.var] = source
        return _eval(query.body, store, inner)
    if isinstance(query, If):
        cond = _eval(query.cond, store, env)
        branch = query.then if cond else query.orelse
        return _eval(branch, store, env)
    raise EvaluationError(f"unknown query node {query!r}")


def _eval_step(step: Step, store: Store, env: Environment) -> list[Location]:
    try:
        context = env[step.var]
    except KeyError:
        raise EvaluationError(f"unbound variable {step.var}") from None
    result: list[Location] = []
    for loc in context:
        result.extend(
            candidate
            for candidate in _axis_nodes(step.axis, store, loc)
            if _test_matches(step.test, store, candidate)
        )
    return result


def _axis_nodes(axis: Axis, store: Store, loc: Location) -> list[Location]:
    """Nodes selected by ``axis`` from ``loc``, in document order.

    Upward axes are returned root-first (document order), a deterministic
    choice consistent between the two evaluations the independence check
    compares.
    """
    if axis is Axis.SELF:
        return [loc]
    if axis is Axis.CHILD:
        return store.children(loc)
    if axis is Axis.DESCENDANT:
        return list(store.descendants(loc))
    if axis is Axis.DESCENDANT_OR_SELF:
        return list(store.descendants_or_self(loc))
    if axis is Axis.PARENT:
        parent = store.parent(loc)
        return [] if parent is None else [parent]
    if axis is Axis.ANCESTOR:
        return list(store.ancestors(loc))[::-1]
    if axis is Axis.ANCESTOR_OR_SELF:
        return list(store.ancestors(loc))[::-1] + [loc]
    if axis is Axis.FOLLOWING_SIBLING:
        return store.siblings_after(loc)
    if axis is Axis.PRECEDING_SIBLING:
        return store.siblings_before(loc)
    raise EvaluationError(f"unknown axis {axis!r}")


def _test_matches(test: NodeTest, store: Store, loc: Location) -> bool:
    if isinstance(test, NameTest):
        return store.is_element(loc) and store.tag(loc) == test.name
    if isinstance(test, TextTest):
        return store.is_text(loc)
    if isinstance(test, NodeKindTest):
        return True
    if isinstance(test, WildcardTest):
        return store.is_element(loc)
    raise EvaluationError(f"unknown node test {test!r}")
