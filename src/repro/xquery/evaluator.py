"""Dynamic semantics of the query fragment: ``sigma, gamma |= q => sigma_q, L_q``.

The evaluator mutates the given store only by *adding* nodes (string
literals and element construction allocate fresh locations; construction
deep-copies its content, per the W3C copy semantics).  Existing nodes are
never modified, matching the paper's judgment where ``sigma_q`` extends
``sigma``.

Environments ``gamma`` bind variables to location sequences.  Quasi-closed
queries use :data:`~repro.xquery.ast.ROOT_VAR` bound to the root element.
"""

from __future__ import annotations

from ..xmldm.store import Location, Store
from .ast import (
    Axis,
    Concat,
    Element,
    Empty,
    For,
    If,
    Let,
    NameTest,
    NodeKindTest,
    NodeTest,
    Query,
    Step,
    StringLit,
    TextTest,
    WildcardTest,
    free_variables,
)


class EvaluationError(ValueError):
    """Raised for unbound variables and other dynamic errors."""


Environment = dict[str, list[Location]]


def evaluate_query(query: Query, store: Store, env: Environment
                   ) -> list[Location]:
    """Evaluate ``query`` over ``store`` under ``env``.

    Returns the answer sequence ``L_q``; the store is extended in place
    with any constructed nodes (it plays the role of ``sigma_q``).
    """
    return _eval(query, store, env)


def _eval(query: Query, store: Store, env: Environment) -> list[Location]:
    if isinstance(query, Empty):
        return []
    if isinstance(query, StringLit):
        return [store.new_text(query.value)]
    if isinstance(query, Concat):
        return _eval(query.left, store, env) + _eval(query.right, store, env)
    if isinstance(query, Step):
        return _eval_step(query, store, env)
    if isinstance(query, Element):
        content = _eval(query.content, store, env)
        copies = [store.copy_subtree(store, loc) for loc in content]
        return [store.new_element(query.tag, copies)]
    if isinstance(query, For):
        fast = _fast_descendant_child(query, store, env)
        if fast is not None:
            return fast
        source = _eval(query.source, store, env)
        result: list[Location] = []
        for item in source:
            inner = dict(env)
            inner[query.var] = [item]
            result.extend(_eval(query.body, store, inner))
        return result
    if isinstance(query, Let):
        source = _eval(query.source, store, env)
        inner = dict(env)
        inner[query.var] = source
        return _eval(query.body, store, inner)
    if isinstance(query, If):
        cond = _eval(query.cond, store, env)
        branch = query.then if cond else query.orelse
        return _eval(branch, store, env)
    raise EvaluationError(f"unknown query node {query!r}")


def _fast_descendant_child(query: For, store: Store, env: Environment
                           ) -> list[Location] | None:
    """Accelerate the ``//test`` desugaring on indexed stores.

    ``//test`` parses to ``for $v in $c/descendant-or-self::node()
    return $v/child::test``; stores exposing ``descendant_child_step``
    answer that whole loop per context node from their interval index
    (in the loop's exact output order).  Longer paths nest the
    continuation inside the loop (``//a/b`` puts the ``/b`` loop in the
    body); when the continuation does not mention the loop variable it
    is re-rooted onto the accelerated match list, so every ``//`` hop
    of a path skips its full-subtree scan.  Returns None -- falling
    back to the generic loop -- for any other query shape or whenever a
    context node cannot be served from the index.
    """
    fast = getattr(store, "descendant_child_step", None)
    if fast is None:
        return None
    source, body = query.source, query.body
    if not (
        isinstance(source, Step)
        and source.axis is Axis.DESCENDANT_OR_SELF
        and isinstance(source.test, NodeKindTest)
    ):
        return None
    if isinstance(body, Step) and body.var == query.var \
            and body.axis is Axis.CHILD:
        step, continuation = body, None
    elif (
        isinstance(body, For)
        and isinstance(body.source, Step)
        and body.source.var == query.var
        and body.source.axis is Axis.CHILD
        and query.var not in free_variables(body.body)
    ):
        step, continuation = body.source, body
    else:
        return None
    try:
        context = env[source.var]
    except KeyError:
        raise EvaluationError(
            f"unbound variable {source.var}"
        ) from None
    matches: list[Location] = []
    for loc in context:
        nodes = fast(step.test, loc)
        if nodes is None:
            return None
        matches.extend(nodes)
    if continuation is None:
        return matches
    result: list[Location] = []
    for item in matches:
        inner = dict(env)
        inner[continuation.var] = [item]
        result.extend(_eval(continuation.body, store, inner))
    return result


def _eval_step(step: Step, store: Store, env: Environment) -> list[Location]:
    try:
        context = env[step.var]
    except KeyError:
        raise EvaluationError(f"unbound variable {step.var}") from None
    # Transparent fast path: stores exposing ``axis_step`` (the indexed
    # document store) answer whole axis+test steps from their interval
    # index; a None reply falls back to the generic walk per context
    # node, so results are identical either way.
    fast = getattr(store, "axis_step", None)
    result: list[Location] = []
    for loc in context:
        if fast is not None:
            accelerated = fast(step.axis, step.test, loc)
            if accelerated is not None:
                result.extend(accelerated)
                continue
        result.extend(
            candidate
            for candidate in _axis_nodes(step.axis, store, loc)
            if _test_matches(step.test, store, candidate)
        )
    return result


def _axis_nodes(axis: Axis, store: Store, loc: Location) -> list[Location]:
    """Nodes selected by ``axis`` from ``loc``, in document order.

    Upward axes are returned root-first (document order), a deterministic
    choice consistent between the two evaluations the independence check
    compares.
    """
    if axis is Axis.SELF:
        return [loc]
    if axis is Axis.CHILD:
        return store.children(loc)
    if axis is Axis.DESCENDANT:
        return list(store.descendants(loc))
    if axis is Axis.DESCENDANT_OR_SELF:
        return list(store.descendants_or_self(loc))
    if axis is Axis.PARENT:
        parent = store.parent(loc)
        return [] if parent is None else [parent]
    if axis is Axis.ANCESTOR:
        return list(store.ancestors(loc))[::-1]
    if axis is Axis.ANCESTOR_OR_SELF:
        return list(store.ancestors(loc))[::-1] + [loc]
    if axis is Axis.FOLLOWING_SIBLING:
        return store.siblings_after(loc)
    if axis is Axis.PRECEDING_SIBLING:
        return store.siblings_before(loc)
    raise EvaluationError(f"unknown axis {axis!r}")


def _test_matches(test: NodeTest, store: Store, loc: Location) -> bool:
    if isinstance(test, NameTest):
        return store.is_element(loc) and store.tag(loc) == test.name
    if isinstance(test, TextTest):
        return store.is_text(loc)
    if isinstance(test, NodeKindTest):
        return True
    if isinstance(test, WildcardTest):
        return store.is_element(loc)
    raise EvaluationError(f"unknown node test {test!r}")
