"""Materialized view maintenance driven by the independence analysis.

The paper's first motivation (Section 1): when a view (query) is
*statically independent* of an update, its materialization need not be
refreshed.  :class:`ViewCache` keeps materialized results for a set of
named views over one document and, on each update, re-evaluates only the
views the chain analysis cannot prove independent.

The static verdicts are memoized per (view, update) expression pair, so
repeated update *shapes* (the common case in an update stream) pay the
analysis cost once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.independence import AnalysisEngine, analyze
from ..analysis.kbound import multiplicity
from ..schema.dtd import DTD
from ..xmldm.store import Location, Tree
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.evaluator import evaluate_query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.evaluator import apply_update
from ..xupdate.parser import parse_update


@dataclass
class MaintenanceStats:
    """Bookkeeping of refresh work saved by the analysis."""

    updates_applied: int = 0
    refreshes_done: int = 0
    refreshes_skipped: int = 0
    analysis_seconds: float = 0.0
    refresh_seconds: float = 0.0
    skipped_by_view: dict[str, int] = field(default_factory=dict)

    @property
    def skip_ratio(self) -> float:
        total = self.refreshes_done + self.refreshes_skipped
        return self.refreshes_skipped / total if total else 0.0


class ViewCache:
    """Materialized views over one document, refreshed lazily via the
    chain-based independence analysis.

    >>> from repro.schema import bib_dtd
    >>> from repro.xmldm import parse_xml
    >>> tree = parse_xml("<bib><book><title>t</title><author>"
    ...                  "<last>l</last><first>f</first></author>"
    ...                  "<publisher>p</publisher><price>9</price>"
    ...                  "</book></bib>")
    >>> cache = ViewCache(bib_dtd(), tree)
    >>> cache.register("titles", "//title")
    >>> len(cache.result("titles"))
    1
    """

    def __init__(self, schema: DTD, tree: Tree):
        self.schema = schema
        self.tree = tree
        self.stats = MaintenanceStats()
        self._views: dict[str, Query] = {}
        self._view_k: dict[str, int] = {}
        self._results: dict[str, list[Location]] = {}
        self._verdicts: dict[tuple[str, Update], bool] = {}
        self._engines: dict[int, AnalysisEngine] = {}

    # -- view registry -------------------------------------------------------

    def register(self, name: str, query: Query | str) -> None:
        """Register and materialize a view."""
        if isinstance(query, str):
            query = parse_query(query)
        self._views[name] = query
        self._view_k[name] = multiplicity(query)
        self._materialize(name)

    def view_names(self) -> list[str]:
        return list(self._views)

    def result(self, name: str) -> list[Location]:
        """Current materialization of a view."""
        return list(self._results[name])

    # -- update path -------------------------------------------------------

    def apply(self, update: Update | str) -> list[str]:
        """Apply an update; refresh only non-independent views.

        Returns the names of the views that were refreshed.
        """
        if isinstance(update, str):
            update = parse_update(update)
        must_refresh = self._affected_views(update)

        apply_update(update, self.tree.store, {ROOT_VAR: [self.tree.root]})
        self.stats.updates_applied += 1

        for name in must_refresh:
            self._materialize(name)
            self.stats.refreshes_done += 1
        for name in self._views:
            if name not in must_refresh:
                self.stats.refreshes_skipped += 1
                self.stats.skipped_by_view[name] = (
                    self.stats.skipped_by_view.get(name, 0) + 1
                )
        return must_refresh

    def _affected_views(self, update: Update) -> list[str]:
        update_k = multiplicity(update)
        affected: list[str] = []
        for name, query in self._views.items():
            verdict = self._verdicts.get((name, update))
            if verdict is None:
                k = max(1, self._view_k[name] + update_k)
                engine = self._engines.get(k)
                if engine is None:
                    engine = AnalysisEngine(self.schema, k)
                    self._engines[k] = engine
                started = time.perf_counter()
                report = analyze(query, update, self.schema, k=k,
                                 engine=engine, collect_witnesses=False)
                self.stats.analysis_seconds += (
                    time.perf_counter() - started
                )
                verdict = report.independent
                self._verdicts[(name, update)] = verdict
            if not verdict:
                affected.append(name)
        return affected

    def _materialize(self, name: str) -> None:
        started = time.perf_counter()
        self._results[name] = evaluate_query(
            self._views[name], self.tree.store,
            {ROOT_VAR: [self.tree.root]},
        )
        self.stats.refresh_seconds += time.perf_counter() - started
