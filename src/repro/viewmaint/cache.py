"""Materialized view maintenance driven by the independence analysis.

The paper's first motivation (Section 1): when a view (query) is
*statically independent* of an update, its materialization need not be
refreshed.  :class:`ViewCache` keeps materialized results for a set of
named views over one document and, on each update, re-evaluates only the
views the chain analysis cannot prove independent.

All static work is delegated to the per-schema shared
:class:`~repro.analysis.engine.AnalysisEngine` (one engine per schema
digest, shared with every other ``ViewCache``/scheduler on the same
schema): an incoming update is checked against all not-yet-verdicted
views in one :meth:`~repro.analysis.engine.AnalysisEngine.analyze_matrix`
call, and repeated update *shapes* (the common case in an update stream)
are served from the engine's pair cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.engine import AnalysisEngine, engine_for
from ..docstore.encode import IndexedTree
from ..schema.dtd import DTD
from ..xmldm.store import Location, Tree
from ..xquery.ast import ROOT_VAR, Query
from ..xquery.evaluator import evaluate_query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.evaluator import apply_update
from ..xupdate.parser import parse_update


@dataclass
class MaintenanceStats:
    """Bookkeeping of refresh work saved by the analysis."""

    updates_applied: int = 0
    refreshes_done: int = 0
    refreshes_skipped: int = 0
    analysis_seconds: float = 0.0
    refresh_seconds: float = 0.0
    skipped_by_view: dict[str, int] = field(default_factory=dict)

    @property
    def skip_ratio(self) -> float:
        total = self.refreshes_done + self.refreshes_skipped
        return self.refreshes_skipped / total if total else 0.0


class ViewCache:
    """Materialized views over one document, refreshed lazily via the
    chain-based independence analysis.

    The document may be a Section-2 dict-store
    :class:`~repro.xmldm.store.Tree` or an
    :class:`~repro.docstore.encode.IndexedTree` -- evaluation and
    update application are duck-typed over the store, and over an
    indexed tree every refresh transparently uses the interval-index
    axis accelerators (the serving layer always loads indexed trees).

    >>> from repro.schema import bib_dtd
    >>> from repro.xmldm import parse_xml
    >>> tree = parse_xml("<bib><book><title>t</title><author>"
    ...                  "<last>l</last><first>f</first></author>"
    ...                  "<publisher>p</publisher><price>9</price>"
    ...                  "</book></bib>")
    >>> cache = ViewCache(bib_dtd(), tree)
    >>> cache.register("titles", "//title")
    >>> len(cache.result("titles"))
    1
    """

    def __init__(self, schema: DTD, tree: Tree | IndexedTree,
                 engine: AnalysisEngine | None = None):
        self.schema = schema
        self.tree = tree
        self.engine = engine if engine is not None else engine_for(schema)
        self.stats = MaintenanceStats()
        self._views: dict[str, Query] = {}
        self._results: dict[str, list[Location]] = {}
        self._verdicts: dict[tuple[str, Update], bool] = {}

    # -- view registry -------------------------------------------------------

    def register(self, name: str, query: Query | str) -> None:
        """Register and materialize a view."""
        if isinstance(query, str):
            query = parse_query(query)
        self._views[name] = query
        self._materialize(name)

    def view_names(self) -> list[str]:
        return list(self._views)

    def result(self, name: str) -> list[Location]:
        """Current materialization of a view."""
        return list(self._results[name])

    # -- update path -------------------------------------------------------

    def apply(self, update: Update | str) -> list[str]:
        """Apply an update; refresh only non-independent views.

        Returns the names of the views that were refreshed.
        """
        if isinstance(update, str):
            update = parse_update(update)
        must_refresh = self._affected_views(update)

        apply_update(update, self.tree.store, {ROOT_VAR: [self.tree.root]})
        self.stats.updates_applied += 1

        for name in must_refresh:
            self._materialize(name)
            self.stats.refreshes_done += 1
        for name in self._views:
            if name not in must_refresh:
                self.stats.refreshes_skipped += 1
                self.stats.skipped_by_view[name] = (
                    self.stats.skipped_by_view.get(name, 0) + 1
                )
        return must_refresh

    def _affected_views(self, update: Update) -> list[str]:
        """Views the analysis cannot prove independent of ``update``.

        Not-yet-verdicted views are decided in one batch matrix call
        (one column, all pending views) against the shared engine.
        """
        pending = [
            (name, query) for name, query in self._views.items()
            if (name, update) not in self._verdicts
        ]
        if pending:
            started = time.perf_counter()
            matrix = self.engine.analyze_matrix(
                [query for _, query in pending], [update]
            )
            self.stats.analysis_seconds += time.perf_counter() - started
            for row, (name, _) in enumerate(pending):
                self._verdicts[(name, update)] = matrix.independent(row, 0)
        return [
            name for name in self._views
            if not self._verdicts[(name, update)]
        ]

    def _materialize(self, name: str) -> None:
        started = time.perf_counter()
        self._results[name] = evaluate_query(
            self._views[name], self.tree.store,
            {ROOT_VAR: [self.tree.root]},
        )
        self.stats.refresh_seconds += time.perf_counter() - started
