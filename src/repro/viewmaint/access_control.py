"""Access-control enforcement via independence (the paper's motivation iii).

Following the idea the paper borrows from [6]: a *protection query*
describes the part of the database a user must not change.  An update is
admissible iff it is statically independent of every protection query --
then it provably cannot alter any protected node on any valid document.

Because the analysis is sound, :class:`AccessController` never admits a
violating update; being incomplete, it may conservatively reject a
harmless one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.independence import analyze
from ..schema.dtd import DTD
from ..xquery.ast import Query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.parser import parse_update


@dataclass(frozen=True)
class AccessDecision:
    """Outcome of an admissibility check."""

    allowed: bool
    violated_policies: tuple[str, ...]

    def __bool__(self) -> bool:
        return self.allowed


class AccessController:
    """Guards a set of named protection queries against updates.

    >>> from repro.schema import bib_dtd
    >>> guard = AccessController(bib_dtd())
    >>> guard.protect("prices", "//price")
    >>> bool(guard.check("for $x in //price return replace $x "
    ...                  "with <price>0</price>"))
    False
    >>> bool(guard.check("for $x in //book return insert "
    ...                  "<author><last>l</last><first>f</first></author> "
    ...                  "into $x"))
    True
    """

    def __init__(self, schema: DTD):
        self.schema = schema
        self._policies: dict[str, Query] = {}

    def protect(self, name: str, query: Query | str) -> None:
        """Declare a protected region as a query."""
        if isinstance(query, str):
            query = parse_query(query)
        self._policies[name] = query

    def policies(self) -> list[str]:
        return list(self._policies)

    def check(self, update: Update | str) -> AccessDecision:
        """Decide whether an update provably avoids all protected regions."""
        if isinstance(update, str):
            update = parse_update(update)
        violated = tuple(
            name
            for name, query in self._policies.items()
            if not analyze(query, update, self.schema,
                           collect_witnesses=False).independent
        )
        return AccessDecision(not violated, violated)
