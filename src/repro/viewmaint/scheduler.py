"""Concurrent query/update scheduling via independence (motivation ii).

When a query and an update are statically independent, they can be run
concurrently (in either order) without isolation violations: the query
result is the same whether it reads before or after the update.
:class:`IsolationScheduler` batches a mixed workload into *waves* of
mutually independent operations -- a static, schema-level analogue of
predicate locking.

Pairwise verdicts come from the per-schema shared
:class:`~repro.analysis.engine.AnalysisEngine`; :meth:`schedule`
precomputes the full query x update verdict grid in one
``analyze_matrix`` call before partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.engine import AnalysisEngine, engine_for
from ..schema.dtd import DTD
from ..xquery.ast import Query
from ..xquery.parser import parse_query
from ..xupdate.ast import Update
from ..xupdate.parser import parse_update


@dataclass(frozen=True)
class Operation:
    """A named workload item: either a query or an update."""

    name: str
    query: Query | None = None
    update: Update | None = None

    @property
    def is_update(self) -> bool:
        return self.update is not None


class IsolationScheduler:
    """Greedy wave scheduler for mixed query/update workloads.

    Two operations conflict iff one is an update and the analysis cannot
    prove the query (or, for update-update pairs, either update's target
    queries) independent of it.  Queries never conflict with queries.
    """

    def __init__(self, schema: DTD,
                 engine: AnalysisEngine | None = None):
        self.schema = schema
        self.engine = engine if engine is not None else engine_for(schema)
        self._operations: list[Operation] = []

    def add_query(self, name: str, query: Query | str) -> None:
        if isinstance(query, str):
            query = parse_query(query)
        self._operations.append(Operation(name, query=query))

    def add_update(self, name: str, update: Update | str) -> None:
        if isinstance(update, str):
            update = parse_update(update)
        self._operations.append(Operation(name, update=update))

    def conflicts(self, first: Operation, second: Operation) -> bool:
        """Conservative pairwise conflict test."""
        if not first.is_update and not second.is_update:
            return False
        if first.is_update and second.is_update:
            # Updates always conflict pairwise in this simple model
            # (update-update commutativity is the object of [15], not of
            # this paper).
            return True
        query_op = first if not first.is_update else second
        update_op = second if not first.is_update else first
        report = self.engine.analyze_pair(
            query_op.query, update_op.update, collect_witnesses=False
        )
        return not report.independent

    def schedule(self) -> list[list[str]]:
        """Greedy partition of the workload into conflict-free waves.

        Operations within one wave are pairwise non-conflicting and can
        run concurrently; waves run in sequence, preserving the original
        relative order of conflicting operations.  The full query x
        update verdict grid is batch-computed up front, so the
        quadratic wave placement below runs against warm pair caches.
        """
        queries = [op.query for op in self._operations if not op.is_update]
        updates = [op.update for op in self._operations if op.is_update]
        if queries and updates:
            self.engine.analyze_matrix(queries, updates)

        waves: list[list[Operation]] = []
        for operation in self._operations:
            # An operation may not run before (or alongside) anything it
            # conflicts with, so it can only join a wave strictly after
            # the last conflicting wave.
            last_conflict = -1
            for index, wave in enumerate(waves):
                if any(self.conflicts(member, operation)
                       for member in wave):
                    last_conflict = index
            if last_conflict + 1 < len(waves):
                waves[last_conflict + 1].append(operation)
            else:
                waves.append([operation])
        return [[op.name for op in wave] for wave in waves]
