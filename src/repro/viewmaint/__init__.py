"""Applications of the independence analysis (the paper's motivations i-iii):
view maintenance, isolation scheduling, access control."""

from .access_control import AccessController, AccessDecision
from .cache import MaintenanceStats, ViewCache
from .scheduler import IsolationScheduler, Operation

__all__ = [
    "AccessController",
    "AccessDecision",
    "MaintenanceStats",
    "ViewCache",
    "IsolationScheduler",
    "Operation",
]
