"""The one-import facade over the package's stable surface.

Everything an embedding application needs lives here, re-exported from
its home module (where it is documented):

* **analysis** -- :func:`analyze` (one-shot static independence),
  :class:`AnalysisEngine` / :func:`engine_for` (the cached per-schema
  engine behind the server), :func:`schema_digest` (the content hash
  that keys engines, verdicts, and shard routing);
* **schemas & documents** -- :class:`DTD`, :func:`load_xml` /
  :func:`load_document` (streaming projected parse into an
  interval-encoded tree);
* **storage** -- :func:`open_store` / :func:`parse_store_url`
  (``memory://``, ``sqlite:///...``, ``postgresql://...``) and the
  :class:`StorageBackend` interface with its :class:`VerdictKV` and
  :class:`DocumentStore` facets (see ``docs/STORAGE.md``);
* **serving** -- :class:`ServeConfig`, :func:`make_service` /
  :func:`run_service`, the :class:`IndependenceService` /
  :class:`ShardedService` classes they build, and
  :class:`LoadgenConfig` for driving one.

Typical embedding::

    from repro.api import DTD, analyze, engine_for, open_store

    dtd = DTD.from_dict("doc", {"doc": "(a | b)*", "a": "c",
                                "b": "c", "c": "EMPTY"})
    assert analyze("//a//c", "delete //b//c", dtd).independent

    with open_store("sqlite:///verdicts.db") as backend:
        engine = engine_for(dtd)
        engine.attach_store(backend)   # warm-starts from the KV

The re-exports are aliases, not copies: ``repro.api.AnalysisEngine is
repro.analysis.engine.AnalysisEngine``.  ``tests/test_public_api.py``
pins that every name in ``__all__`` resolves, and the docstring gate
(``tests/docs/test_docstrings.py``) covers this module.
"""

from __future__ import annotations

from . import __version__
from .analysis import analyze
from .analysis.engine import (
    AnalysisEngine,
    PairVerdict,
    engine_for,
    schema_digest,
)
from .docstore.streamload import load_path as load_document
from .docstore.streamload import load_xml
from .schema import DTD
from .serve.loadgen import LoadgenConfig, run_loadgen
from .serve.server import (
    IndependenceService,
    ServeConfig,
    ShardedService,
    make_service,
    run_service,
)
from .storage import (
    DocumentStore,
    StorageBackend,
    VerdictKV,
    is_store_url,
    open_store,
    parse_store_url,
)

__all__ = [
    "__version__",
    # analysis
    "AnalysisEngine",
    "PairVerdict",
    "analyze",
    "engine_for",
    "schema_digest",
    # schemas & documents
    "DTD",
    "load_document",
    "load_xml",
    # storage
    "DocumentStore",
    "StorageBackend",
    "VerdictKV",
    "is_store_url",
    "open_store",
    "parse_store_url",
    # serving
    "IndependenceService",
    "LoadgenConfig",
    "ServeConfig",
    "ShardedService",
    "make_service",
    "run_loadgen",
    "run_service",
]
